#!/usr/bin/env python
"""Build the optional compiled simulation core (``repro._ccore``).

Compiles the two hottest implementation modules — the event scheduler and
the simulated network — into C extension modules with Cython, placed under
``src/repro/_ccore/`` where :mod:`repro._backend` discovers them at import:

* ``repro.sim._scheduler_impl``  -> ``repro._ccore._scheduler_impl``
* ``repro.net._simnet_impl``     -> ``repro._ccore._simnet_impl``

The compiled modules are built from the *exact same* ``.py`` sources the
pure-Python backend runs (pure-Python-mode Cython, no ``.pyx`` dialect), so
the two backends cannot drift: there is one implementation, compiled twice.
Behavioural equivalence is additionally asserted by the compiled-vs-pure
test on the 4x256 fault-drill scenario
(``tests/test_compiled_backend.py``).

Usage::

    python tools/build_compiled_core.py            # build in place
    python tools/build_compiled_core.py --check    # report backend status
    python tools/build_compiled_core.py --clean    # remove built artifacts

Cython and a C compiler are required to *build*; neither is required to
*run* (the pure backend always works, and ``REPRO_COMPILED=0`` forces it).
When Cython is missing this script exits with a clear message rather than a
traceback, so it is safe to call unconditionally from CI setup steps that
tolerate a missing toolchain.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
CCORE = SRC / "repro" / "_ccore"

#: (source module path, compiled stem) pairs; order is not significant.
SOURCES = (
    (SRC / "repro" / "sim" / "_scheduler_impl.py", "_scheduler_impl"),
    (SRC / "repro" / "net" / "_simnet_impl.py", "_simnet_impl"),
)


def clean() -> None:
    """Remove every build artifact from ``repro._ccore`` (keeps __init__.py)."""
    removed = []
    for path in sorted(CCORE.iterdir()):
        if path.name in {"__init__.py"}:
            continue
        if path.is_dir():
            shutil.rmtree(path)
        else:
            path.unlink()
        removed.append(path.name)
    for stray in sorted(REPO_ROOT.glob("build/")):
        shutil.rmtree(stray)
    if removed:
        print(f"removed from {CCORE.relative_to(REPO_ROOT)}: {', '.join(removed)}")
    else:
        print("nothing to clean")


def check() -> int:
    """Report which backend the shims would select right now."""
    sys.path.insert(0, str(SRC))
    from repro._backend import backend_name, compiled_available

    print(f"compiled core available: {compiled_available()}")
    print(f"selected backend: {backend_name()}")
    return 0


def build() -> int:
    try:
        from Cython.Build import cythonize
    except ImportError:
        print(
            "Cython is not installed; the compiled core is optional and the\n"
            "pure-Python backend remains fully functional. To build the\n"
            "compiled core: pip install cython, then re-run this script.",
            file=sys.stderr,
        )
        return 1

    from setuptools import Extension
    from setuptools.dist import Distribution

    CCORE.mkdir(parents=True, exist_ok=True)
    staged: list[Path] = []
    extensions = []
    for source, stem in SOURCES:
        # Stage a copy next to where the extension must land so cythonize
        # derives the right fully-qualified module name.
        staged_py = CCORE / f"{stem}.py"
        shutil.copyfile(source, staged_py)
        staged.append(staged_py)
        extensions.append(
            Extension(f"repro._ccore.{stem}", [str(staged_py.relative_to(REPO_ROOT))])
        )

    try:
        ext_modules = cythonize(
            extensions,
            language_level="3",
            compiler_directives={"binding": True},
        )
        dist = Distribution(
            {
                "ext_modules": ext_modules,
                "package_dir": {"": "src"},
                "packages": ["repro", "repro._ccore"],
            }
        )
        cmd = dist.get_command_obj("build_ext")
        cmd.inplace = True
        dist.run_command("build_ext")
    finally:
        # The staged .py copies must never remain: repro._backend refuses
        # .py origins as a compiled backend, and a stray copy would shadow
        # the real sources in confusing ways.
        for staged_py in staged:
            staged_py.unlink(missing_ok=True)
        for c_file in CCORE.glob("*.c"):
            c_file.unlink()

    built = sorted(p.name for p in CCORE.iterdir() if p.suffix in {".so", ".pyd"})
    if len(built) < len(SOURCES):
        print("build did not produce all extension modules", file=sys.stderr)
        return 1
    print(f"built: {', '.join(built)}")

    # Smoke-check in a fresh interpreter so this process's imports don't mask
    # a broken build.
    probe = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro._backend import backend_name; print(backend_name())",
        ],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin", "REPRO_COMPILED": "1"},
        capture_output=True,
        text=True,
    )
    if probe.returncode != 0 or probe.stdout.strip() != "compiled":
        print("compiled core failed its import smoke check:", file=sys.stderr)
        print(probe.stderr, file=sys.stderr)
        return 1
    print("smoke check: compiled backend imports and is selected")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clean", action="store_true", help="remove built artifacts")
    parser.add_argument("--check", action="store_true", help="report backend status")
    args = parser.parse_args(argv)
    if args.clean:
        clean()
        return 0
    if args.check:
        return check()
    return build()


if __name__ == "__main__":
    raise SystemExit(main())
