"""A convenience test/benchmark/example harness (legacy two-host shim).

Almost every experiment, example and integration test needs the same setup:
a scheduler, a two-host network (the paper's client PowerBook and server
desktop), a JPie environment with an SDE Manager on the server host, and a
CDE on the client host.  :class:`LiveDevelopmentTestbed` builds exactly that
and provides helpers for the most common developer actions (creating a
server class, adding distributed methods, connecting a client binding).

.. deprecated:: 1.1
    The testbed is now a thin adapter over the generalised cluster layer
    (:class:`repro.cluster.ClusterWorld`); it keeps its full signature for
    existing call sites, but new experiments should describe their world
    with the declarative :class:`repro.cluster.Scenario` API instead.
"""

from __future__ import annotations

import warnings
from typing import Iterable

from repro.cluster.scenario import OperationSpec
from repro.cluster.topology import ClusterWorld
from repro.core.cde import ClientDevelopmentEnvironment, DynamicClientBinding
from repro.core.sde import SDEConfig
from repro.jpie import DynamicClass, DynamicInstance
from repro.net import Host, LatencyModel
from repro.net.latency import CostModel

__all__ = ["LiveDevelopmentTestbed", "OperationSpec", "CLIENT_SPEED_FACTOR"]

#: Relative speed of the paper's client machine (1 GHz PowerBook G4) compared
#: with its server machine (3.2 GHz Pentium 4).
CLIENT_SPEED_FACTOR = 2.5


class LiveDevelopmentTestbed:
    """A complete two-machine live-development world.

    A one-server :class:`~repro.cluster.ClusterWorld` under the hood: the
    paper's server desktop is the world's single server node, the client
    PowerBook its first client machine.
    """

    def __init__(
        self,
        latency: LatencyModel | None = None,
        cost_model: CostModel | None = None,
        sde_config: SDEConfig | None = None,
        client_speed_factor: float = CLIENT_SPEED_FACTOR,
        server_cores: int | None = None,
    ) -> None:
        warnings.warn(
            "repro.testbed.LiveDevelopmentTestbed is deprecated; describe the "
            "world with repro.cluster.Scenario instead (byte-identical results)",
            DeprecationWarning,
            stacklevel=2,
        )
        config = sde_config if sde_config is not None else SDEConfig()
        if cost_model is not None and config.cost_model is None:
            config.cost_model = cost_model
        if server_cores is not None and config.server_cores is None:
            config.server_cores = server_cores

        self.world = ClusterWorld(latency=latency)
        self.server_node = self.world.add_server("server", config)
        self.client_host = self.world.add_client("client")

        self.scheduler = self.world.scheduler
        self.network = self.world.network
        self.server_host = self.server_node.host
        self.environment = self.server_node.environment
        self.sde = self.server_node.sde
        self.manager_interface = self.server_node.manager_interface
        self.cde = ClientDevelopmentEnvironment(
            self.client_host,
            cost_model=cost_model,
            speed_factor=client_speed_factor,
        )

    # -- developer actions on the server ------------------------------------------

    def create_soap_server(
        self, name: str, operations: Iterable[OperationSpec] = ()
    ) -> tuple[DynamicClass, DynamicInstance]:
        """Create a SOAP server class with the given distributed methods,
        instantiate it, and return ``(class, instance)``."""
        return self._create_server(name, self.sde.soap_server_class, operations)

    def create_corba_server(
        self, name: str, operations: Iterable[OperationSpec] = ()
    ) -> tuple[DynamicClass, DynamicInstance]:
        """Create a CORBA server class with the given distributed methods,
        instantiate it, and return ``(class, instance)``."""
        return self._create_server(name, self.sde.corba_server_class, operations)

    def _create_server(
        self,
        name: str,
        gateway: DynamicClass,
        operations: Iterable[OperationSpec],
    ) -> tuple[DynamicClass, DynamicInstance]:
        dynamic_class = self.environment.create_class(name, superclass=gateway)
        for spec in operations:
            dynamic_class.add_method(
                spec.name,
                spec.parameter_objects(),
                spec.return_type,
                body=spec.body,
                distributed=True,
            )
        instance = dynamic_class.new_instance()
        return dynamic_class, instance

    def publish_now(self, class_name: str) -> None:
        """Force publication of the named server's interface and let the
        generation complete."""
        self.manager_interface.force_publication(class_name)
        self.run_for(self.sde.config.generation_cost * 2)

    def settle(self, class_name: str | None = None) -> None:
        """Let pending stability timers expire and publications complete."""
        margin = self.sde.config.publication_timeout + self.sde.config.generation_cost * 2
        self.run_for(margin + 0.001)

    # -- client fleet (multi-client workloads) -------------------------------------

    def add_client_host(self, name: str | None = None) -> "Host":
        """Attach one more client machine to the network.

        Used by the multi-client workload driver: the seed testbed models the
        paper's single PowerBook, scale-out experiments attach a fleet.
        """
        return self.world.add_client(name)

    def create_client_fleet(self, count: int, prefix: str = "wl-client-") -> tuple["Host", ...]:
        """Attach ``count`` client machines named ``{prefix}1..{prefix}count``.

        Machines already attached under those names are reused, so repeated
        workload runs on one testbed share the fleet.
        """
        return self.world.client_fleet(count, prefix)

    # -- client actions --------------------------------------------------------------

    def connect_soap_client(
        self, class_name: str, reactive_updates: bool = True
    ) -> DynamicClientBinding:
        """Connect a CDE binding to the named managed SOAP server."""
        publisher = self.sde.managed_server(class_name).publisher
        return self.cde.connect_soap(publisher.document_url, reactive_updates=reactive_updates)

    def connect_corba_client(
        self, class_name: str, reactive_updates: bool = True
    ) -> DynamicClientBinding:
        """Connect a CDE binding to the named managed CORBA server."""
        publisher = self.sde.managed_server(class_name).publisher
        return self.cde.connect_corba(
            publisher.document_url,
            publisher.ior_url,  # type: ignore[attr-defined]
            reactive_updates=reactive_updates,
        )

    # -- time control -------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.scheduler.now

    def run_for(self, duration: float) -> None:
        """Advance virtual time by ``duration`` seconds."""
        self.scheduler.run_for(duration)

    def run_until_idle(self) -> None:
        """Run until no simulated work remains."""
        self.scheduler.run_until_idle()
