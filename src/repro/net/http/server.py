"""Route-based HTTP server bound to a simulated host port.

Handlers may return:

* an :class:`HttpResponse` — sent immediately;
* a ``(response, processing_delay)`` tuple — sent ``processing_delay``
  virtual seconds later, which is how server-side CPU cost (XML parsing,
  reflection dispatch) is charged to the round-trip time;
* a :class:`DeferredHttpResponse` — sent whenever the handler (or anything
  holding the deferred object) later calls
  :meth:`DeferredHttpResponse.complete`.  SDE's call handlers use this to
  stall a reply until the interface publisher has caught up (§5.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from repro.errors import HttpError, NetworkError
from repro.net.http.messages import HttpRequest, HttpResponse, StatusCodes
from repro.net.simnet import Address, Host, Message


class DeferredHttpResponse:
    """A reply that will be provided later by the handler."""

    def __init__(self) -> None:
        self._completed = False
        self._send: Callable[[HttpResponse, float], None] | None = None
        self._pending: tuple[HttpResponse, float] | None = None

    @property
    def completed(self) -> bool:
        """True once :meth:`complete` has been called."""
        return self._completed

    def complete(self, response: HttpResponse, delay: float = 0.0) -> None:
        """Provide the response (optionally after ``delay`` seconds)."""
        if self._completed:
            raise NetworkError("deferred HTTP response completed twice")
        self._completed = True
        if self._send is not None:
            self._send(response, delay)
        else:
            self._pending = (response, delay)

    def _attach(self, send: Callable[[HttpResponse, float], None]) -> None:
        self._send = send
        if self._pending is not None:
            response, delay = self._pending
            self._pending = None
            send(response, delay)


HandlerResult = Union[HttpResponse, tuple[HttpResponse, float], DeferredHttpResponse]
Handler = Callable[[HttpRequest], HandlerResult]


@dataclass
class Route:
    """A single route: exact path or prefix plus the handler."""

    path: str
    handler: Handler
    methods: tuple[str, ...] = ("GET", "POST")
    prefix: bool = False

    def matches(self, method: str, path: str) -> bool:
        """True if this route should handle the given method/path.

        Query strings (``?wsdl``) are ignored for matching purposes, as they
        are by the servlet containers the paper builds on.
        """
        if method not in self.methods:
            return False
        bare_path = path.split("?", 1)[0]
        if self.prefix:
            return bare_path.startswith(self.path)
        return bare_path == self.path


class HttpServer:
    """An HTTP server listening on ``(host, port)`` of the simulated network."""

    def __init__(self, host: Host, port: int, name: str = "http-server") -> None:
        self.host = host
        self.port = port
        self.name = name
        self._routes: list[Route] = []
        self._started = False
        self.requests_served = 0
        self.last_request: HttpRequest | None = None

    # -- configuration ----------------------------------------------------

    def add_route(
        self,
        path: str,
        handler: Handler,
        methods: tuple[str, ...] = ("GET", "POST"),
        prefix: bool = False,
    ) -> Route:
        """Register ``handler`` for ``path`` and return the created route."""
        route = Route(path=path, handler=handler, methods=tuple(m.upper() for m in methods), prefix=prefix)
        self._routes.append(route)
        return route

    def remove_route(self, route: Route) -> None:
        """Unregister a previously added route."""
        if route in self._routes:
            self._routes.remove(route)

    @property
    def routes(self) -> tuple[Route, ...]:
        """The registered routes in registration order."""
        return tuple(self._routes)

    @property
    def address(self) -> Address:
        """The network address this server listens on."""
        return Address(self.host.name, self.port)

    @property
    def url(self) -> str:
        """The base URL of this server, e.g. ``http://server:8080``."""
        return f"http://{self.host.name}:{self.port}"

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Bind to the host port and begin serving."""
        if self._started:
            return
        self.host.bind(self.port, self._on_message)
        self._started = True

    def stop(self) -> None:
        """Unbind from the host port."""
        if not self._started:
            return
        self.host.unbind(self.port)
        self._started = False

    @property
    def running(self) -> bool:
        """True while the server is bound to its port."""
        return self._started

    # -- request handling ---------------------------------------------------

    def _on_message(self, message: Message, host: Host) -> None:
        try:
            request = HttpRequest.from_bytes(message.payload)
        except HttpError as exc:
            self._reply(message, HttpResponse(StatusCodes.BAD_REQUEST, body=str(exc)))
            return

        self.last_request = request
        self.requests_served += 1

        route = self._match(request)
        if route is None:
            self._reply(message, HttpResponse.not_found(f"no route for {request.path}"))
            return

        try:
            result = route.handler(request)
        except Exception as exc:  # noqa: BLE001 - converted to HTTP 500
            self._reply(message, HttpResponse.server_error(f"{type(exc).__name__}: {exc}"))
            return

        if isinstance(result, DeferredHttpResponse):
            result._attach(
                lambda response, delay: self._reply_later(message, response, delay)
            )
        elif isinstance(result, tuple):
            response, delay = result
            self._reply_later(message, response, delay)
        else:
            self._reply(message, result)

    def _match(self, request: HttpRequest) -> Route | None:
        for route in self._routes:
            if route.matches(request.method, request.path):
                return route
        return None

    def _reply_later(
        self, request_message: Message, response: HttpResponse, delay: float
    ) -> None:
        if delay <= 0:
            self._reply(request_message, response)
            return
        self.host.network.scheduler.schedule(
            delay,
            self._reply,
            request_message,
            response,
            label=f"{self.name} reply to {request_message.source}",
        )

    def _reply(self, request_message: Message, response: HttpResponse) -> None:
        self.host.send(
            destination=request_message.source,
            payload=response.to_bytes(),
            source_port=self.port,
        )

    def __repr__(self) -> str:
        state = "running" if self._started else "stopped"
        return f"HttpServer({self.url}, routes={len(self._routes)}, {state})"
