"""Route-based HTTP server running on the shared transport layer.

Handlers may return:

* an :class:`HttpResponse` — sent immediately;
* a ``(response, processing_delay)`` tuple — sent ``processing_delay``
  virtual seconds later, which is how server-side CPU cost (XML parsing,
  reflection dispatch) is charged to the round-trip time;
* a :class:`~repro.net.transport.Deferred` — sent whenever the handler (or
  anything holding the deferred object) later calls
  :meth:`~repro.net.transport.Deferred.complete` with the response.  SDE's
  call handlers use this to stall a reply until the interface publisher has
  caught up (§5.7).

Connection semantics (per-peer FIFO reply ordering, keep-alive accounting,
dropping replies completed after :meth:`HttpServer.stop`) come from the
underlying :class:`~repro.net.transport.Endpoint`; route lookup for exact
paths is O(1) through a :class:`~repro.net.transport.RouteTable` keyed by
``(method, path)``, with a registration-order scan reserved for prefix
routes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from repro.errors import HttpError
from repro.net.http.messages import HttpRequest, HttpResponse, StatusCodes
from repro.net.simnet import Address, Host, Message
from repro.net.transport import Connection, Deferred, Endpoint, ReplyOutcome, RouteTable
from repro.sim.servercore import ServerCore


class DeferredHttpResponse(Deferred):
    """A reply that will be provided later by the handler.

    Kept as a named alias of the transport layer's generic
    :class:`~repro.net.transport.Deferred`; both names resolve replies the
    same way, and :class:`HttpServer` accepts either.
    """

    def __init__(self) -> None:
        super().__init__("deferred HTTP response")


HandlerResult = Union[HttpResponse, tuple[HttpResponse, float], Deferred]
Handler = Callable[[HttpRequest], HandlerResult]


@dataclass
class Route:
    """A single route: exact path or prefix plus the handler."""

    path: str
    handler: Handler
    methods: tuple[str, ...] = ("GET", "POST")
    prefix: bool = False

    def matches(self, method: str, path: str) -> bool:
        """True if this route should handle the given method/path.

        Query strings (``?wsdl``) are ignored for matching purposes, as they
        are by the servlet containers the paper builds on.
        """
        if method not in self.methods:
            return False
        bare_path = path.split("?", 1)[0]
        if self.prefix:
            return bare_path.startswith(self.path)
        return bare_path == self.path


class HttpServer:
    """An HTTP server listening on ``(host, port)`` of the simulated network."""

    def __init__(
        self,
        host: Host,
        port: int,
        name: str = "http-server",
        charge_connection_setup: bool = False,
        cores: "ServerCore | None" = None,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name
        self.endpoint = Endpoint(
            host,
            port,
            self._on_request,
            name=name,
            charge_connection_setup=charge_connection_setup,
            cores=cores,
        )
        self._routes: list[Route] = []
        self._table: RouteTable[Route] = RouteTable()
        self.requests_served = 0
        self.last_request: HttpRequest | None = None

    # -- configuration ----------------------------------------------------

    def add_route(
        self,
        path: str,
        handler: Handler,
        methods: tuple[str, ...] = ("GET", "POST"),
        prefix: bool = False,
    ) -> Route:
        """Register ``handler`` for ``path`` and return the created route."""
        route = Route(path=path, handler=handler, methods=tuple(m.upper() for m in methods), prefix=prefix)
        self._routes.append(route)
        self._register(route)
        return route

    def _register(self, route: Route) -> None:
        for method in route.methods:
            if route.prefix:
                self._table.add_prefix(method, route.path, route)
            else:
                self._table.add_exact((method, route.path), route)

    def remove_route(self, route: Route) -> None:
        """Unregister a previously added route; removing twice is a no-op.

        The route table is rebuilt from the remaining routes so a route that
        was shadowed by a duplicate registration becomes reachable again.
        """
        if route in self._routes:
            self._routes.remove(route)
        self._table = RouteTable()
        for remaining in self._routes:
            self._register(remaining)

    @property
    def routes(self) -> tuple[Route, ...]:
        """The registered routes in registration order."""
        return tuple(self._routes)

    @property
    def address(self) -> Address:
        """The network address this server listens on."""
        return Address(self.host.name, self.port)

    @property
    def url(self) -> str:
        """The base URL of this server, e.g. ``http://server:8080``."""
        return f"http://{self.host.name}:{self.port}"

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Bind to the host port and begin serving."""
        self.endpoint.start()

    def stop(self) -> None:
        """Unbind from the host port; replies completed later are dropped."""
        self.endpoint.stop()

    @property
    def running(self) -> bool:
        """True while the server is bound to its port."""
        return self.endpoint.running

    @property
    def replies_dropped_after_stop(self) -> int:
        """Replies that were completed after :meth:`stop` and dropped."""
        return self.endpoint.stats.replies_dropped

    # -- request handling ---------------------------------------------------

    def _on_request(self, message: Message, connection: Connection) -> ReplyOutcome:
        try:
            request = HttpRequest.from_bytes(message.payload)
        except HttpError as exc:
            return HttpResponse(StatusCodes.BAD_REQUEST, body=str(exc)).to_bytes()

        self.last_request = request
        self.requests_served += 1

        route = self._match(request)
        if route is None:
            return HttpResponse.not_found(f"no route for {request.path}").to_bytes()

        try:
            result = route.handler(request)
        except Exception as exc:  # noqa: BLE001 - converted to HTTP 500
            return HttpResponse.server_error(f"{type(exc).__name__}: {exc}").to_bytes()

        if isinstance(result, Deferred):
            return result.transform(self._encode_resolution)
        if isinstance(result, tuple):
            response, delay = result
            return response.to_bytes(), delay
        return result.to_bytes()

    def _match(self, request: HttpRequest) -> Route | None:
        bare_path = request.path.split("?", 1)[0]
        return self._table.lookup(
            (request.method, bare_path), prefix_scope=request.method, path=bare_path
        )

    @staticmethod
    def _encode_resolution(value: HttpResponse | None, error: BaseException | None) -> bytes:
        if error is not None:
            return HttpResponse.server_error(f"{type(error).__name__}: {error}").to_bytes()
        return value.to_bytes()  # type: ignore[union-attr]

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"HttpServer({self.url}, routes={len(self._routes)}, {state})"
