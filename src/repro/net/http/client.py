"""Blocking HTTP client for the simulated network.

Each in-flight request is issued from a dedicated ephemeral port so that
responses are correlated with requests without connection state.  ``request``
drives the event scheduler until the response arrives, which is how
synchronous RMI calls are expressed on the single-threaded simulator.
"""

from __future__ import annotations

from repro.errors import HttpError
from repro.net.http.messages import HttpRequest, HttpResponse
from repro.net.simnet import Address, Host, Message
from repro.sim.latch import CompletionLatch

_EPHEMERAL_BASE = 49152


class HttpClient:
    """An HTTP client attached to a simulated host."""

    def __init__(self, host: Host, name: str = "http-client") -> None:
        self.host = host
        self.name = name
        self._next_ephemeral = _EPHEMERAL_BASE
        self.requests_sent = 0
        self.responses_received = 0

    # -- public API ---------------------------------------------------------

    def get(self, url: str, headers: dict[str, str] | None = None) -> HttpResponse:
        """Issue a blocking GET request to ``url``."""
        return self.request("GET", url, headers=headers)

    def post(
        self,
        url: str,
        body: str,
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        """Issue a blocking POST request with ``body`` to ``url``."""
        return self.request("POST", url, body=body, headers=headers)

    def request(
        self,
        method: str,
        url: str,
        body: str = "",
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        """Issue a blocking HTTP request and return the response.

        ``url`` must be of the form ``http://<host>:<port>/<path>`` where
        ``<host>`` is a simulated host name.
        """
        destination, path = self.parse_url(url)
        request = HttpRequest(
            method=method,
            path=path,
            headers=dict(headers or {}),
            body=body,
        )
        request.headers.setdefault("Host", f"{destination.host}:{destination.port}")

        scheduler = self.host.network.scheduler
        latch: CompletionLatch[HttpResponse] = CompletionLatch(
            scheduler, description=f"{method} {url}"
        )
        port = self._allocate_port()

        def on_response(message: Message, _host: Host) -> None:
            self.host.unbind(port)
            try:
                latch.complete(HttpResponse.from_bytes(message.payload))
            except HttpError as exc:
                latch.fail(exc)

        self.host.bind(port, on_response)
        self.host.send(destination, request.to_bytes(), source_port=port)
        self.requests_sent += 1
        response = latch.wait()
        self.responses_received += 1
        return response

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def parse_url(url: str) -> tuple[Address, str]:
        """Split ``http://host:port/path`` into an address and a path."""
        if not url.startswith("http://"):
            raise HttpError(f"only http:// URLs are supported, got {url!r}")
        remainder = url[len("http://"):]
        if "/" in remainder:
            authority, path = remainder.split("/", 1)
            path = "/" + path
        else:
            authority, path = remainder, "/"
        if ":" in authority:
            host, port_text = authority.split(":", 1)
            try:
                port = int(port_text)
            except ValueError:
                raise HttpError(f"malformed port in URL {url!r}") from None
        else:
            host, port = authority, 80
        if not host:
            raise HttpError(f"missing host in URL {url!r}")
        return Address(host, port), path

    def _allocate_port(self) -> int:
        while self.host.is_bound(self._next_ephemeral):
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def __repr__(self) -> str:
        return f"HttpClient(host={self.host.name!r}, sent={self.requests_sent})"
