"""HTTP client for the simulated network, built on the transport layer.

The client keeps one persistent connection (source port) per destination —
HTTP/1.1 keep-alive — through a :class:`~repro.net.transport.ClientChannel`.
``request`` drives the event scheduler until the response arrives, which is
how synchronous RMI calls are expressed on the single-threaded simulator;
``request_async`` returns a :class:`~repro.net.transport.Deferred` instead,
which is what lets a multi-client workload keep many requests in flight
deterministically.
"""

from __future__ import annotations

from repro.errors import HttpError
from repro.net.http.messages import HttpRequest, HttpResponse
from repro.net.simnet import Address, Host, Message
from repro.net.transport import ClientChannel, Deferred

_EPHEMERAL_BASE = 49152


class HttpClient:
    """An HTTP client attached to a simulated host."""

    def __init__(self, host: Host, name: str = "http-client") -> None:
        self.host = host
        self.name = name
        self.channel = ClientChannel(host, base_port=_EPHEMERAL_BASE, name=name)

    @property
    def requests_sent(self) -> int:
        """Total requests issued through this client."""
        return self.channel.requests_sent

    @property
    def responses_received(self) -> int:
        """Total responses received by this client."""
        return self.channel.replies_received

    # -- public API ---------------------------------------------------------

    def get(self, url: str, headers: dict[str, str] | None = None) -> HttpResponse:
        """Issue a blocking GET request to ``url``."""
        return self.request("GET", url, headers=headers)

    def post(
        self,
        url: str,
        body: str,
        headers: dict[str, str] | None = None,
        body_wire: bytes | None = None,
    ) -> HttpResponse:
        """Issue a blocking POST request with ``body`` to ``url``.

        ``body_wire``, when given, must be ``body.encode("utf-8")`` —
        producers with pre-encoded bytes pass it to skip the boundary encode.
        """
        return self.request("POST", url, body=body, headers=headers, body_wire=body_wire)

    def request(
        self,
        method: str,
        url: str,
        body: str = "",
        headers: dict[str, str] | None = None,
        body_wire: bytes | None = None,
    ) -> HttpResponse:
        """Issue a blocking HTTP request and return the response.

        ``url`` must be of the form ``http://<host>:<port>/<path>`` where
        ``<host>`` is a simulated host name.
        """
        destination, payload = self._build(method, url, body, headers, body_wire)
        return self.channel.request(
            destination, payload, self._parse_response, description=f"{method} {url}"
        )

    def request_async(
        self,
        method: str,
        url: str,
        body: str = "",
        headers: dict[str, str] | None = None,
        body_wire: bytes | None = None,
    ) -> Deferred[HttpResponse]:
        """Issue a request without blocking; resolve with the response."""
        destination, payload = self._build(method, url, body, headers, body_wire)
        return self.channel.request_async(
            destination, payload, self._parse_response, description=f"{method} {url}"
        )

    def _build(
        self,
        method: str,
        url: str,
        body: str,
        headers: dict[str, str] | None,
        body_wire: bytes | None = None,
    ) -> tuple[Address, bytes]:
        destination, path = self.parse_url(url)
        request = HttpRequest(
            method=method,
            path=path,
            headers=dict(headers or {}),
            body=body,
            body_wire=body_wire,
        )
        request.headers.setdefault("Host", f"{destination.host}:{destination.port}")
        return destination, request.to_bytes()

    def close(self) -> None:
        """Close every kept-alive connection and release its port."""
        self.channel.close()

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _parse_response(message: Message) -> HttpResponse:
        return HttpResponse.from_bytes(message.payload)

    @staticmethod
    def parse_url(url: str) -> tuple[Address, str]:
        """Split ``http://host:port/path`` into an address and a path."""
        if not url.startswith("http://"):
            raise HttpError(f"only http:// URLs are supported, got {url!r}")
        remainder = url[len("http://"):]
        if "/" in remainder:
            authority, path = remainder.split("/", 1)
            path = "/" + path
        else:
            authority, path = remainder, "/"
        if ":" in authority:
            host, port_text = authority.split(":", 1)
            try:
                port = int(port_text)
            except ValueError:
                raise HttpError(f"malformed port in URL {url!r}") from None
        else:
            host, port = authority, 80
        if not host:
            raise HttpError(f"missing host in URL {url!r}")
        return Address(host, port), path

    def __repr__(self) -> str:
        return f"HttpClient(host={self.host.name!r}, sent={self.requests_sent})"
