"""HTTP request/response message model and wire format.

Messages serialise to the familiar textual HTTP/1.1 format so that the
latency model sees realistic message sizes (headers included) and tests can
assert on exact wire bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HttpError

_CRLF = "\r\n"
_SUPPORTED_METHODS = {"GET", "POST", "PUT", "DELETE", "HEAD"}


class StatusCodes:
    """The subset of HTTP status codes the reproduction uses."""

    OK = 200
    BAD_REQUEST = 400
    NOT_FOUND = 404
    METHOD_NOT_ALLOWED = 405
    INTERNAL_SERVER_ERROR = 500
    SERVICE_UNAVAILABLE = 503

    REASONS = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        500: "Internal Server Error",
        503: "Service Unavailable",
    }

    @classmethod
    def reason(cls, code: int) -> str:
        """Return the reason phrase for ``code`` (generic for unknown codes)."""
        return cls.REASONS.get(code, "Unknown")


def _normalise_headers(headers: dict[str, str] | None) -> dict[str, str]:
    return {key.title(): value for key, value in (headers or {}).items()}


@dataclass
class HttpRequest:
    """An HTTP request.

    The body is kept as ``str`` because every payload in this system (SOAP
    envelopes, WSDL, IDL, IOR documents) is textual; it is encoded to UTF-8
    at the wire boundary.
    """

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: str = ""
    http_version: str = "HTTP/1.1"
    #: Optional pre-encoded body (must equal ``body.encode("utf-8")``).
    #: Producers that already rendered wire bytes (the SOAP zero-copy encode
    #: path) supply it so ``to_bytes`` skips re-encoding the body; it never
    #: participates in equality or parsing.
    body_wire: bytes | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        if self.method not in _SUPPORTED_METHODS:
            raise HttpError(f"unsupported HTTP method {self.method!r}")
        if not self.path.startswith("/"):
            raise HttpError(f"request path must start with '/', got {self.path!r}")
        self.headers = _normalise_headers(self.headers)

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup."""
        return self.headers.get(name.title(), default)

    def to_bytes(self) -> bytes:
        """Serialise to the textual HTTP/1.1 wire format."""
        body_bytes = self.body_wire if self.body_wire is not None else self.body.encode("utf-8")
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(body_bytes)))
        lines = [f"{self.method} {self.path} {self.http_version}"]
        lines.extend(f"{name}: {value}" for name, value in sorted(headers.items()))
        head = _CRLF.join(lines) + _CRLF + _CRLF
        return head.encode("utf-8") + body_bytes

    @classmethod
    def from_bytes(cls, data: bytes) -> "HttpRequest":
        """Parse a request from its wire format."""
        head, body = _split_head_and_body(data, "request")
        lines = head.split(_CRLF)
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise HttpError(f"malformed request line: {lines[0]!r}")
        method, path, version = parts
        headers = _parse_header_lines(lines[1:])
        return cls(method=method, path=path, headers=headers, body=body, http_version=version)


@dataclass
class HttpResponse:
    """An HTTP response."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: str = ""
    http_version: str = "HTTP/1.1"
    #: Optional pre-encoded body; same contract as ``HttpRequest.body_wire``.
    body_wire: bytes | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.headers = _normalise_headers(self.headers)

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup."""
        return self.headers.get(name.title(), default)

    def to_bytes(self) -> bytes:
        """Serialise to the textual HTTP/1.1 wire format."""
        body_bytes = self.body_wire if self.body_wire is not None else self.body.encode("utf-8")
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(body_bytes)))
        reason = StatusCodes.reason(self.status)
        lines = [f"{self.http_version} {self.status} {reason}"]
        lines.extend(f"{name}: {value}" for name, value in sorted(headers.items()))
        head = _CRLF.join(lines) + _CRLF + _CRLF
        return head.encode("utf-8") + body_bytes

    @classmethod
    def from_bytes(cls, data: bytes) -> "HttpResponse":
        """Parse a response from its wire format."""
        head, body = _split_head_and_body(data, "response")
        lines = head.split(_CRLF)
        parts = lines[0].split(" ", 2)
        if len(parts) < 2:
            raise HttpError(f"malformed status line: {lines[0]!r}")
        version, status = parts[0], parts[1]
        try:
            status_code = int(status)
        except ValueError:
            raise HttpError(f"malformed status code: {status!r}") from None
        headers = _parse_header_lines(lines[1:])
        return cls(status=status_code, headers=headers, body=body, http_version=version)

    # -- convenience constructors -----------------------------------------

    @classmethod
    def ok_text(cls, body: str, content_type: str = "text/plain") -> "HttpResponse":
        """A 200 response carrying a plain-text body."""
        return cls(StatusCodes.OK, {"Content-Type": content_type}, body)

    @classmethod
    def ok_xml(cls, body: str, wire: bytes | None = None) -> "HttpResponse":
        """A 200 response carrying an XML body.

        ``wire``, when given, must be ``body.encode("utf-8")`` — producers
        with pre-encoded envelope bytes pass it to skip the boundary encode.
        """
        return cls(
            StatusCodes.OK,
            {"Content-Type": "text/xml; charset=utf-8"},
            body,
            body_wire=wire,
        )

    @classmethod
    def not_found(cls, detail: str = "") -> "HttpResponse":
        """A 404 response."""
        return cls(StatusCodes.NOT_FOUND, {"Content-Type": "text/plain"}, detail)

    @classmethod
    def server_error(cls, detail: str = "") -> "HttpResponse":
        """A 500 response."""
        return cls(StatusCodes.INTERNAL_SERVER_ERROR, {"Content-Type": "text/plain"}, detail)


def _split_head_and_body(data: bytes, what: str) -> tuple[str, str]:
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise HttpError(f"HTTP {what} is not valid UTF-8: {exc}") from None
    separator = _CRLF + _CRLF
    if separator not in text:
        raise HttpError(f"HTTP {what} is missing the header/body separator")
    head, body = text.split(separator, 1)
    return head, body


def _parse_header_lines(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        if ":" not in line:
            raise HttpError(f"malformed header line: {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().title()] = value.strip()
    return headers
