"""Minimal HTTP/1.1 substrate running over the simulated network.

The paper relies on HTTP twice: as the transport for SOAP request/response
traffic (§2.1) and as the publication channel for WSDL, CORBA-IDL and IOR
documents served by SDE's integrated Interface Server (§5.1/§5.2).  This
package provides a request/response message model with a textual wire format,
a route-based :class:`HttpServer` and a blocking :class:`HttpClient`, both
built on the shared :mod:`repro.net.transport` layer.
"""

from repro.net.http.messages import HttpRequest, HttpResponse, StatusCodes
from repro.net.http.server import DeferredHttpResponse, HttpServer, Route
from repro.net.http.client import HttpClient

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "StatusCodes",
    "DeferredHttpResponse",
    "HttpServer",
    "Route",
    "HttpClient",
]
