"""Simulated network substrate.

The paper's evaluation (Table 1) runs a client laptop and a server desktop on
the same T1 local-area network.  This package provides a deterministic
in-process replacement: named hosts attached to a :class:`Network`, message
delivery delayed by a configurable :class:`~repro.net.latency.LatencyModel`,
and per-host CPU cost accounting through
:class:`~repro.net.latency.CostModel`.  The HTTP substrate used to publish
WSDL/IDL documents and to carry SOAP traffic lives in :mod:`repro.net.http`.
"""

from repro.net.latency import (
    CostModel,
    LatencyModel,
    t1_lan_profile,
    loopback_profile,
    wan_profile,
)
from repro.net.simnet import Host, Message, Network, PortListener
from repro.net.transport import (
    ClientChannel,
    Connection,
    Deferred,
    Endpoint,
    RouteTable,
    TransportStats,
)

__all__ = [
    "CostModel",
    "LatencyModel",
    "t1_lan_profile",
    "loopback_profile",
    "wan_profile",
    "Host",
    "Message",
    "Network",
    "PortListener",
    "ClientChannel",
    "Connection",
    "Deferred",
    "Endpoint",
    "RouteTable",
    "TransportStats",
]
