"""Protocol-agnostic request/reply transport layer.

Both middleware stacks of the reproduction — SOAP-over-HTTP and CORBA/GIOP —
carry ordered request/reply traffic between clients and the SDE.  Before this
module existed each stack wired itself directly onto :meth:`Host.bind` /
:meth:`Host.send` with its own deferred-reply mechanism; this module factors
the shared machinery out:

* :class:`Deferred` — the single reply-future used by every protocol.  A
  handler that cannot answer immediately returns a ``Deferred`` and resolves
  it later with :meth:`~Deferred.complete` or :meth:`~Deferred.fail`; SDE's
  §5.7 stall-until-published behaviour is expressed entirely through it.
* :class:`Connection` — per-peer connection state on a server endpoint.
  Replies on one connection are delivered in request-arrival order (FIFO,
  the ordering HTTP/1.1 keep-alive and GIOP both guarantee), and opening a
  connection can be charged a handshake cost derived from the link's latency
  model (keep-alive accounting: the cost is paid once, then amortised over
  every reuse).
* :class:`Endpoint` — the server-side dispatch loop.  It owns the port
  binding, the connection table and the reply path; replies completed after
  :meth:`Endpoint.stop` are dropped (and counted) instead of being sent
  through an unbound port.
* :class:`RouteTable` — an O(1) exact-match route table with a
  registration-order scan reserved for prefix routes.
* :class:`ClientChannel` — the client side: one persistent source port per
  destination (a client connection), blocking *and* asynchronous request
  helpers, and FIFO reply correlation.

The HTTP server/client and the server/client ORBs are thin protocol codecs
over these five classes; the SDE call handlers and CDE bindings sit one layer
above and never touch raw ports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generic, Hashable, TypeVar, Union

from repro.errors import ConnectionAbortedError, TransportError
from repro.net.simnet import Address, Host, Message
from repro.obs import hooks as _obs_hooks
from repro.sim.latch import CompletionLatch
from repro.sim.servercore import ServerCore

T = TypeVar("T")

#: Tie-break added when a send must be held back so it cannot arrive at the
#: exact instant of (and race with) the message in front of it.
_STREAM_ORDER_EPSILON = 1e-9

#: Transport-layer interceptors (the observability layer's tap): callables
#: ``fn(kind, address, payload_size, description)`` invoked on every client
#: send (``"client_send"``) and server receive (``"server_receive"``).
#: Empty in the common case — the hot paths guard with one truthiness test,
#: the same nil-cost discipline as ``Scheduler.tracing``.
_INTERCEPTORS: list[Callable[[str, Any, int, str], None]] = []


def register_interceptor(interceptor: Callable[[str, Any, int, str], None]) -> None:
    """Install a transport interceptor (idempotent)."""
    if interceptor not in _INTERCEPTORS:
        _INTERCEPTORS.append(interceptor)


def unregister_interceptor(interceptor: Callable[[str, Any, int, str], None]) -> None:
    """Remove a transport interceptor (no-op when absent)."""
    if interceptor in _INTERCEPTORS:
        _INTERCEPTORS.remove(interceptor)


def _send_in_order(
    scheduler,
    delay: float,
    last_arrival: float,
    send_now: Callable[[], None],
    label: str,
) -> float:
    """Transmit (now or held back) so per-connection arrivals are ordered.

    A connection is a byte stream: a small message sent right after a large
    one must not overtake it, even though the simulated network delays each
    message independently by size.  Returns the new latest-arrival estimate.
    """
    arrival = scheduler.now + delay
    if arrival <= last_arrival:
        arrival = last_arrival + _STREAM_ORDER_EPSILON
        # Pooled: held-back sends are fire-and-forget and never cancelled.
        scheduler.schedule_pooled(arrival - delay - scheduler.now, send_now, label=label)
    else:
        send_now()
    return arrival

#: Callback signature for :meth:`Deferred.subscribe`:
#: ``callback(value, error, delay)`` with exactly one of value/error set.
ResolveCallback = Callable[[Any, Union[BaseException, None], float], None]


class Deferred(Generic[T]):
    """A reply that will be provided later.

    The one reply-future shared by every protocol stack.  Handlers resolve it
    with :meth:`complete` (a value, optionally charged a processing ``delay``)
    or :meth:`fail` (an error the protocol layer encodes as a fault reply).
    """

    __slots__ = ("_done", "_value", "_error", "_delay", "_callbacks", "description")

    def __init__(self, description: str = "deferred reply") -> None:
        self.description = description
        self._done = False
        self._value: T | None = None
        self._error: BaseException | None = None
        self._delay = 0.0
        self._callbacks: list[ResolveCallback] = []

    @property
    def completed(self) -> bool:
        """True once :meth:`complete` or :meth:`fail` has been called."""
        return self._done

    def complete(self, value: T, delay: float = 0.0) -> None:
        """Resolve with ``value``, to be delivered after ``delay`` seconds."""
        self._resolve(value, None, delay)

    def fail(self, error: BaseException, delay: float = 0.0) -> None:
        """Resolve with an error to be propagated to the requester."""
        self._resolve(None, error, delay)

    def subscribe(self, callback: ResolveCallback) -> None:
        """Invoke ``callback(value, error, delay)`` on (or after) resolution."""
        if self._done:
            callback(self._value, self._error, self._delay)
        else:
            self._callbacks.append(callback)

    def transform(self, encode: Callable[[Any, Union[BaseException, None]], Any]) -> "Deferred":
        """Return a new deferred resolving with ``encode(value, error)``.

        Protocol servers use this to turn a handler-level deferred (an
        HttpResponse, a servant return value) into a wire-level deferred of
        payload bytes without the endpoint knowing either type.  An encoder
        that raises fails the transformed deferred.
        """
        out: Deferred = Deferred(self.description)

        def resolved(value: Any, error: BaseException | None, delay: float) -> None:
            try:
                encoded = encode(value, error)
            except BaseException as exc:  # noqa: BLE001 - encode failure fails out
                out.fail(exc, delay)
                return
            out.complete(encoded, delay)

        self.subscribe(resolved)
        return out

    def wait(self, scheduler, max_events: int = 1_000_000) -> T:
        """Drive ``scheduler`` until resolved; return the value or raise."""
        latch: CompletionLatch[T] = CompletionLatch(scheduler, description=self.description)

        def resolved(value: Any, error: BaseException | None, _delay: float) -> None:
            if error is not None:
                latch.fail(error)
            else:
                latch.complete(value)

        self.subscribe(resolved)
        return latch.wait(max_events=max_events)

    def _resolve(self, value: Any, error: BaseException | None, delay: float) -> None:
        if self._done:
            raise TransportError(f"{self.description} completed twice")
        self._done = True
        self._value = value
        self._error = error
        self._delay = delay
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value, error, delay)

    def __repr__(self) -> str:
        state = "resolved" if self._done else "pending"
        return f"Deferred({self.description!r}, {state})"


#: What an endpoint handler may return for one request: an immediate payload,
#: a ``(payload, processing_delay)`` pair, a :class:`Deferred` resolving to a
#: payload, or ``None`` for one-way traffic that produces no reply.
ReplyOutcome = Union[bytes, tuple[bytes, float], Deferred, None]


@dataclass
class TransportStats:
    """Counters kept per endpoint (and mirrored per connection)."""

    requests_received: int = 0
    replies_sent: int = 0
    replies_dropped: int = 0
    connections_opened: int = 0
    connections_reused: int = 0
    handler_errors: int = 0


class Connection:
    """Server-side state for one remote peer of an :class:`Endpoint`.

    Incoming requests are numbered in arrival order; their replies are
    released strictly in that order, whatever order the handlers resolve in.
    A handshake cost (derived from the link latency model when the endpoint
    charges connection setup) delays the very first reply, modelling TCP/IIOP
    connection establishment that keep-alive then amortises.
    """

    def __init__(self, endpoint: "Endpoint", peer: Address, setup_cost: float = 0.0) -> None:
        self.endpoint = endpoint
        self.peer = peer
        self.setup_cost = setup_cost
        self.opened_at = endpoint.scheduler.now
        self.last_activity = self.opened_at
        #: Earliest virtual time a reply may leave this connection.
        self.ready_at = self.opened_at + setup_cost
        self.requests_received = 0
        self.replies_sent = 0
        self.replies_dropped = 0
        self._next_seq = 0
        self._next_to_send = 0
        #: seq -> payload bytes (or None for "no reply"), resolved but unsent.
        self._resolved: dict[int, bytes | None] = {}
        #: Latest scheduled arrival time of anything sent on this connection.
        self._last_arrival = 0.0

    # -- request numbering --------------------------------------------------

    def begin_request(self) -> int:
        """Allocate the FIFO slot for a newly arrived request."""
        seq = self._next_seq
        self._next_seq += 1
        self.requests_received += 1
        self.last_activity = self.endpoint.scheduler.now
        return seq

    @property
    def in_flight(self) -> int:
        """Requests whose replies have not been sent (or skipped) yet."""
        return self._next_seq - self._next_to_send

    # -- reply path ---------------------------------------------------------

    def resolve(self, seq: int, payload: bytes | None) -> None:
        """Provide the reply payload for slot ``seq`` (``None`` = no reply).

        The payload is transmitted once every earlier slot has been resolved
        and the connection's ``ready_at`` handshake gate has passed.
        """
        if seq in self._resolved or seq >= self._next_seq or seq < self._next_to_send:
            raise TransportError(
                f"connection {self.peer} slot {seq} resolved twice or out of range"
            )
        self._resolved[seq] = payload
        self._flush()

    def _flush(self) -> None:
        scheduler = self.endpoint.scheduler
        while self._next_to_send in self._resolved:
            now = scheduler.now
            if now < self.ready_at:
                scheduler.schedule_pooled(
                    self.ready_at - now,
                    self._flush,
                    label=(
                        f"{self.endpoint.name} handshake gate for {self.peer}"
                        if scheduler.tracing
                        else "handshake gate"
                    ),
                )
                return
            payload = self._resolved.pop(self._next_to_send)
            self._next_to_send += 1
            if payload is None:
                continue
            self._transmit(payload)

    def _transmit(self, payload: bytes) -> None:
        endpoint = self.endpoint
        scheduler = endpoint.scheduler
        latency = endpoint.host.network.link_latency(endpoint.host.name, self.peer.host)
        self._last_arrival = _send_in_order(
            scheduler,
            latency.one_way_delay(len(payload)),
            self._last_arrival,
            lambda: self._send_now(payload),
            label=(
                f"{endpoint.name} in-order send to {self.peer}"
                if scheduler.tracing
                else "in-order send"
            ),
        )

    def _send_now(self, payload: bytes) -> None:
        endpoint = self.endpoint
        if not endpoint.running:
            # The endpoint was stopped while this reply was pending: sending
            # through an unbound port would be a protocol violation, so the
            # reply is dropped and accounted for instead.
            self.replies_dropped += 1
            endpoint.stats.replies_dropped += 1
            return
        endpoint.host.send(self.peer, payload, source_port=endpoint.port)
        self.replies_sent += 1
        endpoint.stats.replies_sent += 1
        self.last_activity = endpoint.scheduler.now

    def __repr__(self) -> str:
        return (
            f"Connection({self.peer}, in_flight={self.in_flight}, "
            f"sent={self.replies_sent}, dropped={self.replies_dropped})"
        )


class Endpoint:
    """A server-side request/reply endpoint on the simulated network.

    The endpoint owns the port binding and the dispatch loop: every incoming
    message is assigned to its peer's :class:`Connection`, handed to the
    protocol ``handler`` and answered through the connection's ordered reply
    path.  The handler receives ``(message, connection)`` and returns a
    :data:`ReplyOutcome`; protocol-level parsing, routing and encoding stay in
    the protocol servers (HTTP, GIOP) built on top.
    """

    def __init__(
        self,
        host: Host,
        port: int,
        handler: Callable[[Message, Connection], ReplyOutcome],
        name: str = "endpoint",
        charge_connection_setup: bool = False,
        cores: "ServerCore | None" = None,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name
        self.handler = handler
        #: When enabled, a new connection pays a handshake of one round trip
        #: on its link (SYN + SYN-ACK) before its first reply may leave.
        self.charge_connection_setup = charge_connection_setup
        #: Optional bounded-CPU model: when set, per-request processing
        #: delays are serialised through its cores instead of running in
        #: parallel, so replies queue under load (server contention).
        self.cores = cores
        self.stats = TransportStats()
        self._connections: dict[Address, Connection] = {}
        self._running = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Bind the port and begin dispatching."""
        if self._running:
            return
        self.host.bind(self.port, self._on_message)
        self._running = True

    def stop(self) -> None:
        """Unbind the port; late replies are dropped and counted.

        A dropped reply leaves the requester's keep-alive connection owing
        one response, exactly like a dead HTTP/1.1 server socket: the
        requester's next blocking call on that connection fails and resets
        it (see :meth:`ClientChannel.request`).
        """
        if not self._running:
            return
        self.host.unbind(self.port)
        self._running = False

    @property
    def running(self) -> bool:
        """True while the endpoint is bound to its port."""
        return self._running

    @property
    def scheduler(self):
        """The event scheduler driving this endpoint's network."""
        return self.host.network.scheduler

    @property
    def address(self) -> Address:
        """The network address this endpoint listens on."""
        return Address(self.host.name, self.port)

    # -- connections --------------------------------------------------------

    @property
    def connections(self) -> tuple[Connection, ...]:
        """All connections ever opened, in open order."""
        return tuple(self._connections.values())

    def connection_for(self, peer: Address) -> Connection:
        """Return (opening if necessary) the connection for ``peer``."""
        connection = self._connections.get(peer)
        if connection is not None:
            self.stats.connections_reused += 1
            return connection
        setup_cost = 0.0
        if self.charge_connection_setup:
            latency = self.host.network.link_latency(peer.host, self.host.name)
            setup_cost = 2.0 * latency.one_way_delay(0)
        connection = Connection(self, peer, setup_cost=setup_cost)
        self._connections[peer] = connection
        self.stats.connections_opened += 1
        return connection

    # -- dispatch loop ------------------------------------------------------

    def _on_message(self, message: Message, host: Host) -> None:
        self.stats.requests_received += 1
        if _INTERCEPTORS:
            for interceptor in _INTERCEPTORS:
                interceptor(
                    "server_receive", message.source, len(message.payload), self.name
                )
        connection = self.connection_for(message.source)
        seq = connection.begin_request()
        try:
            outcome = self.handler(message, connection)
        except BaseException:
            # The protocol handler crashed without producing a reply.  Its
            # FIFO slot must still be released — a permanently unresolved
            # slot would withhold every later reply on this connection.
            self.stats.handler_errors += 1
            connection.resolve(seq, None)
            raise
        self._settle(connection, seq, outcome)

    def _settle(self, connection: Connection, seq: int, outcome: ReplyOutcome) -> None:
        if outcome is None:
            connection.resolve(seq, None)
            return
        if isinstance(outcome, Deferred):
            outcome.subscribe(
                lambda payload, error, delay: self._settle_resolved(
                    connection, seq, payload, error, delay
                )
            )
            return
        if isinstance(outcome, tuple):
            payload, delay = outcome
            self._settle_resolved(connection, seq, payload, None, delay)
            return
        connection.resolve(seq, outcome)

    def _settle_resolved(
        self,
        connection: Connection,
        seq: int,
        payload: bytes | None,
        error: BaseException | None,
        delay: float,
    ) -> None:
        if error is not None:
            # A wire-level deferred must encode faults into payloads before
            # resolution; an unencoded error means the protocol layer chose
            # to drop the reply.
            connection.resolve(seq, None)
            return
        if delay > 0:
            cost = delay
            if self.cores is not None:
                delay = self.cores.charge(cost)
            active = _obs_hooks.ACTIVE
            if active is not None:
                # Tell the tracer how the processing delay splits into CPU
                # service vs bounded-core queue wait, so the analyzer can
                # attribute it; same synchronous frame as the dispatch that
                # just closed its server span.
                active.note_server_charge(cost, delay - cost)
        if delay > 0:
            scheduler = self.scheduler
            scheduler.schedule_pooled(
                delay,
                connection.resolve,
                seq,
                payload,
                label=(
                    f"{self.name} processing for {connection.peer}"
                    if scheduler.tracing
                    else "processing"
                ),
            )
            return
        connection.resolve(seq, payload)

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        return (
            f"Endpoint({self.host.name}:{self.port}, {state}, "
            f"connections={len(self._connections)})"
        )


class RouteTable(Generic[T]):
    """Exact-match routing in O(1) with ordered prefix fallback.

    Exact routes are stored in a dict keyed by an arbitrary hashable routing
    key (the HTTP server uses ``(method, path)``); prefix routes are scanned
    in registration order, matching the servlet-container behaviour the paper
    builds on.
    """

    def __init__(self) -> None:
        self._exact: dict[Hashable, T] = {}
        self._prefix: list[tuple[Hashable, str, T]] = []

    def add_exact(self, key: Hashable, value: T) -> None:
        """Register ``value`` under an exact-match key.

        The first registration of a key wins, matching the registration-order
        scan this table replaces.
        """
        self._exact.setdefault(key, value)

    def add_prefix(self, key: Hashable, prefix: str, value: T) -> None:
        """Register a prefix route; ``key`` scopes it (e.g. the method)."""
        self._prefix.append((key, prefix, value))

    def remove(self, value: T) -> None:
        """Remove every registration of ``value``; unknown values are a no-op."""
        self._exact = {key: v for key, v in self._exact.items() if v is not value}
        self._prefix = [entry for entry in self._prefix if entry[2] is not value]

    def lookup(
        self, key: Hashable, prefix_scope: Hashable = None, path: str | None = None
    ) -> T | None:
        """Exact lookup on ``key``, then prefix scan against ``path``.

        Prefix routes are consulted only when their scope (e.g. the HTTP
        method) equals ``prefix_scope``, in registration order.
        """
        value = self._exact.get(key)
        if value is not None:
            return value
        if path is not None:
            for scope, prefix, candidate in self._prefix:
                if scope == prefix_scope and path.startswith(prefix):
                    return candidate
        return None

    @property
    def exact_count(self) -> int:
        """Number of exact-match registrations."""
        return len(self._exact)

    @property
    def prefix_count(self) -> int:
        """Number of prefix registrations."""
        return len(self._prefix)

    def __repr__(self) -> str:
        return f"RouteTable(exact={len(self._exact)}, prefix={len(self._prefix)})"


class _ClientConnection:
    """One client-side connection: a persistent source port to one peer."""

    def __init__(self, channel: "ClientChannel", destination: Address, port: int) -> None:
        self.channel = channel
        self.destination = destination
        self.port = port
        self.requests_sent = 0
        self.replies_received = 0
        self.unsolicited_replies = 0
        #: FIFO queue of pending ``(parse, deferred)`` expectations.
        self._expectations: deque[tuple[Callable[[Message], Any], Deferred]] = deque()
        #: Latest scheduled arrival time of anything sent on this connection.
        self._last_arrival = 0.0
        channel.host.bind(port, self._on_message)

    def send(self, payload: bytes, parse: Callable[[Message], T], deferred: Deferred) -> None:
        """Transmit ``payload`` and expect (in FIFO order) one reply for it.

        Like the server side, the connection behaves as a byte stream: a
        pipelined request is held back just long enough that it cannot
        overtake the previous one in flight.
        """
        self._expectations.append((parse, deferred))
        self.requests_sent += 1
        host = self.channel.host
        scheduler = self.channel.scheduler
        latency = host.network.link_latency(host.name, self.destination.host)
        self._last_arrival = _send_in_order(
            scheduler,
            latency.one_way_delay(len(payload)),
            self._last_arrival,
            lambda: self._send_now(payload),
            label=(
                f"{self.channel.name} in-order send to {self.destination}"
                if scheduler.tracing
                else "in-order send"
            ),
        )

    def _send_now(self, payload: bytes) -> None:
        self.channel.host.send(self.destination, payload, source_port=self.port)

    def close(self) -> None:
        """Release the source port; pending expectations are abandoned.

        A port still owed replies is tombstoned rather than freed, so a
        late reply is dropped and counted instead of crashing delivery.
        """
        if self._expectations:
            self._expectations.clear()
            self.channel._tombstone_port(self.port)
        else:
            self.channel.host.unbind(self.port)

    @property
    def pending(self) -> int:
        """Requests sent on this connection that are still owed a reply."""
        return len(self._expectations)

    def abort(self, error: BaseException) -> int:
        """Fail every pending expectation with ``error`` and reset the port.

        The connection-abort path of the fault layer: when the peer crashes,
        in-flight deferreds fail *now* (so callers can fail over) instead of
        hanging on replies that will never come.  Like :meth:`reset`, the
        source port is rotated so a reply that is somehow still in flight
        lands on a tombstone instead of mis-correlating.
        """
        aborted, self._expectations = list(self._expectations), deque()
        self.channel._tombstone_port(self.port)
        self.port = self.channel._allocate_port()
        self.channel.host.bind(self.port, self._on_message)
        self.channel.requests_aborted += len(aborted)
        for _parse, deferred in aborted:
            deferred.fail(error)
        return len(aborted)

    def reset(self) -> int:
        """Abandon every pending expectation, returning how many there were.

        A keep-alive client that sees a request error cannot trust FIFO
        correlation for the replies it is still owed, so it resets the
        connection — the simulated analogue of closing and reopening the
        socket.  The source port is rotated too: a reply to an abandoned
        request that is still in flight lands on the old port's tombstone
        (counted, dropped — a closed socket answering with RST) instead of
        being mis-correlated with the connection's next request.
        """
        abandoned = len(self._expectations)
        self._expectations.clear()
        self.channel._tombstone_port(self.port)
        self.port = self.channel._allocate_port()
        self.channel.host.bind(self.port, self._on_message)
        return abandoned

    def _on_message(self, message: Message, _host: Host) -> None:
        if not self._expectations:
            self.unsolicited_replies += 1
            return
        parse, deferred = self._expectations.popleft()
        self.replies_received += 1
        try:
            deferred.complete(parse(message))
        except BaseException as exc:  # noqa: BLE001 - parse errors fail the call
            deferred.fail(exc)

    def __repr__(self) -> str:
        return (
            f"_ClientConnection(:{self.port} -> {self.destination}, "
            f"in_flight={len(self._expectations)})"
        )


class ClientChannel:
    """Client-side request issuing with persistent per-destination connections.

    Replaces the per-request ephemeral-port pattern: the first request to a
    destination opens a connection (binds one source port); subsequent
    requests reuse it, which is what lets server endpoints account for
    keep-alive.  Replies are correlated FIFO per connection — exactly the
    guarantee the server-side :class:`Connection` provides.
    """

    def __init__(self, host: Host, base_port: int = 49152, name: str = "channel") -> None:
        self.host = host
        self.name = name
        self.requests_sent = 0
        self.replies_received = 0
        #: Replies that arrived for an abandoned (reset/closed) request.
        self.late_replies_dropped = 0
        #: In-flight requests failed fast by :meth:`abort_pending`.
        self.requests_aborted = 0
        self._next_port = base_port
        self._connections: dict[Address, _ClientConnection] = {}
        # Registered (weakly) so the fault layer can find every channel with
        # in-flight expectations to a crashed host (connection-abort
        # semantics).
        host.network.register_client_channel(self)

    @property
    def scheduler(self):
        """The event scheduler driving this channel's network."""
        return self.host.network.scheduler

    @property
    def connections(self) -> tuple[_ClientConnection, ...]:
        """All open connections, in open order."""
        return tuple(self._connections.values())

    def connection_for(self, destination: Address) -> _ClientConnection:
        """Return (opening if necessary) the connection to ``destination``."""
        connection = self._connections.get(destination)
        if connection is None:
            connection = _ClientConnection(self, destination, self._allocate_port())
            self._connections[destination] = connection
        return connection

    def request_async(
        self,
        destination: Address,
        payload: bytes,
        parse: Callable[[Message], T],
        description: str = "request",
    ) -> Deferred[T]:
        """Send ``payload`` and return a deferred for the parsed reply."""
        if _INTERCEPTORS:
            for interceptor in _INTERCEPTORS:
                interceptor("client_send", destination, len(payload), description)
        deferred: Deferred[T] = Deferred(description)
        connection = self.connection_for(destination)

        def guarded(message: Message) -> T:
            self.replies_received += 1
            return parse(message)

        connection.send(payload, guarded, deferred)
        self.requests_sent += 1
        return deferred

    def request(
        self,
        destination: Address,
        payload: bytes,
        parse: Callable[[Message], T],
        description: str = "request",
    ) -> T:
        """Blocking request: drive the scheduler until the reply arrives.

        If the request errors (connection refused, dead server, parse
        failure), the connection is reset so a stale FIFO expectation cannot
        mis-correlate the next reply on it.
        """
        deferred = self.request_async(destination, payload, parse, description)
        try:
            return deferred.wait(self.scheduler)
        except BaseException:
            self.reset(destination)
            raise

    def abort_pending(self, destination_host: str, error: BaseException | None = None) -> int:
        """Fail fast every in-flight expectation aimed at ``destination_host``.

        Called by the fault layer when a server host crashes: each pending
        deferred on every connection to that host fails with ``error``
        (default: a :class:`ConnectionAbortedError` naming the host), so
        callers can retry against another replica immediately instead of
        hanging on a reply the dead server will never send.
        Returns how many in-flight requests were aborted.
        """
        if error is None:
            error = ConnectionAbortedError(
                f"connection to {destination_host!r} aborted: server crashed"
            )
        aborted = 0
        for destination, connection in list(self._connections.items()):
            if destination.host == destination_host and connection.pending:
                aborted += connection.abort(error)
        return aborted

    def reset(self, destination: Address) -> int:
        """Abandon the connection's pending expectations after a failure.

        Returns how many expectations were dropped (0 when no connection to
        ``destination`` exists).  Blocking callers that unwind with an error
        must call this so a stale FIFO expectation cannot mis-correlate the
        connection's next reply.
        """
        connection = self._connections.get(destination)
        return connection.reset() if connection is not None else 0

    def close(self) -> None:
        """Close every connection and release (or tombstone) their ports.

        Port numbers keep advancing monotonically across close/reopen so a
        reply still in flight to an old connection can never reach a new
        connection that happens to reuse its number.
        """
        for connection in self._connections.values():
            connection.close()
        self._connections.clear()

    def _tombstone_port(self, port: int) -> None:
        """Rebind ``port`` to a sink that counts and drops late replies."""
        self.host.unbind(port)

        def drop(message: Message, _host: Host) -> None:
            self.late_replies_dropped += 1

        self.host.bind(port, drop)

    def _allocate_port(self) -> int:
        while self.host.is_bound(self._next_port):
            self._next_port += 1
        port = self._next_port
        self._next_port += 1
        return port

    def __repr__(self) -> str:
        return (
            f"ClientChannel(host={self.host.name!r}, "
            f"connections={len(self._connections)}, sent={self.requests_sent})"
        )
