"""Deterministic in-process network simulator.

Hosts attach to a :class:`Network`; binding a :class:`PortListener` to a port
makes the host reachable; :meth:`Host.send` delivers a :class:`Message` to the
destination after the delay computed by the network's latency model.  The
simulator supports per-link latency overrides, partitions, per-link fault
profiles (seeded probabilistic loss and jitter — see :mod:`repro.faults`),
crashed-host semantics and per-host/network traffic statistics.

Fault-model invariants (see ARCHITECTURE.md "Fault model"):

* a *partition* or a *link fault* is evaluated when a message's delivery is
  scheduled, i.e. at send time — messages already in flight when a partition
  lands still arrive (like packets already on the wire);
* a *down host* (``Host.down``, set by :meth:`repro.faults.FaultInjector.crash`)
  drops traffic in both places: new sends to it are discarded at transmit
  time and messages already in flight are discarded at delivery time, so a
  crash takes effect instantly and deterministically;
* link-fault jitter is clamped per link direction so delayed messages can
  never overtake earlier ones — per-connection FIFO correlation in the
  transport layer survives any fault profile.

All payloads are byte strings: every protocol in the reproduction (HTTP, SOAP
XML, GIOP) serialises to bytes before transmission, exactly as on a real wire.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.errors import (
    HostNotFoundError,
    NetworkError,
    PortInUseError,
    TransportError,
)
from repro.errors import ConnectionRefusedError as SimConnectionRefusedError
from repro.net.latency import LatencyModel, loopback_profile
from repro.obs import hooks as _obs_hooks
from repro.sim.scheduler import Event, Scheduler


@dataclass(frozen=True, slots=True)
class Address:
    """A ``(host, port)`` pair identifying a network endpoint."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass(slots=True)
class Message:
    """A message in flight on the simulated network.

    ``message_id`` is a per-network sequence number (an ``int``, not a
    formatted string — half a million of these are created per fleet sweep).

    When the owning network's message pool is enabled (see
    :class:`Network`), delivered ``Message`` objects are recycled: the
    ``generation`` counter bumps on each reuse, and references returned by
    :meth:`Host.send` are only valid until the message is delivered.
    """

    message_id: int
    source: Address
    destination: Address
    payload: bytes
    sent_at: float
    delivered_at: float | None = None
    #: Incarnation counter for pooled reuse (excluded from equality/repr so
    #: recycling stays invisible to every observer but the allocator).
    generation: int = field(default=0, repr=False, compare=False)

    @property
    def size_bytes(self) -> int:
        """Size of the payload in bytes (used by the latency model)."""
        return len(self.payload)


class PortListener(Protocol):
    """Anything able to receive messages bound to a host port."""

    def on_message(self, message: Message, host: "Host") -> None:
        """Handle a delivered message."""


class LinkFault(Protocol):
    """Anything able to decide one message's fate on a faulty link.

    Implemented by :class:`repro.faults.LinkFaultProfile`; the simnet only
    knows the protocol, keeping the fault subsystem a strictly higher layer.
    A profile governs exactly one link direction: ``jitter`` announces the
    maximum extra delay it may add and ``last_arrival`` is the network's
    per-direction ordering clamp (jittered messages never overtake).
    """

    jitter: float
    last_arrival: float

    def sample(self, size_bytes: int) -> tuple[bool, float]:
        """Return ``(drop, extra_delay)`` for one message of the given size."""


class _CallbackListener:
    """Adapts a plain callable to the :class:`PortListener` protocol."""

    def __init__(self, callback: Callable[[Message, "Host"], None]) -> None:
        self._callback = callback

    def on_message(self, message: Message, host: "Host") -> None:
        self._callback(message, host)


@dataclass
class TrafficStats:
    """Counters kept per host and per network."""

    messages_sent: int = 0
    messages_received: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class Host:
    """A named machine attached to a :class:`Network`."""

    def __init__(self, name: str, network: "Network") -> None:
        self.name = name
        self.network = network
        self._listeners: dict[int, PortListener] = {}
        self.stats = TrafficStats()
        #: True while the machine is crashed: traffic to it is dropped at
        #: transmit *and* delivery time (see the fault-model invariants in
        #: the module docstring).  Toggled by :mod:`repro.faults`.
        self.down = False

    # -- ports ------------------------------------------------------------

    def bind(self, port: int, listener: PortListener | Callable[[Message, "Host"], None]) -> None:
        """Attach ``listener`` to ``port`` so incoming messages are delivered
        to it.  Raises :class:`PortInUseError` if the port is already bound."""
        if port in self._listeners:
            raise PortInUseError(f"port {port} on host {self.name!r} is already bound")
        if callable(listener) and not hasattr(listener, "on_message"):
            listener = _CallbackListener(listener)
        self._listeners[port] = listener  # type: ignore[assignment]

    def unbind(self, port: int) -> None:
        """Detach the listener from ``port``; unknown ports are ignored."""
        self._listeners.pop(port, None)

    def is_bound(self, port: int) -> bool:
        """True if a listener is currently attached to ``port``."""
        return port in self._listeners

    @property
    def bound_ports(self) -> tuple[int, ...]:
        """The ports that currently have listeners, in ascending order."""
        return tuple(sorted(self._listeners))

    # -- traffic ----------------------------------------------------------

    def send(
        self,
        destination: Address,
        payload: bytes,
        source_port: int = 0,
    ) -> Message:
        """Send ``payload`` to ``destination`` and return the in-flight message."""
        if not isinstance(payload, (bytes, bytearray)):
            raise TransportError(
                f"payload must be bytes, got {type(payload).__name__}; "
                "serialise protocol messages before sending"
            )
        return self.network.transmit(
            source=Address(self.name, source_port),
            destination=destination,
            payload=bytes(payload),
        )

    def send_many(
        self,
        destination: Address,
        payloads: "list[bytes]",
        source_port: int = 0,
    ) -> list[Message]:
        """Send a burst of payloads to one destination in a single call.

        Byte-identical to calling :meth:`send` once per payload in order, but
        the network samples the link latency in one vectorised pass and
        coalesces same-arrival runs into one delivery event each (see
        :meth:`Network.transmit_many`).
        """
        checked = []
        for payload in payloads:
            if not isinstance(payload, (bytes, bytearray)):
                raise TransportError(
                    f"payload must be bytes, got {type(payload).__name__}; "
                    "serialise protocol messages before sending"
                )
            checked.append(bytes(payload))
        return self.network.transmit_many(
            Address(self.name, source_port), destination, checked
        )

    def deliver(self, message: Message) -> None:
        """Called by the network when a message arrives at this host."""
        if self.down:
            # The machine crashed while this message was in flight: a dead
            # NIC receives nothing, so the message is silently discarded
            # (and counted) instead of reaching a stale listener.
            self.stats.messages_dropped += 1
            self.network.stats.messages_dropped += 1
            return
        listener = self._listeners.get(message.destination.port)
        if listener is None:
            self.stats.messages_dropped += 1
            raise SimConnectionRefusedError(
                f"no listener bound to {message.destination} "
                f"(message from {message.source})"
            )
        self.stats.messages_received += 1
        self.stats.bytes_received += message.size_bytes
        listener.on_message(message, self)

    def __repr__(self) -> str:
        return f"Host({self.name!r}, ports={list(self.bound_ports)})"


#: Maximum number of recycled Message objects kept on a network's free list.
_MESSAGE_POOL_LIMIT = 1024


class Network:
    """The simulated network connecting all hosts.

    Parameters
    ----------
    scheduler:
        The event scheduler driving message delivery.
    latency:
        Default latency model applied to every link; individual links can be
        overridden with :meth:`set_link_latency`.
    record_deliveries:
        Keep every delivered :class:`Message` in :attr:`delivered_messages`.
    pool_messages:
        Recycle delivered :class:`Message` objects through a free list
        (arena allocation).  Callers of :meth:`Host.send` must then treat the
        returned message as valid only until delivery — the cluster stack
        opts in because nothing in it retains messages past the delivery
        callback.  Recording deliveries disables recycling for the recorded
        messages automatically.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        latency: LatencyModel | None = None,
        record_deliveries: bool = False,
        pool_messages: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.default_latency = latency if latency is not None else loopback_profile()
        self._hosts: dict[str, Host] = {}
        self._link_latency: dict[tuple[str, str], LatencyModel] = {}
        self._partitions: set[frozenset[str]] = set()
        #: Per-direction link fault profiles (``(source, destination)`` →
        #: an object with ``sample(size_bytes) -> (drop, extra_delay)``,
        #: e.g. :class:`repro.faults.LinkFaultProfile`).
        self._link_faults: dict[tuple[str, str], "LinkFault"] = {}
        #: Weak refs to client channels attached to this network's hosts,
        #: registered by the transport layer so the fault layer can abort
        #: their in-flight expectations when a server crashes (fail fast,
        #: not hang).  Weak so worlds reused across many runs do not
        #: accumulate dead channels; insertion order is preserved (a
        #: WeakSet would make crash-abort iteration nondeterministic).
        self._client_channels: list[weakref.ref] = []
        self._next_message_id = 0
        self.stats = TrafficStats()
        #: Full delivery log, populated only when ``record_deliveries`` is
        #: set (it grows without bound, so large sweeps leave it off).
        self.record_deliveries = record_deliveries
        self.delivered_messages: list[Message] = []
        #: Arena for delivered messages; populated only when pooling is on.
        self.pool_messages = pool_messages
        self._message_pool: list[Message] = []
        #: Most recent delivery batch:
        #: ``(arrival_time, event, event_generation, messages)``.  The
        #: generation snapshot keeps the coalescing check correct now that
        #: delivery events are pooled (the same object may already be a
        #: later incarnation).
        self._batch: tuple[float, Event, int, list[Message]] | None = None

    # -- topology ---------------------------------------------------------

    def add_host(self, name: str) -> Host:
        """Create and register a host named ``name``."""
        if name in self._hosts:
            raise NetworkError(f"host {name!r} already exists")
        host = Host(name, self)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """Return the host named ``name``."""
        try:
            return self._hosts[name]
        except KeyError:
            raise HostNotFoundError(f"unknown host {name!r}") from None

    @property
    def hosts(self) -> tuple[Host, ...]:
        """All registered hosts in registration order."""
        return tuple(self._hosts.values())

    def set_link_latency(self, host_a: str, host_b: str, latency: LatencyModel) -> None:
        """Override the latency model for traffic between two hosts
        (both directions)."""
        self._link_latency[(host_a, host_b)] = latency
        self._link_latency[(host_b, host_a)] = latency

    def link_latency(self, source: str, destination: str) -> LatencyModel:
        """Return the latency model governing ``source`` → ``destination``."""
        return self._link_latency.get((source, destination), self.default_latency)

    # -- failure injection --------------------------------------------------

    def partition(self, host_a: str, host_b: str) -> None:
        """Drop all traffic between the two hosts until :meth:`heal` is called."""
        self._partitions.add(frozenset((host_a, host_b)))

    def heal(self, host_a: str, host_b: str) -> None:
        """Remove a previously installed partition."""
        self._partitions.discard(frozenset((host_a, host_b)))

    def heal_all(self) -> None:
        """Remove every partition."""
        self._partitions.clear()

    def is_partitioned(self, host_a: str, host_b: str) -> bool:
        """True if traffic between the two hosts is currently dropped."""
        return frozenset((host_a, host_b)) in self._partitions

    @property
    def partitions(self) -> tuple[frozenset[str], ...]:
        """Every installed partition pair (iteration-safe snapshot)."""
        return tuple(self._partitions)

    # -- client-channel registry (transport layer) ---------------------------

    def register_client_channel(self, channel) -> None:
        """Register a transport client channel for crash-abort delivery."""
        self._client_channels.append(weakref.ref(channel))

    @property
    def client_channels(self) -> tuple:
        """The live registered client channels, in registration order.

        Dead references are compacted away as a side effect, so a world
        reused for many runs never scans more than its live channels.
        """
        live = []
        live_refs = []
        for ref in self._client_channels:
            channel = ref()
            if channel is not None:
                live.append(channel)
                live_refs.append(ref)
        self._client_channels = live_refs
        return tuple(live)

    def set_link_fault(self, source: str, destination: str, fault: "LinkFault") -> None:
        """Install a fault profile on the ``source`` → ``destination`` link.

        One direction only — install a second profile for the reverse
        direction (each direction keeps its own RNG stream and arrival
        clamp, see :meth:`repro.faults.FaultInjector.drop_link`).
        """
        self._link_faults[(source, destination)] = fault

    def clear_link_fault(self, source: str, destination: str) -> None:
        """Remove the fault profile from one link direction (no-op if none)."""
        self._link_faults.pop((source, destination), None)

    def link_fault(self, source: str, destination: str) -> "LinkFault | None":
        """The fault profile governing ``source`` → ``destination``, if any."""
        return self._link_faults.get((source, destination))

    # -- transmission -------------------------------------------------------

    def transmit(self, source: Address, destination: Address, payload: bytes) -> Message:
        """Queue ``payload`` for delivery and return the in-flight message.

        Delivery is scheduled on the event scheduler after the one-way delay
        given by the governing latency model.  Traffic into a partition is
        counted as dropped and silently discarded, mirroring packet loss.

        Same-instant coalescing: when this send arrives at the exact virtual
        time of the previous one *and* nothing else was scheduled in between,
        the message joins the previous delivery's batch instead of costing
        its own heap entry.  Because the batch event was the most recently
        scheduled event, delivering the newcomer immediately after its batch
        siblings is exactly the ``(time, insertion order)`` the scheduler
        would have produced anyway — determinism is unchanged.
        """
        source_host = self.host(source.host)
        destination_host = self.host(destination.host)

        size = len(payload)
        message = self._new_message(source, destination, payload)
        source_host.stats.messages_sent += 1
        source_host.stats.bytes_sent += size
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size

        if self._partitions and self.is_partitioned(source.host, destination.host):
            self.stats.messages_dropped += 1
            source_host.stats.messages_dropped += 1
            if _obs_hooks.ACTIVE is not None:
                _obs_hooks.ACTIVE.instant(
                    "net.drop", reason="partition", source=source.host, to=destination.host
                )
            return message
        if source_host.down or destination_host.down:
            # A crashed machine neither sends nor receives; dropping at
            # transmit time keeps the event queue free of doomed deliveries.
            self.stats.messages_dropped += 1
            source_host.stats.messages_dropped += 1
            if _obs_hooks.ACTIVE is not None:
                _obs_hooks.ACTIVE.instant(
                    "net.drop", reason="host-down", source=source.host, to=destination.host
                )
            return message

        scheduler = self.scheduler
        latency = self.link_latency(source.host, destination.host)
        delay = latency.one_way_delay(size)
        if self._link_faults:
            fault = self._link_faults.get((source.host, destination.host))
            if fault is not None:
                drop, extra = fault.sample(size)
                if drop:
                    self.stats.messages_dropped += 1
                    source_host.stats.messages_dropped += 1
                    if _obs_hooks.ACTIVE is not None:
                        _obs_hooks.ACTIVE.instant(
                            "net.drop",
                            reason="link-fault",
                            source=source.host,
                            to=destination.host,
                        )
                    return message
                if fault.jitter > 0.0:
                    # Jitter must not let a later message overtake an earlier
                    # one on the same link direction: clamp the arrival to be
                    # strictly after the latest one already scheduled, so the
                    # transport layer's per-connection FIFO correlation holds.
                    arrival = scheduler.clock.now + delay + extra
                    if arrival <= fault.last_arrival:
                        arrival = fault.last_arrival + 1e-9
                    fault.last_arrival = arrival
                    delay = arrival - scheduler.clock.now
        arrival = scheduler.clock.now + delay
        batch = self._batch
        if (
            batch is not None
            and batch[0] == arrival
            and batch[1] is scheduler.last_event
            and batch[1].is_generation(batch[2])
            and batch[1].pending
        ):
            batch[3].append(message)
            return message
        pending = [message]
        label = (
            f"deliver {source} -> {destination}" if scheduler.tracing else "deliver"
        )
        event = scheduler.schedule_pooled(delay, self._deliver_batch, pending, label=label)
        self._batch = (arrival, event, event.generation, pending)
        return message

    def transmit_many(
        self, source: Address, destination: Address, payloads: "list[bytes]"
    ) -> list[Message]:
        """Queue a same-link burst for delivery; one heap push per arrival run.

        Byte-identical to calling :meth:`transmit` once per payload in order:
        the latency model is sampled in one vectorised pass
        (:meth:`LatencyModel.one_way_delays`) and *consecutive* messages with
        equal arrival times share a single delivery event, which is exactly
        the coalescing the scalar path performs one send at a time.  Runs are
        never re-ordered or merged across unequal arrivals, so the dispatch
        order the heap produces is unchanged.

        Links that need per-message decisions — a partition, a crashed
        endpoint, a fault profile with its own RNG stream — fall back to the
        scalar path so drop/jitter sampling consumes randomness in the same
        order as individual sends.
        """
        if not payloads:
            return []
        source_host = self.host(source.host)
        destination_host = self.host(destination.host)
        if (
            (self._partitions and self.is_partitioned(source.host, destination.host))
            or source_host.down
            or destination_host.down
            or self._link_faults.get((source.host, destination.host)) is not None
        ):
            return [self.transmit(source, destination, payload) for payload in payloads]

        scheduler = self.scheduler
        now = scheduler.clock.now
        stats = self.stats
        source_stats = source_host.stats
        sizes = [len(payload) for payload in payloads]
        delays = self.link_latency(source.host, destination.host).one_way_delays(sizes)
        messages = []
        for payload, size in zip(payloads, sizes):
            messages.append(self._new_message(source, destination, payload))
            source_stats.messages_sent += 1
            source_stats.bytes_sent += size
            stats.messages_sent += 1
            stats.bytes_sent += size

        tracing = scheduler.tracing
        index = 0
        count = len(messages)
        while index < count:
            delay = delays[index]
            end = index + 1
            while end < count and delays[end] == delay:
                end += 1
            arrival = now + delay
            batch = self._batch
            if (
                batch is not None
                and batch[0] == arrival
                and batch[1] is scheduler.last_event
                and batch[1].is_generation(batch[2])
                and batch[1].pending
            ):
                batch[3].extend(messages[index:end])
            else:
                pending = messages[index:end]
                label = (
                    f"deliver {source} -> {destination}" if tracing else "deliver"
                )
                event = scheduler.schedule_pooled(
                    delay, self._deliver_batch, pending, label=label
                )
                self._batch = (arrival, event, event.generation, pending)
            index = end
        return messages

    def _new_message(self, source: Address, destination: Address, payload: bytes) -> Message:
        self._next_message_id += 1
        pool = self._message_pool
        if pool:
            message = pool.pop()
            message.generation += 1
            message.message_id = self._next_message_id
            message.source = source
            message.destination = destination
            message.payload = payload
            message.sent_at = self.scheduler.now
            message.delivered_at = None
            return message
        return Message(
            message_id=self._next_message_id,
            source=source,
            destination=destination,
            payload=payload,
            sent_at=self.scheduler.now,
        )

    def _recycle_message(self, message: Message) -> None:
        pool = self._message_pool
        if len(pool) < _MESSAGE_POOL_LIMIT:
            message.payload = b""  # drop the payload reference immediately
            pool.append(message)

    def _deliver_batch(self, messages: list[Message]) -> None:
        now = self.scheduler.now
        stats = self.stats
        record = self.record_deliveries
        pooling = self.pool_messages
        hosts = self._hosts
        for index, message in enumerate(messages):
            target = hosts[message.destination.host]
            if target.down:
                # The destination crashed while this message was in flight:
                # drop at delivery time (see the fault-model invariants).
                stats.messages_dropped += 1
                target.stats.messages_dropped += 1
                if _obs_hooks.ACTIVE is not None:
                    _obs_hooks.ACTIVE.instant(
                        "net.drop",
                        reason="delivery-host-down",
                        source=message.source.host,
                        to=message.destination.host,
                    )
                if pooling:
                    self._recycle_message(message)
                continue
            message.delivered_at = now
            stats.messages_received += 1
            stats.bytes_received += message.size_bytes
            if record:
                self.delivered_messages.append(message)
            try:
                target.deliver(message)
            except BaseException:
                # A failed delivery (unbound port) aborts the run loop just
                # as it did when every message was its own event; the rest
                # of the batch must survive as pending deliveries.
                rest = messages[index + 1 :]
                if rest:
                    self.scheduler.schedule_pooled(
                        0.0, self._deliver_batch, rest, label="deliver"
                    )
                raise
            if pooling and not record:
                self._recycle_message(message)

    def __repr__(self) -> str:
        return f"Network(hosts={list(self._hosts)}, sent={self.stats.messages_sent})"
