"""Deterministic in-process network simulator (backend selector).

The implementation lives in :mod:`repro.net._simnet_impl`; this module
re-exports it from the compiled core (:mod:`repro._ccore`) when one is built
and enabled, and from the pure-Python module otherwise — see
:mod:`repro._backend` for the selection rules (``REPRO_COMPILED=0`` forces
pure Python).  The public API and behaviour are byte-identical either way;
import :class:`Network`/:class:`Host`/:class:`Message` from here, never from
the implementation modules directly.
"""

from repro._backend import load_impl as _load_impl

_impl = _load_impl("_simnet_impl")

Address = _impl.Address
Message = _impl.Message
PortListener = _impl.PortListener
LinkFault = _impl.LinkFault
TrafficStats = _impl.TrafficStats
Host = _impl.Host
Network = _impl.Network

#: Tunables/internals re-exported for tests and diagnostics.
_CallbackListener = _impl._CallbackListener
_MESSAGE_POOL_LIMIT = _impl._MESSAGE_POOL_LIMIT

__all__ = [
    "Address",
    "Message",
    "PortListener",
    "LinkFault",
    "TrafficStats",
    "Host",
    "Network",
]
