"""Latency and CPU-cost models for the simulated network.

Table 1 of the paper reports round-trip times of 0.42–0.58 seconds for a
single RMI call across a T1 LAN between a 1 GHz PowerBook client and a
3.2 GHz Pentium 4 server, including XML or CDR processing on 2004-era
middleware stacks.  The models below capture the *components* of those
numbers:

* network propagation and serialization delay (``LatencyModel``);
* per-endpoint CPU cost of parsing/generating messages, dispatching calls via
  reflection, and the extra indirection SDE introduces (``CostModel``).

The constants in :func:`t1_lan_profile` are calibrated so the reproduction of
Table 1 lands in the same order of magnitude and, more importantly, preserves
the paper's qualitative shape: CORBA beats SOAP, and the SDE variants stay
within roughly 25% of their static counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_non_negative


@dataclass(frozen=True)
class LatencyModel:
    """One-way network delay as a function of message size.

    Attributes
    ----------
    propagation:
        Fixed one-way delay in seconds (distance, switching, kernel).
    bandwidth_bytes_per_second:
        Link bandwidth; ``0`` means infinite bandwidth.
    per_message_overhead:
        Fixed per-message cost (connection handling, TCP/HTTP framing).
    """

    propagation: float = 0.0005
    bandwidth_bytes_per_second: float = 193_000.0  # 1.544 Mbit/s T1 line
    per_message_overhead: float = 0.001

    def __post_init__(self) -> None:
        require_non_negative(self.propagation, "propagation")
        require_non_negative(self.bandwidth_bytes_per_second, "bandwidth_bytes_per_second")
        require_non_negative(self.per_message_overhead, "per_message_overhead")

    def one_way_delay(self, size_bytes: int) -> float:
        """Return the one-way delay for a message of ``size_bytes`` bytes."""
        require_non_negative(size_bytes, "size_bytes")
        transmission = 0.0
        if self.bandwidth_bytes_per_second > 0:
            transmission = size_bytes / self.bandwidth_bytes_per_second
        return self.propagation + self.per_message_overhead + transmission

    def one_way_delays(self, sizes: "list[int] | tuple[int, ...]") -> list[float]:
        """Vectorised :meth:`one_way_delay` for a burst of message sizes.

        Folds the size-independent terms once and skips per-item validation
        (sizes come from ``len(payload)``, which cannot be negative).  Every
        element is bit-identical to the scalar path: the scalar computes
        ``(propagation + overhead) + size/bandwidth`` left-to-right, and so
        does this.
        """
        base = self.propagation + self.per_message_overhead
        bandwidth = self.bandwidth_bytes_per_second
        if bandwidth > 0:
            return [base + size / bandwidth for size in sizes]
        return [base] * len(sizes)


@dataclass(frozen=True)
class CostModel:
    """Per-endpoint CPU cost of handling a message.

    Attributes
    ----------
    fixed_dispatch:
        Base cost of receiving a request and invoking a statically bound
        handler (socket handling, thread hand-off).
    text_parse_per_byte:
        Cost per byte of parsing or generating a *textual* (XML) message.
        SOAP pays this on both request and response.
    binary_parse_per_byte:
        Cost per byte of marshalling/unmarshalling a *binary* (CDR/GIOP)
        message.  Significantly cheaper than text.
    reflection_overhead:
        Extra cost paid when the call is dispatched through the dynamic-class
        reflection path (the SDE servers) rather than a compiled static stub.
    interface_check:
        Cost of the SDE call handler's interface-consistency check (matching
        the request against the live dynamic interface, §5.1.3/§5.2.3).
    dsi_overhead:
        Additional cost of dispatching through the Dynamic Skeleton Interface
        instead of a compiled skeleton (SDE's CORBA subsystem, §5.2.2).
    """

    fixed_dispatch: float = 0.010
    text_parse_per_byte: float = 0.000045
    binary_parse_per_byte: float = 0.000012
    reflection_overhead: float = 0.020
    interface_check: float = 0.008
    dsi_overhead: float = 0.015

    def __post_init__(self) -> None:
        for name in (
            "fixed_dispatch",
            "text_parse_per_byte",
            "binary_parse_per_byte",
            "reflection_overhead",
            "interface_check",
            "dsi_overhead",
        ):
            require_non_negative(getattr(self, name), name)

    def text_processing(self, size_bytes: int) -> float:
        """CPU cost of parsing or producing a textual message of this size."""
        require_non_negative(size_bytes, "size_bytes")
        return self.fixed_dispatch + size_bytes * self.text_parse_per_byte

    def binary_processing(self, size_bytes: int) -> float:
        """CPU cost of marshalling a binary message of this size."""
        require_non_negative(size_bytes, "size_bytes")
        return self.fixed_dispatch + size_bytes * self.binary_parse_per_byte

    def dynamic_dispatch_overhead(self) -> float:
        """Extra cost per call of the live (SDE) dispatch path."""
        return self.reflection_overhead + self.interface_check


def t1_lan_profile() -> LatencyModel:
    """The paper's testbed: two machines on the same T1 local-area network."""
    return LatencyModel(
        propagation=0.0008,
        bandwidth_bytes_per_second=193_000.0,
        per_message_overhead=0.004,
    )


def loopback_profile() -> LatencyModel:
    """Both endpoints on one machine: negligible propagation, huge bandwidth."""
    return LatencyModel(
        propagation=0.00002,
        bandwidth_bytes_per_second=500_000_000.0,
        per_message_overhead=0.00005,
    )


def wan_profile() -> LatencyModel:
    """A wide-area profile used by the sensitivity ablation benchmarks."""
    return LatencyModel(
        propagation=0.040,
        bandwidth_bytes_per_second=1_000_000.0,
        per_message_overhead=0.005,
    )


def era_2004_cost_model() -> CostModel:
    """CPU cost constants calibrated for the paper's 2004-era middleware.

    The absolute values are tuned so that a small echo-style SOAP call over
    :func:`t1_lan_profile` lands around half a second of round-trip time, as
    in Table 1, with the SOAP/CORBA and dynamic/static gaps preserved
    (CORBA faster than SOAP; SDE within roughly 25% of the static servers).
    """
    return CostModel(
        fixed_dispatch=0.055,
        text_parse_per_byte=0.000050,
        binary_parse_per_byte=0.000012,
        reflection_overhead=0.030,
        interface_check=0.015,
        dsi_overhead=0.040,
    )
