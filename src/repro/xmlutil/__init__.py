"""Namespace-aware XML building, serialisation and parsing helpers.

SOAP envelopes and WSDL documents are namespace-heavy XML; this package
provides a small element model (:class:`XmlElement`), qualified names
(:class:`QName`), a deterministic serialiser, and a parser built on the
standard library's ``xml.etree.ElementTree`` that converts documents back
into the element model with namespaces resolved.
"""

from repro.xmlutil.qname import QName, Namespaces
from repro.xmlutil.element import XmlElement
from repro.xmlutil.serializer import serialize, serialize_pretty
from repro.xmlutil.parser import parse

__all__ = [
    "QName",
    "Namespaces",
    "XmlElement",
    "serialize",
    "serialize_pretty",
    "parse",
]
