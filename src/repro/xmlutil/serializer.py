"""Deterministic serialisation of :class:`XmlElement` trees.

The serialiser collects every namespace used anywhere in the document,
declares all of them on the root element with stable prefixes (well-known
namespaces get their conventional prefixes, others get ``ns0``, ``ns1``, ...)
and escapes text and attribute values.  Determinism matters because the
published WSDL/IDL documents are compared byte-for-byte by the SDE publisher
to detect redundant publications.
"""

from __future__ import annotations

from repro.xmlutil.element import XmlElement
from repro.xmlutil.qname import Namespaces, QName

_XML_DECLARATION = '<?xml version="1.0" encoding="UTF-8"?>'


def _escape_text(value: str) -> str:
    if "&" in value or "<" in value or ">" in value:
        return (
            value.replace("&", "&amp;")
            .replace("<", "&lt;")
            .replace(">", "&gt;")
        )
    return value


def _escape_attribute(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")


#: Public aliases used by the SOAP envelope fast path, which must escape
#: byte-identically to this serialiser.
escape_text = _escape_text
escape_attribute = _escape_attribute


def _collect_namespaces(root: XmlElement) -> list[str]:
    # A dict doubles as an ordered set: first-seen document order, O(1) membership.
    seen: dict[str, None] = {}
    for element in root.iter():
        namespace = element.name.namespace
        if namespace:
            seen[namespace] = None
        for qname in element.attributes:
            if qname.namespace:
                seen[qname.namespace] = None
    return list(seen)


def _assign_prefixes(namespaces: list[str]) -> dict[str, str]:
    prefixes: dict[str, str] = {}
    counter = 0
    for namespace in namespaces:
        well_known = Namespaces.DEFAULT_PREFIXES.get(namespace)
        if well_known and well_known not in prefixes.values():
            prefixes[namespace] = well_known
        else:
            prefixes[namespace] = f"ns{counter}"
            counter += 1
    return prefixes


def _qualified(qname: QName, prefixes: dict[str, str]) -> str:
    if qname.namespace:
        return f"{prefixes[qname.namespace]}:{qname.local_name}"
    return qname.local_name


def serialize(root: XmlElement, xml_declaration: bool = True) -> str:
    """Serialise ``root`` to a compact, single-line-per-document string."""
    return _serialize(root, pretty=False, xml_declaration=xml_declaration)


def serialize_pretty(root: XmlElement, xml_declaration: bool = True) -> str:
    """Serialise ``root`` with two-space indentation for human consumption
    (the SDE Manager Interface's "view the WSDL/CORBA-IDL" feature)."""
    return _serialize(root, pretty=True, xml_declaration=xml_declaration)


def _serialize(root: XmlElement, pretty: bool, xml_declaration: bool) -> str:
    namespaces = _collect_namespaces(root)
    prefixes = _assign_prefixes(namespaces)
    parts: list[str] = []
    if xml_declaration:
        parts.append(_XML_DECLARATION)
        if pretty:
            parts.append("\n")
    _write_element(root, prefixes, parts, pretty, depth=0, declare_namespaces=True)
    return "".join(parts)


def _write_element(
    element: XmlElement,
    prefixes: dict[str, str],
    parts: list[str],
    pretty: bool,
    depth: int,
    declare_namespaces: bool,
) -> None:
    indent = "  " * depth if pretty else ""
    newline = "\n" if pretty else ""

    tag = _qualified(element.name, prefixes)
    attribute_parts: list[str] = []
    if declare_namespaces:
        for namespace, prefix in prefixes.items():
            attribute_parts.append(f'xmlns:{prefix}="{_escape_attribute(namespace)}"')
    for name, value in element.attributes.items():
        attribute_parts.append(f'{_qualified(name, prefixes)}="{_escape_attribute(value)}"')

    attributes_text = (" " + " ".join(attribute_parts)) if attribute_parts else ""

    if not element.children and not element.text:
        parts.append(f"{indent}<{tag}{attributes_text}/>{newline}")
        return

    parts.append(f"{indent}<{tag}{attributes_text}>")
    if element.text:
        parts.append(_escape_text(element.text))
    if element.children:
        parts.append(newline)
        for child in element.children:
            _write_element(child, prefixes, parts, pretty, depth + 1, declare_namespaces=False)
        parts.append(indent)
    parts.append(f"</{tag}>{newline}")
