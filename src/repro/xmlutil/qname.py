"""Qualified names and well-known namespace URIs."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import XmlError


class Namespaces:
    """Namespace URIs used by the SOAP/WSDL portions of the system."""

    SOAP_ENVELOPE = "http://schemas.xmlsoap.org/soap/envelope/"
    SOAP_ENCODING = "http://schemas.xmlsoap.org/soap/encoding/"
    WSDL = "http://schemas.xmlsoap.org/wsdl/"
    WSDL_SOAP = "http://schemas.xmlsoap.org/wsdl/soap/"
    XSD = "http://www.w3.org/2001/XMLSchema"
    XSI = "http://www.w3.org/2001/XMLSchema-instance"

    #: Conventional prefixes used by the serialiser for readability.
    DEFAULT_PREFIXES = {
        SOAP_ENVELOPE: "soapenv",
        SOAP_ENCODING: "soapenc",
        WSDL: "wsdl",
        WSDL_SOAP: "wsdlsoap",
        XSD: "xsd",
        XSI: "xsi",
    }


@dataclass(frozen=True)
class QName:
    """A namespace-qualified XML name."""

    namespace: str | None
    local_name: str

    def __post_init__(self) -> None:
        if not self.local_name:
            raise XmlError("local name must not be empty")
        if ":" in self.local_name or " " in self.local_name:
            raise XmlError(f"invalid local name {self.local_name!r}")

    @classmethod
    def plain(cls, local_name: str) -> "QName":
        """A name with no namespace."""
        return _plain_cached(local_name)

    def clark(self) -> str:
        """Return the Clark notation form ``{namespace}local`` used by
        ``xml.etree.ElementTree``."""
        if self.namespace:
            return f"{{{self.namespace}}}{self.local_name}"
        return self.local_name

    @classmethod
    def from_clark(cls, text: str) -> "QName":
        """Parse Clark notation (``{ns}local`` or plain ``local``)."""
        return _from_clark_cached(text)

    def __str__(self) -> str:
        return self.clark()


# QName is immutable, and the same handful of names appear in every envelope
# a fleet sweep parses or serialises, so construction/validation is memoised
# and instances shared.  The caches are unbounded in principle but names come
# from interface definitions, not payload data, so their population is small.


@lru_cache(maxsize=4096)
def _plain_cached(local_name: str) -> QName:
    return QName(None, local_name)


@lru_cache(maxsize=4096)
def _from_clark_cached(text: str) -> QName:
    if text.startswith("{"):
        try:
            namespace, local = text[1:].split("}", 1)
        except ValueError:
            raise XmlError(f"malformed Clark notation: {text!r}") from None
        return QName(namespace, local)
    return QName(None, text)
