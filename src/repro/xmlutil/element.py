"""A small, namespace-aware XML element model.

The model is intentionally simpler than a full DOM: elements have a
:class:`~repro.xmlutil.qname.QName`, string attributes (which may themselves
be namespace qualified), text content and child elements.  This is all the
SOAP, WSDL and IDL-publication code needs, and keeping it small makes the
serialiser and parser easy to reason about and to round-trip test.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import XmlError
from repro.xmlutil.qname import QName


class XmlElement:
    """An element in the XML tree."""

    def __init__(
        self,
        name: QName | str,
        attributes: dict[QName | str, str] | None = None,
        text: str = "",
    ) -> None:
        self.name = self._coerce_name(name)
        self.attributes: dict[QName, str] = {}
        for key, value in (attributes or {}).items():
            self.set_attribute(key, value)
        self.text = text
        self.children: list["XmlElement"] = []

    # -- construction -------------------------------------------------------

    @staticmethod
    def _coerce_name(name: QName | str) -> QName:
        if isinstance(name, QName):
            return name
        if isinstance(name, str):
            return QName.from_clark(name)
        raise XmlError(f"element name must be QName or str, got {type(name).__name__}")

    def set_attribute(self, name: QName | str, value: str) -> None:
        """Set (or overwrite) an attribute."""
        self.attributes[self._coerce_name(name)] = str(value)

    def attribute(self, name: QName | str, default: str | None = None) -> str | None:
        """Return an attribute value, or ``default`` if absent."""
        return self.attributes.get(self._coerce_name(name), default)

    def add_child(self, child: "XmlElement") -> "XmlElement":
        """Append ``child`` and return it (to allow chained building)."""
        if not isinstance(child, XmlElement):
            raise XmlError(f"child must be XmlElement, got {type(child).__name__}")
        self.children.append(child)
        return child

    def add(
        self,
        name: QName | str,
        attributes: dict[QName | str, str] | None = None,
        text: str = "",
    ) -> "XmlElement":
        """Create a child element, append it and return it."""
        return self.add_child(XmlElement(name, attributes, text))

    # -- navigation -----------------------------------------------------------

    def find(self, name: QName | str) -> "XmlElement | None":
        """Return the first direct child with the given name, if any."""
        wanted = self._coerce_name(name)
        for child in self.children:
            if child.name == wanted:
                return child
        return None

    def find_all(self, name: QName | str) -> list["XmlElement"]:
        """Return all direct children with the given name."""
        wanted = self._coerce_name(name)
        return [child for child in self.children if child.name == wanted]

    def require(self, name: QName | str) -> "XmlElement":
        """Return the first direct child with the given name or raise."""
        child = self.find(name)
        if child is None:
            raise XmlError(f"element {self.name} has no child named {name}")
        return child

    def iter(self) -> Iterator["XmlElement"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self.children:
            yield from child.iter()

    # -- comparison -------------------------------------------------------

    def structurally_equal(self, other: "XmlElement") -> bool:
        """Deep equality on names, attributes, text and children.

        Text is compared after stripping surrounding whitespace so that
        pretty-printed and compact serialisations of the same document
        compare equal.
        """
        if self.name != other.name:
            return False
        if self.attributes != other.attributes:
            return False
        if (self.text or "").strip() != (other.text or "").strip():
            return False
        if len(self.children) != len(other.children):
            return False
        return all(
            mine.structurally_equal(theirs)
            for mine, theirs in zip(self.children, other.children)
        )

    def __repr__(self) -> str:
        return f"XmlElement({self.name}, children={len(self.children)})"
