"""Parsing XML text back into :class:`XmlElement` trees.

Parsing uses the standard library's ``xml.etree.ElementTree`` (namespace
resolution, entity handling) and converts the result into the package's own
element model so the rest of the code base deals with a single representation.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.errors import XmlError
from repro.xmlutil.element import XmlElement
from repro.xmlutil.qname import QName


def parse(text: str | bytes) -> XmlElement:
    """Parse XML ``text`` and return the root :class:`XmlElement`.

    Raises
    ------
    XmlError
        If the document is not well formed.
    """
    if isinstance(text, bytes):
        try:
            text = text.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise XmlError(f"document is not valid UTF-8: {exc}") from None
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlError(f"malformed XML: {exc}") from None
    return _convert(root)


def _convert(node: ET.Element) -> XmlElement:
    element = XmlElement(QName.from_clark(node.tag))
    for key, value in node.attrib.items():
        element.set_attribute(QName.from_clark(key), value)
    # Leaf elements carry data (string values may legitimately start or end
    # with whitespace); for elements with children the text is only the
    # serialiser's indentation and is dropped.
    if len(node):
        element.text = (node.text or "").strip()
    else:
        element.text = node.text or ""
    for child in node:
        element.add_child(_convert(child))
    return element
