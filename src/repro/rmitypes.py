"""Shared RMI type model.

The paper's type universe (§2.1/§2.2) is the intersection supported by both
technologies: Java ``String`` and the primitives ``int``, ``double``,
``float``, ``char`` and ``boolean``, plus user-defined structured types
declared in the interface document (WSDL complex types / CORBA-IDL
interfaces) and arrays of those.

This module defines a technology-neutral representation of those types —
:class:`PrimitiveType`, :class:`ArrayType` and :class:`StructType` — together
with a :class:`TypeRegistry` for user-defined structs, value validation and a
mapping to/from Python values.  The SOAP encoding (XSD) and CORBA encoding
(CDR/IDL) layers each provide their own mapping *from* this shared model to
their wire representation, which is exactly how the paper keeps the SDE
manager technology independent (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import ReproError
from repro.util.validation import require_identifier


class TypeError_(ReproError):
    """Raised when a value does not conform to its declared RMI type."""


class RmiType:
    """Base class for all RMI types."""

    def validate(self, value: Any, registry: "TypeRegistry | None" = None) -> None:
        """Raise :class:`TypeError_` unless ``value`` conforms to this type."""
        raise NotImplementedError

    @property
    def type_name(self) -> str:
        """The technology-neutral name of this type (used in signatures)."""
        raise NotImplementedError


@dataclass(frozen=True)
class PrimitiveType(RmiType):
    """One of the primitive types shared by SOAP and CORBA."""

    name: str

    _PYTHON_TYPES = {
        "int": int,
        "double": float,
        "float": float,
        "boolean": bool,
        "string": str,
        "char": str,
        "void": type(None),
    }

    def __post_init__(self) -> None:
        if self.name not in self._PYTHON_TYPES:
            raise TypeError_(f"unknown primitive type {self.name!r}")

    @property
    def type_name(self) -> str:
        return self.name

    def validate(self, value: Any, registry: "TypeRegistry | None" = None) -> None:
        if self.name == "void":
            if value is not None:
                raise TypeError_(f"void type cannot carry value {value!r}")
            return
        expected = self._PYTHON_TYPES[self.name]
        if self.name in ("double", "float"):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise TypeError_(f"expected a number for {self.name}, got {value!r}")
            return
        if self.name == "int":
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError_(f"expected int, got {value!r}")
            return
        if self.name == "char":
            if not isinstance(value, str) or len(value) != 1:
                raise TypeError_(f"expected a single character, got {value!r}")
            return
        if not isinstance(value, expected):
            raise TypeError_(f"expected {self.name}, got {value!r}")

    def __str__(self) -> str:
        return self.name


# Singleton instances used throughout the code base.
INT = PrimitiveType("int")
DOUBLE = PrimitiveType("double")
FLOAT = PrimitiveType("float")
BOOLEAN = PrimitiveType("boolean")
STRING = PrimitiveType("string")
CHAR = PrimitiveType("char")
VOID = PrimitiveType("void")

PRIMITIVES: dict[str, PrimitiveType] = {
    t.name: t for t in (INT, DOUBLE, FLOAT, BOOLEAN, STRING, CHAR, VOID)
}


@dataclass(frozen=True)
class ArrayType(RmiType):
    """A homogeneous sequence of elements of ``element_type``."""

    element_type: RmiType

    @property
    def type_name(self) -> str:
        return f"{self.element_type.type_name}[]"

    def validate(self, value: Any, registry: "TypeRegistry | None" = None) -> None:
        if not isinstance(value, (list, tuple)):
            raise TypeError_(f"expected a sequence for {self.type_name}, got {value!r}")
        for item in value:
            self.element_type.validate(item, registry)

    def __str__(self) -> str:
        return self.type_name


@dataclass(frozen=True)
class FieldDef:
    """A named, typed field of a :class:`StructType`."""

    name: str
    field_type: RmiType

    def __post_init__(self) -> None:
        require_identifier(self.name, "field name")


@dataclass(frozen=True)
class StructType(RmiType):
    """A user-defined structured type with named, typed fields.

    Python values of a struct type are plain dictionaries keyed by field
    name, which keeps user code free of generated classes.
    """

    name: str
    fields: tuple[FieldDef, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        require_identifier(self.name, "struct name")
        seen = set()
        for field_def in self.fields:
            if field_def.name in seen:
                raise TypeError_(f"duplicate field {field_def.name!r} in struct {self.name!r}")
            seen.add(field_def.name)

    @property
    def type_name(self) -> str:
        return self.name

    def field_names(self) -> tuple[str, ...]:
        """The field names in declaration order."""
        return tuple(f.name for f in self.fields)

    def validate(self, value: Any, registry: "TypeRegistry | None" = None) -> None:
        if not isinstance(value, dict):
            raise TypeError_(f"expected a dict for struct {self.name!r}, got {value!r}")
        expected = set(self.field_names())
        actual = set(value.keys())
        if expected != actual:
            raise TypeError_(
                f"struct {self.name!r} expects fields {sorted(expected)}, got {sorted(actual)}"
            )
        for field_def in self.fields:
            field_def.field_type.validate(value[field_def.name], registry)

    def __str__(self) -> str:
        return self.name


class TypeRegistry:
    """Registry of the user-defined struct types known to an interface.

    Both the WSDL generator (complex types) and the IDL generator (interface
    declarations within the module) render the registry's contents into the
    published interface description.
    """

    def __init__(self, structs: Iterable[StructType] = ()) -> None:
        self._structs: dict[str, StructType] = {}
        for struct in structs:
            self.register(struct)

    def register(self, struct: StructType) -> StructType:
        """Register ``struct``; re-registering an identical definition is a
        no-op, while a conflicting redefinition raises."""
        existing = self._structs.get(struct.name)
        if existing is not None and existing != struct:
            raise TypeError_(f"conflicting redefinition of struct {struct.name!r}")
        self._structs[struct.name] = struct
        return struct

    def get(self, name: str) -> StructType:
        """Return the struct named ``name``."""
        try:
            return self._structs[name]
        except KeyError:
            raise TypeError_(f"unknown struct type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._structs

    @property
    def structs(self) -> tuple[StructType, ...]:
        """All registered structs, sorted by name for deterministic output."""
        return tuple(sorted(self._structs.values(), key=lambda s: s.name))

    def copy(self) -> "TypeRegistry":
        """Return an independent copy of this registry."""
        return TypeRegistry(self._structs.values())


def parse_type(name: str, registry: TypeRegistry | None = None) -> RmiType:
    """Resolve a textual type name to an :class:`RmiType`.

    ``"int[]"`` style suffixes denote arrays; anything that is not a
    primitive is looked up in ``registry``.
    """
    name = name.strip()
    if name.endswith("[]"):
        return ArrayType(parse_type(name[:-2], registry))
    if name in PRIMITIVES:
        return PRIMITIVES[name]
    if registry is not None and name in registry:
        return registry.get(name)
    raise TypeError_(f"unknown type name {name!r}")


def python_default(rmi_type: RmiType) -> Any:
    """A neutral default value of the given type (used by generated stubs)."""
    if isinstance(rmi_type, PrimitiveType):
        return {
            "int": 0,
            "double": 0.0,
            "float": 0.0,
            "boolean": False,
            "string": "",
            "char": " ",
            "void": None,
        }[rmi_type.name]
    if isinstance(rmi_type, ArrayType):
        return []
    if isinstance(rmi_type, StructType):
        return {f.name: python_default(f.field_type) for f in rmi_type.fields}
    raise TypeError_(f"cannot produce a default for {rmi_type!r}")


def infer_type(value: Any, registry: TypeRegistry | None = None) -> RmiType:
    """Infer the RMI type of a Python value (used by the DII layer).

    Dictionaries are matched against registered structs by field-name set;
    unknown shapes raise.
    """
    if value is None:
        return VOID
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, str):
        return STRING
    if isinstance(value, (list, tuple)):
        if not value:
            return ArrayType(STRING)
        return ArrayType(infer_type(value[0], registry))
    if isinstance(value, dict) and registry is not None:
        keys = set(value.keys())
        for struct in registry.structs:
            if set(struct.field_names()) == keys:
                return struct
    raise TypeError_(f"cannot infer RMI type of {value!r}")
