"""Common Data Representation (CDR) marshalling.

Values are marshalled into a compact, big-endian binary form.  Every value is
preceded by a one-octet type tag (in real CORBA terms, the values travel as
``any`` with an inline TypeCode); this self-describing encoding is what lets
the Dynamic Skeleton Interface on the server side unmarshal requests without
compile-time knowledge of the interface — exactly the property SDE relies on
to avoid re-initialising the server ORB when methods change (§5.2.2).
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import MarshalError

# Type tags (one octet each).
TAG_NULL = 0x00
TAG_BOOLEAN = 0x01
TAG_INT = 0x02
TAG_DOUBLE = 0x03
TAG_STRING = 0x04
TAG_CHAR = 0x05
TAG_SEQUENCE = 0x06
TAG_STRUCT = 0x07
TAG_FLOAT = 0x08

_TAG_NAMES = {
    TAG_NULL: "null",
    TAG_BOOLEAN: "boolean",
    TAG_INT: "long",
    TAG_DOUBLE: "double",
    TAG_FLOAT: "float",
    TAG_STRING: "string",
    TAG_CHAR: "char",
    TAG_SEQUENCE: "sequence",
    TAG_STRUCT: "struct",
}

# Prebound big-endian packers: struct.Struct methods skip the per-call format
# parse/lookup of module-level struct.pack, and the GIOP hot loop marshals
# hundreds of thousands of values per fleet sweep.
_PACK_LONG = struct.Struct(">q").pack
_PACK_ULONG = struct.Struct(">I").pack
_PACK_DOUBLE = struct.Struct(">d").pack
_PACK_FLOAT = struct.Struct(">f").pack
_UNPACK_LONG = struct.Struct(">q").unpack_from
_UNPACK_ULONG = struct.Struct(">I").unpack_from
_UNPACK_DOUBLE = struct.Struct(">d").unpack_from
_UNPACK_FLOAT = struct.Struct(">f").unpack_from

#: Default preallocation for output buffers; RMI argument lists and results
#: almost always fit, so the bytearray never reallocates mid-marshal.
_DEFAULT_BUFFER_SIZE = 256


class CdrOutputStream:
    """An output buffer for CDR marshalling.

    Backed by one growable ``bytearray`` (pre-sized for the common small
    message) rather than a list of ``bytes`` fragments, so marshalling a
    value appends in place instead of allocating a fragment per primitive
    and joining at the end.
    """

    __slots__ = ("_buffer",)

    def __init__(self, expected_size: int = _DEFAULT_BUFFER_SIZE) -> None:
        buffer = bytearray(expected_size)
        del buffer[:]  # keep the allocation, drop the contents
        self._buffer = buffer

    # -- primitives --------------------------------------------------------

    def write_octet(self, value: int) -> None:
        """Write a single unsigned byte."""
        self._buffer.append(value & 0xFF)

    def write_long(self, value: int) -> None:
        """Write a signed 64-bit integer."""
        try:
            self._buffer += _PACK_LONG(value)
        except struct.error as exc:
            raise MarshalError(f"integer {value!r} does not fit in 64 bits: {exc}") from None

    def write_ulong(self, value: int) -> None:
        """Write an unsigned 32-bit integer (lengths, counts)."""
        if value < 0 or value > 0xFFFFFFFF:
            raise MarshalError(f"unsigned long out of range: {value!r}")
        self._buffer += _PACK_ULONG(value)

    def write_double(self, value: float) -> None:
        """Write a 64-bit IEEE double."""
        self._buffer += _PACK_DOUBLE(float(value))

    def write_float(self, value: float) -> None:
        """Write a 32-bit IEEE float."""
        self._buffer += _PACK_FLOAT(float(value))

    def write_boolean(self, value: bool) -> None:
        """Write a boolean octet."""
        self._buffer.append(1 if value else 0)

    def write_string(self, value: str) -> None:
        """Write a length-prefixed UTF-8 string."""
        encoded = value.encode("utf-8")
        buffer = self._buffer
        buffer += _PACK_ULONG(len(encoded))
        buffer += encoded

    def write_bytes(self, value: bytes) -> None:
        """Write a length-prefixed byte sequence."""
        buffer = self._buffer
        buffer += _PACK_ULONG(len(value))
        buffer += value

    # -- values -------------------------------------------------------------

    def write_value(self, value: Any) -> None:
        """Marshal ``value`` with an inline type tag."""
        buffer = self._buffer
        if value is None:
            buffer.append(TAG_NULL)
        elif value is True:
            buffer.append(TAG_BOOLEAN)
            buffer.append(1)
        elif value is False:
            buffer.append(TAG_BOOLEAN)
            buffer.append(0)
        elif isinstance(value, int):
            buffer.append(TAG_INT)
            self.write_long(value)
        elif isinstance(value, float):
            buffer.append(TAG_DOUBLE)
            buffer += _PACK_DOUBLE(value)
        elif isinstance(value, str):
            buffer.append(TAG_STRING)
            self.write_string(value)
        elif isinstance(value, (list, tuple)):
            buffer.append(TAG_SEQUENCE)
            buffer += _PACK_ULONG(len(value))
            for item in value:
                self.write_value(item)
        elif isinstance(value, dict):
            buffer.append(TAG_STRUCT)
            buffer += _PACK_ULONG(len(value))
            for key in value:
                if not isinstance(key, str):
                    raise MarshalError(f"struct field names must be strings, got {key!r}")
                self.write_string(key)
                self.write_value(value[key])
        else:
            raise MarshalError(f"cannot marshal value of type {type(value).__name__}")

    def getvalue(self) -> bytes:
        """Return the marshalled bytes."""
        return bytes(self._buffer)

    def reset(self) -> None:
        """Drop the contents but keep the allocation (scratch-buffer reuse)."""
        del self._buffer[:]

    def __len__(self) -> int:
        return len(self._buffer)


class CdrInputStream:
    """An input buffer for CDR unmarshalling.

    Reads decode in place with prebound ``unpack_from`` callables — no
    per-read slice for fixed-width primitives.
    """

    __slots__ = ("_data", "_offset")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    @property
    def remaining(self) -> int:
        """Number of unread bytes."""
        return len(self._data) - self._offset

    def _take(self, count: int) -> bytes:
        offset = self._offset
        end = offset + count
        if end > len(self._data):
            raise MarshalError(
                f"unexpected end of CDR stream: wanted {count} bytes, have {self.remaining}"
            )
        self._offset = end
        return self._data[offset:end]

    def _advance(self, count: int) -> int:
        offset = self._offset
        if offset + count > len(self._data):
            raise MarshalError(
                f"unexpected end of CDR stream: wanted {count} bytes, have {self.remaining}"
            )
        self._offset = offset + count
        return offset

    # -- primitives ----------------------------------------------------------

    def read_octet(self) -> int:
        """Read a single unsigned byte."""
        return self._data[self._advance(1)]

    def read_long(self) -> int:
        """Read a signed 64-bit integer."""
        return _UNPACK_LONG(self._data, self._advance(8))[0]

    def read_ulong(self) -> int:
        """Read an unsigned 32-bit integer."""
        return _UNPACK_ULONG(self._data, self._advance(4))[0]

    def read_double(self) -> float:
        """Read a 64-bit IEEE double."""
        return _UNPACK_DOUBLE(self._data, self._advance(8))[0]

    def read_float(self) -> float:
        """Read a 32-bit IEEE float."""
        return _UNPACK_FLOAT(self._data, self._advance(4))[0]

    def read_boolean(self) -> bool:
        """Read a boolean octet."""
        return self.read_octet() != 0

    def read_string(self) -> str:
        """Read a length-prefixed UTF-8 string."""
        length = self.read_ulong()
        try:
            return self._take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MarshalError(f"malformed string in CDR stream: {exc}") from None

    def read_bytes(self) -> bytes:
        """Read a length-prefixed byte sequence."""
        return self._take(self.read_ulong())

    # -- values ---------------------------------------------------------------

    def read_value(self) -> Any:
        """Unmarshal one tagged value."""
        tag = self.read_octet()
        if tag == TAG_NULL:
            return None
        if tag == TAG_BOOLEAN:
            return self.read_boolean()
        if tag == TAG_INT:
            return self.read_long()
        if tag == TAG_DOUBLE:
            return self.read_double()
        if tag == TAG_FLOAT:
            return self.read_float()
        if tag == TAG_STRING:
            return self.read_string()
        if tag == TAG_CHAR:
            return self.read_string()
        if tag == TAG_SEQUENCE:
            count = self.read_ulong()
            return [self.read_value() for _ in range(count)]
        if tag == TAG_STRUCT:
            count = self.read_ulong()
            result: dict[str, Any] = {}
            for _ in range(count):
                key = self.read_string()
                result[key] = self.read_value()
            return result
        raise MarshalError(f"unknown CDR type tag 0x{tag:02x}")


#: Cap on the reusable scratch buffer: one giant value must not pin a huge
#: allocation for the rest of the process.
_SCRATCH_LIMIT = 1 << 16

#: Reusable scratch stream for :func:`marshal_values`.  ``getvalue`` copies
#: out of the buffer, so reuse never aliases returned bytes.  ``None`` while
#: a marshal is in flight — the reentrancy guard: if marshalling a value
#: somehow re-enters (an exotic ``__index__``/property on a marshalled
#: object), the inner call sees ``None`` and uses a private stream.
_scratch: CdrOutputStream | None = CdrOutputStream()


def _write_values(stream: CdrOutputStream, values: tuple[Any, ...] | list[Any]) -> bytes:
    stream.write_ulong(len(values))
    for value in values:
        stream.write_value(value)
    return stream.getvalue()


def marshal_values(values: tuple[Any, ...] | list[Any]) -> bytes:
    """Marshal a sequence of values (an argument list or a single result)."""
    global _scratch
    stream = _scratch
    if stream is None:
        return _write_values(CdrOutputStream(), values)
    _scratch = None
    try:
        stream.reset()
        return _write_values(stream, values)
    finally:
        if len(stream) <= _SCRATCH_LIMIT:
            _scratch = stream
        else:
            _scratch = CdrOutputStream()


def unmarshal_values(data: bytes) -> list[Any]:
    """Unmarshal a sequence of values written by :func:`marshal_values`."""
    stream = CdrInputStream(data)
    count = stream.read_ulong()
    values = [stream.read_value() for _ in range(count)]
    if stream.remaining:
        raise MarshalError(f"{stream.remaining} trailing bytes after CDR values")
    return values
