"""Dynamic Invocation Interface (DII).

CDE's CORBA support is built on "the Dynamic Invocation Interface (DII)
implementation of OpenORB" (§2.3): instead of compiled stubs, the client
constructs requests at run time from the operation name and argument list.
This is what allows the client's view of the server interface to change while
the client keeps running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.corba.orb import RemoteObjectReference
from repro.errors import CorbaError


@dataclass
class DiiRequest:
    """A dynamically constructed invocation on a remote object."""

    target: RemoteObjectReference
    operation: str
    arguments: list[Any] = field(default_factory=list)
    _invoked: bool = False
    _result: Any = None

    def add_argument(self, value: Any) -> "DiiRequest":
        """Append an argument (returns self for chaining)."""
        if self._invoked:
            raise CorbaError("cannot add arguments after the request has been invoked")
        self.arguments.append(value)
        return self

    def invoke(self) -> Any:
        """Send the request and return the result (blocking)."""
        if self._invoked:
            raise CorbaError("DII request has already been invoked")
        self._invoked = True
        self._result = self.target.invoke(self.operation, *self.arguments)
        return self._result

    @property
    def result(self) -> Any:
        """The result of a completed invocation."""
        if not self._invoked:
            raise CorbaError("DII request has not been invoked yet")
        return self._result


def create_request(
    target: RemoteObjectReference, operation: str, *arguments: Any
) -> DiiRequest:
    """Convenience factory mirroring CORBA's ``Object::_create_request``."""
    return DiiRequest(target=target, operation=operation, arguments=list(arguments))
