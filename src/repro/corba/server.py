"""Static CORBA server — the "OpenORB server" baseline of Table 1.

A :class:`StaticCorbaServer` deploys a fixed service behind a server ORB:
the CORBA-IDL document and the IOR are generated at deployment time and can
optionally be published over an HTTP server (the paper's clients retrieve
both documents over HTTP, Figure 2 step 1).  There is no live update
machinery — the static baseline, like a plain OpenORB deployment, requires a
restart to change the interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.corba.idl import generate_idl
from repro.corba.ior import IOR
from repro.corba.orb import ServerOrb
from repro.corba.poa import PortableObjectAdapter
from repro.corba.servant import StaticServant
from repro.errors import CorbaError
from repro.interface import InterfaceDescription, OperationSignature
from repro.net.http import HttpResponse, HttpServer
from repro.net.latency import CostModel
from repro.net.simnet import Host
from repro.rmitypes import StructType


@dataclass
class CorbaServiceDefinition:
    """A statically deployed CORBA service: signatures plus implementations."""

    service_name: str
    namespace: str
    operations: list[tuple[OperationSignature, Callable[..., Any]]] = field(default_factory=list)
    structs: list[StructType] = field(default_factory=list)

    def add_operation(
        self, signature: OperationSignature, implementation: Callable[..., Any]
    ) -> None:
        """Register an operation and its implementation."""
        if any(existing.name == signature.name for existing, _ in self.operations):
            raise CorbaError(f"operation {signature.name!r} is already defined")
        self.operations.append((signature, implementation))

    def signatures(self) -> tuple[OperationSignature, ...]:
        """The operation signatures in registration order."""
        return tuple(signature for signature, _ in self.operations)


class StaticCorbaServer:
    """A statically deployed CORBA service bound to a simulated host."""

    def __init__(
        self,
        host: Host,
        iiop_port: int,
        definition: CorbaServiceDefinition,
        cost_model: CostModel | None = None,
        speed_factor: float = 1.0,
        http_port: int | None = None,
    ) -> None:
        self.host = host
        self.iiop_port = iiop_port
        self.definition = definition
        self.object_key = definition.service_name

        self.poa = PortableObjectAdapter()
        self.servant = StaticServant(definition.service_name)
        for signature, implementation in definition.operations:
            self.servant.register(signature, implementation)
        self.poa.activate_object(self.object_key, self.servant)

        self.orb = ServerOrb(
            host,
            iiop_port,
            poa=self.poa,
            cost_model=cost_model,
            speed_factor=speed_factor,
        )

        self.description = InterfaceDescription(
            service_name=definition.service_name,
            namespace=definition.namespace,
            endpoint_url=f"iiop://{host.name}:{iiop_port}/{self.object_key}",
        ).with_operations(definition.signatures(), definition.structs)
        self._idl_document = generate_idl(self.description)

        self.http_server: HttpServer | None = None
        if http_port is not None:
            self.http_server = HttpServer(host, http_port, name=f"corba-pub:{definition.service_name}")
            self.http_server.add_route(self.idl_path, lambda _req: HttpResponse.ok_text(self._idl_document), methods=("GET",))
            self.http_server.add_route(self.ior_path, lambda _req: HttpResponse.ok_text(self.ior.stringify()), methods=("GET",))

    # -- documents -------------------------------------------------------------

    @property
    def idl_document(self) -> str:
        """The CORBA-IDL document describing this (fixed) service."""
        return self._idl_document

    @property
    def ior(self) -> IOR:
        """The IOR naming the deployed object."""
        return IOR(
            type_id=self.servant.repository_id,
            host=self.host.name,
            port=self.iiop_port,
            object_key=self.object_key,
        )

    @property
    def idl_path(self) -> str:
        """HTTP path of the published IDL document (when HTTP publication is on)."""
        return f"/corba/{self.definition.service_name}.idl"

    @property
    def ior_path(self) -> str:
        """HTTP path of the published IOR (when HTTP publication is on)."""
        return f"/corba/{self.definition.service_name}.ior"

    @property
    def idl_url(self) -> str:
        """Full URL of the published IDL document."""
        if self.http_server is None:
            raise CorbaError("HTTP publication is not enabled for this server")
        return f"{self.http_server.url}{self.idl_path}"

    @property
    def ior_url(self) -> str:
        """Full URL of the published IOR."""
        if self.http_server is None:
            raise CorbaError("HTTP publication is not enabled for this server")
        return f"{self.http_server.url}{self.ior_path}"

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Deploy: start the server ORB (and the HTTP publication server)."""
        self.orb.start()
        if self.http_server is not None:
            self.http_server.start()

    def stop(self) -> None:
        """Undeploy the service."""
        self.orb.stop()
        if self.http_server is not None:
            self.http_server.stop()

    @property
    def calls_served(self) -> int:
        """Number of successful invocations handled by the ORB."""
        return self.orb.requests_handled

    @property
    def connection_count(self) -> int:
        """Client connections the IIOP endpoint has accepted."""
        return len(self.orb.endpoint.connections)

    def __repr__(self) -> str:
        return f"StaticCorbaServer({self.definition.service_name!r} at {self.host.name}:{self.iiop_port})"
