"""GIOP message framing over the simulated IIOP transport.

Only the two message kinds the RMI call path needs are implemented: Request
and Reply (§2.2 considers only the RMI aspect of CORBA).  Messages carry a
12-byte header (magic, version, message type, body size) followed by a CDR
body, mirroring real GIOP closely enough that sizes and parse costs behave
realistically while keeping the implementation compact.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.corba.cdr import CdrInputStream, CdrOutputStream
from repro.errors import GiopError, MarshalError

_MAGIC = b"GIOP"
_VERSION = (1, 2)


class MessageType(IntEnum):
    """GIOP message types used by the RMI call path."""

    REQUEST = 0
    REPLY = 1


class ReplyStatus(IntEnum):
    """Status of a GIOP Reply."""

    NO_EXCEPTION = 0
    USER_EXCEPTION = 1
    SYSTEM_EXCEPTION = 2


@dataclass(frozen=True)
class RequestMessage:
    """A GIOP Request: invoke ``operation`` on the object named by ``object_key``."""

    request_id: int
    object_key: str
    operation: str
    arguments_cdr: bytes
    #: Optional service-context slot (OMG portable-interceptor style): an
    #: opaque payload — the observability layer's trace context — appended
    #: after the arguments.  Empty contexts are not framed at all, so a
    #: request without one is byte-identical to the historical encoding.
    service_context: bytes = b""

    def to_bytes(self) -> bytes:
        """Serialise header + body."""
        body = CdrOutputStream()
        body.write_ulong(self.request_id)
        body.write_string(self.object_key)
        body.write_string(self.operation)
        body.write_bytes(self.arguments_cdr)
        if self.service_context:
            body.write_bytes(self.service_context)
        return _frame(MessageType.REQUEST, body.getvalue())


@dataclass(frozen=True)
class ReplyMessage:
    """A GIOP Reply carrying a result or an exception."""

    request_id: int
    status: ReplyStatus
    body_cdr: bytes
    exception_type: str = ""
    exception_detail: str = ""

    def to_bytes(self) -> bytes:
        """Serialise header + body."""
        body = CdrOutputStream()
        body.write_ulong(self.request_id)
        body.write_ulong(int(self.status))
        body.write_string(self.exception_type)
        body.write_string(self.exception_detail)
        body.write_bytes(self.body_cdr)
        return _frame(MessageType.REPLY, body.getvalue())


def _frame(message_type: MessageType, body: bytes) -> bytes:
    header = bytearray()
    header.extend(_MAGIC)
    header.append(_VERSION[0])
    header.append(_VERSION[1])
    header.append(0)  # flags: big-endian
    header.append(int(message_type))
    header.extend(len(body).to_bytes(4, "big"))
    return bytes(header) + body


def parse_message(data: bytes) -> RequestMessage | ReplyMessage:
    """Parse a framed GIOP message into a Request or Reply.

    Raises
    ------
    GiopError
        If the header is malformed, the size field disagrees with the
        payload, or the body cannot be unmarshalled.
    """
    if len(data) < 12:
        raise GiopError(f"GIOP message too short: {len(data)} bytes")
    if data[:4] != _MAGIC:
        raise GiopError(f"bad GIOP magic: {data[:4]!r}")
    major, minor, _flags, message_type = data[4], data[5], data[6], data[7]
    if (major, minor) != _VERSION:
        raise GiopError(f"unsupported GIOP version {major}.{minor}")
    size = int.from_bytes(data[8:12], "big")
    body = data[12:]
    if len(body) != size:
        raise GiopError(f"GIOP size field says {size} bytes but body has {len(body)}")

    stream = CdrInputStream(body)
    try:
        if message_type == MessageType.REQUEST:
            request_id = stream.read_ulong()
            object_key = stream.read_string()
            operation = stream.read_string()
            arguments_cdr = stream.read_bytes()
            # The trailing service-context slot is optional: absent bytes
            # decode to an empty context (old peers, untraced requests).
            service_context = stream.read_bytes() if stream.remaining else b""
            return RequestMessage(
                request_id=request_id,
                object_key=object_key,
                operation=operation,
                arguments_cdr=arguments_cdr,
                service_context=service_context,
            )
        if message_type == MessageType.REPLY:
            return ReplyMessage(
                request_id=stream.read_ulong(),
                status=ReplyStatus(stream.read_ulong()),
                exception_type=stream.read_string(),
                exception_detail=stream.read_string(),
                body_cdr=stream.read_bytes(),
            )
    except (MarshalError, ValueError) as exc:
        raise GiopError(f"malformed GIOP body: {exc}") from None
    raise GiopError(f"unknown GIOP message type {message_type}")
