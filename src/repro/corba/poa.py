"""Portable Object Adapter: maps object keys to servants.

The server ORB "intercepts the call, finds the object that can handle the
request" (§2.2); the lookup from the object key carried in the GIOP Request
to the servant is the object adapter's job.
"""

from __future__ import annotations

from repro.corba.servant import Servant
from repro.errors import CorbaSystemException


class PortableObjectAdapter:
    """A minimal POA: an object-key → servant table with activation state."""

    def __init__(self, name: str = "RootPOA") -> None:
        self.name = name
        self._servants: dict[str, Servant] = {}

    def activate_object(self, object_key: str, servant: Servant) -> None:
        """Register ``servant`` under ``object_key``."""
        if object_key in self._servants:
            raise CorbaSystemException(
                "OBJ_ADAPTER", f"object key {object_key!r} is already active"
            )
        self._servants[object_key] = servant

    def deactivate_object(self, object_key: str) -> None:
        """Remove the servant registered under ``object_key``."""
        self._servants.pop(object_key, None)

    def replace_servant(self, object_key: str, servant: Servant) -> None:
        """Swap the servant registered under ``object_key``.

        SDE uses this when a new instance of the dynamic server class is
        created without re-initialising the server ORB (§5.2.2).
        """
        self._servants[object_key] = servant

    def servant_for(self, object_key: str) -> Servant:
        """Return the servant for ``object_key``.

        Raises
        ------
        CorbaSystemException
            ``OBJECT_NOT_EXIST`` when no servant is active under that key.
        """
        servant = self._servants.get(object_key)
        if servant is None:
            raise CorbaSystemException(
                "OBJECT_NOT_EXIST", f"no active object for key {object_key!r}"
            )
        return servant

    @property
    def active_keys(self) -> tuple[str, ...]:
        """The currently active object keys."""
        return tuple(self._servants)

    def __repr__(self) -> str:
        return f"PortableObjectAdapter({self.name!r}, active={list(self._servants)})"
