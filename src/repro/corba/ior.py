"""Interoperable Object References (IORs).

A CORBA-RMI client "must attain both a CORBA-IDL document as well as an IOR
in order to establish a communication link with a server" (§2.2).  An IOR
encodes the repository type id and an IIOP profile (host, port, object key);
it is rendered in the conventional ``IOR:<hex>`` stringified form so it can
be published over HTTP by the Interface Server and pasted around by
developers, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corba.cdr import CdrInputStream, CdrOutputStream
from repro.errors import IorError, MarshalError


@dataclass(frozen=True)
class IOR:
    """An Interoperable Object Reference with a single IIOP profile."""

    type_id: str
    host: str
    port: int
    object_key: str

    def __post_init__(self) -> None:
        if not self.host:
            raise IorError("IOR host must not be empty")
        if not (0 < self.port < 65536):
            raise IorError(f"IOR port out of range: {self.port}")
        if not self.object_key:
            raise IorError("IOR object key must not be empty")

    # -- stringification ------------------------------------------------------

    def stringify(self) -> str:
        """Render as the ``IOR:<hex>`` stringified form."""
        stream = CdrOutputStream()
        stream.write_string(self.type_id)
        stream.write_string(self.host)
        stream.write_ulong(self.port)
        stream.write_string(self.object_key)
        return "IOR:" + stream.getvalue().hex()

    @classmethod
    def from_string(cls, text: str) -> "IOR":
        """Parse the ``IOR:<hex>`` stringified form."""
        text = text.strip()
        if not text.startswith("IOR:"):
            raise IorError(f"stringified IOR must start with 'IOR:', got {text[:16]!r}")
        try:
            data = bytes.fromhex(text[len("IOR:"):])
        except ValueError as exc:
            raise IorError(f"malformed IOR hex payload: {exc}") from None
        try:
            stream = CdrInputStream(data)
            type_id = stream.read_string()
            host = stream.read_string()
            port = stream.read_ulong()
            object_key = stream.read_string()
        except MarshalError as exc:
            raise IorError(f"truncated IOR payload: {exc}") from None
        return cls(type_id=type_id, host=host, port=port, object_key=object_key)

    def __str__(self) -> str:
        return self.stringify()
