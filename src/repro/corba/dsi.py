"""Dynamic Skeleton Interface (DSI).

"The Dynamic Skeleton Interface technology allows applications to provide
implementations of the operations on CORBA objects without static knowledge
of the object's interface.  We use DSI to avoid reinitializing the Server ORB
when the server methods or types change." (§5.2.2)

A :class:`DynamicServant` receives each incoming call as a
:class:`ServerRequest` and decides at run time how to handle it; SDE's CORBA
Call Handler is implemented on top of this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.corba.servant import Servant
from repro.errors import CorbaSystemException


@dataclass
class ServerRequest:
    """The server-side reification of one incoming invocation."""

    operation: str
    arguments: list[Any]
    object_key: str = ""
    request_id: int = 0
    _result: Any = None
    _result_set: bool = False
    _exception: BaseException | None = None

    def set_result(self, value: Any) -> None:
        """Record the operation result."""
        self._result = value
        self._result_set = True

    def set_exception(self, error: BaseException) -> None:
        """Record an exception to be propagated to the client."""
        self._exception = error
        self._result_set = True

    @property
    def completed(self) -> bool:
        """True once a result or exception has been recorded."""
        return self._result_set

    def outcome(self) -> Any:
        """Return the recorded result or raise the recorded exception."""
        if not self._result_set:
            raise CorbaSystemException(
                "NO_RESPONSE", f"dynamic invocation of {self.operation!r} produced no outcome"
            )
        if self._exception is not None:
            raise self._exception
        return self._result


class DynamicServant(Servant):
    """A servant whose dispatch logic is supplied as a callable.

    The handler receives the :class:`ServerRequest` and must call
    :meth:`ServerRequest.set_result` or :meth:`ServerRequest.set_exception`.
    """

    def __init__(
        self,
        type_name: str,
        handler: Callable[[ServerRequest], None],
    ) -> None:
        self.type_name = type_name
        self.repository_id = f"IDL:repro/{type_name}:1.0"
        self._handler = handler
        self.requests_handled = 0

    def invoke(self, operation: str, arguments: list[Any]) -> Any:
        request = ServerRequest(operation=operation, arguments=list(arguments))
        self._handler(request)
        self.requests_handled += 1
        return request.outcome()

    def __repr__(self) -> str:
        return f"DynamicServant({self.type_name!r}, handled={self.requests_handled})"
