"""Parsing a CORBA-IDL document back into an :class:`InterfaceDescription`.

The parser is a small tokenizer + recursive-descent parser for the subset of
IDL the generator emits (which is also the subset the paper's type mapping
allows): one module, ``interface`` blocks containing either ``attribute``
declarations (user-defined struct types) or operation declarations, and
``sequence<T>`` types.  By the generator's convention the *last* interface in
the module is the service interface; every preceding interface declares a
struct type.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.corba.idl.mapping import rmi_type_from_idl
from repro.errors import IdlError
from repro.interface import InterfaceDescription, OperationSignature, Parameter
from repro.rmitypes import FieldDef, StructType, TypeRegistry

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<word>[A-Za-z_][A-Za-z0-9_]*)|(?P<symbol>[{}();,<>])|(?P<other>\S))"
)


@dataclass
class _Pragmas:
    version: int = 0
    namespace: str = ""
    endpoint: str = ""


@dataclass
class _RawInterface:
    name: str
    attributes: list[tuple[str, str]] = field(default_factory=list)  # (type, name)
    operations: list[tuple[str, str, list[tuple[str, str]]]] = field(default_factory=list)
    # operations: (return type, name, [(param type, param name), ...])


class _Tokenizer:
    def __init__(self, text: str) -> None:
        self.tokens: list[str] = []
        for line in text.splitlines():
            stripped = line.split("//", 1)[0]
            if stripped.lstrip().startswith("#"):
                continue
            position = 0
            while position < len(stripped):
                match = _TOKEN_RE.match(stripped, position)
                if match is None:
                    break
                token = match.group("word") or match.group("symbol") or match.group("other")
                self.tokens.append(token)
                position = match.end()
        self.index = 0

    def peek(self) -> str | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise IdlError("unexpected end of IDL document")
        self.index += 1
        return token

    def expect(self, expected: str) -> str:
        token = self.next()
        if token != expected:
            raise IdlError(f"expected {expected!r} but found {token!r}")
        return token


def _parse_pragmas(text: str) -> _Pragmas:
    pragmas = _Pragmas()
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped.startswith("#pragma"):
            continue
        parts = stripped.split(None, 2)
        if len(parts) < 3:
            continue
        _, key, value = parts
        if key == "version":
            try:
                pragmas.version = int(value)
            except ValueError:
                raise IdlError(f"malformed version pragma: {value!r}") from None
        elif key == "namespace":
            pragmas.namespace = value
        elif key == "endpoint":
            pragmas.endpoint = value
    return pragmas


def _parse_type_token(tokens: _Tokenizer) -> str:
    """Read a type spelling, which may be ``sequence<...>`` (possibly nested)."""
    token = tokens.next()
    if token != "sequence":
        return token
    tokens.expect("<")
    inner = _parse_type_token(tokens)
    tokens.expect(">")
    return f"sequence<{inner}>"


def _parse_interface(tokens: _Tokenizer) -> _RawInterface:
    tokens.expect("interface")
    name = tokens.next()
    tokens.expect("{")
    raw = _RawInterface(name=name)
    while tokens.peek() != "}":
        if tokens.peek() == "attribute":
            tokens.expect("attribute")
            attr_type = _parse_type_token(tokens)
            attr_name = tokens.next()
            tokens.expect(";")
            raw.attributes.append((attr_type, attr_name))
            continue
        return_type = _parse_type_token(tokens)
        op_name = tokens.next()
        tokens.expect("(")
        parameters: list[tuple[str, str]] = []
        while tokens.peek() != ")":
            tokens.expect("in")
            param_type = _parse_type_token(tokens)
            param_name = tokens.next()
            parameters.append((param_type, param_name))
            if tokens.peek() == ",":
                tokens.next()
        tokens.expect(")")
        tokens.expect(";")
        raw.operations.append((return_type, op_name, parameters))
    tokens.expect("}")
    tokens.expect(";")
    return raw


def parse_idl(text: str) -> InterfaceDescription:
    """Parse a CORBA-IDL document and return the interface it describes.

    Raises
    ------
    IdlError
        If the document does not conform to the supported IDL subset.
    """
    pragmas = _parse_pragmas(text)
    tokens = _Tokenizer(text)

    tokens.expect("module")
    module_name = tokens.next()
    tokens.expect("{")

    interfaces: list[_RawInterface] = []
    while tokens.peek() == "interface":
        interfaces.append(_parse_interface(tokens))
    tokens.expect("}")
    if tokens.peek() == ";":
        tokens.next()

    if not interfaces:
        raise IdlError("IDL module declares no interfaces")

    service_raw = interfaces[-1]
    struct_raws = interfaces[:-1]

    # Build struct shells first so struct fields may reference each other.
    shell_registry = TypeRegistry(StructType(raw.name) for raw in struct_raws)
    structs: list[StructType] = []
    for raw in struct_raws:
        structs.append(
            StructType(
                raw.name,
                tuple(
                    FieldDef(attr_name, rmi_type_from_idl(attr_type, shell_registry))
                    for attr_type, attr_name in raw.attributes
                ),
            )
        )
    registry = TypeRegistry(structs)
    structs = [
        StructType(
            struct.name,
            tuple(
                FieldDef(f.name, rmi_type_from_idl_or_self(f.field_type.type_name, registry))
                for f in struct.fields
            ),
        )
        for struct in structs
    ]
    registry = TypeRegistry(structs)

    operations = []
    for return_type, op_name, parameters in service_raw.operations:
        operations.append(
            OperationSignature(
                name=op_name,
                parameters=tuple(
                    Parameter(param_name, rmi_type_from_idl(param_type, registry))
                    for param_type, param_name in parameters
                ),
                return_type=rmi_type_from_idl(return_type, registry),
            )
        )

    namespace = pragmas.namespace or module_name
    return InterfaceDescription(
        service_name=service_raw.name,
        namespace=namespace,
        operations=tuple(sorted(operations, key=lambda op: op.name)),
        structs=tuple(sorted(structs, key=lambda s: s.name)),
        version=pragmas.version,
        endpoint_url=pragmas.endpoint,
    )


def rmi_type_from_idl_or_self(name: str, registry: TypeRegistry):
    """Resolve a type name against ``registry``, tolerating the RMI spelling.

    Struct fields already carry RMI type names (``int`` rather than ``long``)
    after the first resolution pass; this helper accepts both spellings so the
    second pass can re-resolve against the completed registry.
    """
    from repro.rmitypes import PRIMITIVES, parse_type

    if name in PRIMITIVES or name.endswith("[]"):
        return parse_type(name, registry)
    return rmi_type_from_idl(name, registry)
