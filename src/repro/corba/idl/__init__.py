"""CORBA-IDL generation and parsing.

The CORBA-IDL document "consists of a standard set of elements": a ``module``
root containing uniquely identified ``interface`` elements, with instance
variable and method declarations mapped to Java types (§2.2).  This package
renders an :class:`~repro.interface.InterfaceDescription` into that textual
form and parses it back — the analogue of the IDL compiler in Figure 2.
"""

from repro.corba.idl.generator import generate_idl
from repro.corba.idl.parser import parse_idl
from repro.corba.idl.mapping import idl_type_name, rmi_type_from_idl

__all__ = ["generate_idl", "parse_idl", "idl_type_name", "rmi_type_from_idl"]
