"""Rendering an :class:`InterfaceDescription` into a CORBA-IDL document.

The generated document has the structure the paper describes (§2.2): a
``module`` root element whose name is derived from the namespace, one
``interface`` per user-defined struct type (attributes only, mirroring the
IDL-to-Java mapping of instance variables) and one ``interface`` for the
service itself containing the operation declarations.  Publication metadata
(interface version, endpoint) is carried in ``#pragma`` lines so the document
round-trips through :func:`repro.corba.idl.parser.parse_idl`.
"""

from __future__ import annotations

import re

from repro.corba.idl.mapping import idl_type_name
from repro.interface import InterfaceDescription, OperationSignature
from repro.rmitypes import StructType


def module_name_for_namespace(namespace: str) -> str:
    """Derive a legal IDL module identifier from a namespace string."""
    cleaned = re.sub(r"[^A-Za-z0-9_]+", "_", namespace).strip("_")
    if not cleaned:
        cleaned = "Module"
    if cleaned[0].isdigit():
        cleaned = "M_" + cleaned
    return cleaned


def generate_idl(description: InterfaceDescription) -> str:
    """Return the CORBA-IDL document describing ``description``."""
    lines: list[str] = []
    lines.append(f"// CORBA-IDL for service {description.service_name}")
    lines.append(f"#pragma version {description.version}")
    lines.append(f"#pragma namespace {description.namespace}")
    if description.endpoint_url:
        lines.append(f"#pragma endpoint {description.endpoint_url}")
    lines.append("")
    lines.append(f"module {module_name_for_namespace(description.namespace)} {{")

    for struct in description.structs:
        lines.extend(_struct_interface(struct))
        lines.append("")

    lines.append(f"  interface {description.service_name} {{")
    for operation in description.operations:
        lines.append(f"    {_operation_declaration(operation)}")
    lines.append("  };")
    lines.append("};")
    lines.append("")
    return "\n".join(lines)


def _struct_interface(struct: StructType) -> list[str]:
    lines = [f"  interface {struct.name} {{"]
    for field_def in struct.fields:
        lines.append(
            f"    attribute {idl_type_name(field_def.field_type)} {field_def.name};"
        )
    lines.append("  };")
    return lines


def _operation_declaration(operation: OperationSignature) -> str:
    parameters = ", ".join(
        f"in {idl_type_name(parameter.param_type)} {parameter.name}"
        for parameter in operation.parameters
    )
    return f"{idl_type_name(operation.return_type)} {operation.name}({parameters});"
