"""CORBA-IDL ↔ shared RMI type mapping.

The paper's CORBA-IDL-to-Java mapping permits "Java Strings and primitive
types int, double, float, char, and boolean, or any Java type that is
declared by an interface element within the module element" (§2.2).  The
table below maps those onto IDL type names:

==============  ===============
RMI type        IDL type
==============  ===============
``int``         ``long``
``double``      ``double``
``float``       ``float``
``boolean``     ``boolean``
``string``      ``string``
``char``        ``char``
``void``        ``void``
``T[]``         ``sequence<T>``
struct ``S``    ``S`` (interface declared in the module)
==============  ===============
"""

from __future__ import annotations

from repro.errors import IdlError
from repro.rmitypes import (
    ArrayType,
    BOOLEAN,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    PrimitiveType,
    RmiType,
    STRING,
    StructType,
    TypeRegistry,
    VOID,
)

_IDL_BY_PRIMITIVE = {
    "int": "long",
    "double": "double",
    "float": "float",
    "boolean": "boolean",
    "string": "string",
    "char": "char",
    "void": "void",
}

_PRIMITIVE_BY_IDL = {
    "long": INT,
    "double": DOUBLE,
    "float": FLOAT,
    "boolean": BOOLEAN,
    "string": STRING,
    "char": CHAR,
    "void": VOID,
}


def idl_type_name(rmi_type: RmiType) -> str:
    """Return the IDL spelling of ``rmi_type``."""
    if isinstance(rmi_type, PrimitiveType):
        return _IDL_BY_PRIMITIVE[rmi_type.name]
    if isinstance(rmi_type, ArrayType):
        return f"sequence<{idl_type_name(rmi_type.element_type)}>"
    if isinstance(rmi_type, StructType):
        return rmi_type.name
    raise IdlError(f"cannot map {rmi_type!r} to an IDL type")


def rmi_type_from_idl(name: str, registry: TypeRegistry | None = None) -> RmiType:
    """Resolve an IDL type spelling back to the shared RMI model."""
    name = name.strip()
    if name.startswith("sequence<") and name.endswith(">"):
        return ArrayType(rmi_type_from_idl(name[len("sequence<"):-1], registry))
    if name in _PRIMITIVE_BY_IDL:
        return _PRIMITIVE_BY_IDL[name]
    if registry is not None and name in registry:
        return registry.get(name)
    raise IdlError(f"unknown IDL type {name!r}")
