"""CORBA stack: IDL, IOR, GIOP/IIOP, ORB, DII, DSI, and the static baseline.

This package plays the role OpenORB plays in the paper (§2.2):

* :mod:`repro.corba.idl` — CORBA-IDL generation and parsing with the
  IDL-to-Java style type mapping the paper describes;
* :mod:`repro.corba.ior` — Interoperable Object References;
* :mod:`repro.corba.cdr` — binary marshalling (Common Data Representation);
* :mod:`repro.corba.giop` — GIOP Request/Reply framing carried over the
  simulated IIOP transport;
* :mod:`repro.corba.orb` / :mod:`repro.corba.poa` /
  :mod:`repro.corba.servant` — the Object Request Broker, object adapter and
  servants;
* :mod:`repro.corba.dii` / :mod:`repro.corba.dsi` — the Dynamic Invocation
  and Dynamic Skeleton Interfaces used by CDE and SDE respectively;
* :mod:`repro.corba.server` / :mod:`repro.corba.client` — the *static*
  CORBA server and client used as the Table 1 baseline ("OpenORB/OpenORB").
"""

from repro.corba.ior import IOR
from repro.corba.orb import ClientOrb, DeferredResult, ServerOrb, RemoteObjectReference
from repro.corba.servant import Servant, StaticServant
from repro.corba.dsi import DynamicServant, ServerRequest
from repro.corba.dii import DiiRequest
from repro.corba.server import StaticCorbaServer, CorbaServiceDefinition
from repro.corba.client import StaticCorbaClient

__all__ = [
    "IOR",
    "ClientOrb",
    "DeferredResult",
    "ServerOrb",
    "RemoteObjectReference",
    "Servant",
    "StaticServant",
    "DynamicServant",
    "ServerRequest",
    "DiiRequest",
    "StaticCorbaServer",
    "CorbaServiceDefinition",
    "StaticCorbaClient",
]
