"""Object Request Brokers.

"In a client-server system that uses CORBA-RMI, the Client ORB and the
Server ORB form the communication endpoints.  They direct invocations and
results between remote objects located on client and server sides.  ORBs use
IIOP to communicate over a network." (§2.2)

The :class:`ServerOrb` listens on a simulated IIOP port, parses GIOP
Requests, locates the servant through the object adapter and sends back GIOP
Replies.  The :class:`ClientOrb` turns an IOR into a
:class:`RemoteObjectReference` whose :meth:`~RemoteObjectReference.invoke`
performs a blocking remote call.  CPU cost for marshalling and dispatch is
charged to the virtual clock through the optional
:class:`~repro.net.latency.CostModel`.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.corba.cdr import marshal_values, unmarshal_values
from repro.corba.giop import (
    MessageType,
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    parse_message,
)
from repro.corba.ior import IOR
from repro.corba.poa import PortableObjectAdapter
from repro.errors import (
    CorbaError,
    CorbaSystemException,
    CorbaUserException,
    GiopError,
)
from repro.net.latency import CostModel
from repro.net.simnet import Address, Host, Message
from repro.sim.latch import CompletionLatch

_EPHEMERAL_BASE = 53000


class DeferredResult:
    """A servant result that will be provided later.

    A servant (typically a DSI :class:`~repro.corba.dsi.DynamicServant` used
    by SDE) may return an instance of this class from ``invoke`` to stall the
    GIOP reply — for example while the interface publisher catches up with
    pending changes (§5.7).  Calling :meth:`complete` or :meth:`fail` releases
    the reply.
    """

    def __init__(self) -> None:
        self._done = False
        self._value: Any = None
        self._error: BaseException | None = None
        self._callbacks: list[Any] = []

    @property
    def completed(self) -> bool:
        """True once a value or error has been provided."""
        return self._done

    def complete(self, value: Any) -> None:
        """Provide the operation result."""
        self._resolve(value, None)

    def fail(self, error: BaseException) -> None:
        """Provide an exception to be propagated to the client."""
        self._resolve(None, error)

    def _resolve(self, value: Any, error: BaseException | None) -> None:
        if self._done:
            raise CorbaError("deferred CORBA result completed twice")
        self._done = True
        self._value = value
        self._error = error
        for callback in self._callbacks:
            callback(value, error)
        self._callbacks.clear()

    def _on_resolved(self, callback: Any) -> None:
        if self._done:
            callback(self._value, self._error)
        else:
            self._callbacks.append(callback)


class ServerOrb:
    """The server-side ORB: an IIOP endpoint dispatching to servants."""

    def __init__(
        self,
        host: Host,
        port: int,
        poa: PortableObjectAdapter | None = None,
        cost_model: CostModel | None = None,
        speed_factor: float = 1.0,
        dynamic_dispatch_overhead: float = 0.0,
    ) -> None:
        self.host = host
        self.port = port
        self.poa = poa if poa is not None else PortableObjectAdapter()
        self.cost_model = cost_model
        self.speed_factor = speed_factor
        self.dynamic_dispatch_overhead = dynamic_dispatch_overhead
        self._running = False
        self.requests_handled = 0
        self.system_exceptions_sent = 0
        self.user_exceptions_sent = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Bind the IIOP port and begin accepting requests."""
        if self._running:
            return
        self.host.bind(self.port, self._on_message)
        self._running = True

    def stop(self) -> None:
        """Unbind the IIOP port."""
        if not self._running:
            return
        self.host.unbind(self.port)
        self._running = False

    @property
    def running(self) -> bool:
        """True while the ORB is accepting requests."""
        return self._running

    def object_reference(self, object_key: str, type_id: str | None = None) -> IOR:
        """Build the IOR naming the object registered under ``object_key``."""
        if type_id is None:
            servant = self.poa.servant_for(object_key)
            type_id = servant.repository_id
        return IOR(type_id=type_id, host=self.host.name, port=self.port, object_key=object_key)

    # -- request handling -----------------------------------------------------

    def _on_message(self, message: Message, host: Host) -> None:
        try:
            giop = parse_message(message.payload)
        except GiopError:
            # Without a parsable request id there is nothing to correlate a
            # reply with; real ORBs close the connection, we drop the message.
            self.system_exceptions_sent += 1
            return
        if not isinstance(giop, RequestMessage):
            return

        def send(reply: ReplyMessage) -> None:
            delay = self._processing_delay(len(message.payload), len(reply.body_cdr))
            if delay > 0:
                self.host.network.scheduler.schedule(
                    delay,
                    self._send_reply,
                    message.source,
                    reply,
                    label=f"orb reply to {message.source}",
                )
            else:
                self._send_reply(message.source, reply)

        self._dispatch(giop, send)

    def _dispatch(self, request: RequestMessage, send) -> None:
        try:
            servant = self.poa.servant_for(request.object_key)
            arguments = unmarshal_values(request.arguments_cdr)
            result = servant.invoke(request.operation, arguments)
        except BaseException as exc:  # noqa: BLE001 - mapped to a GIOP reply
            send(self._exception_reply(request.request_id, exc))
            return

        if isinstance(result, DeferredResult):
            result._on_resolved(
                lambda value, error: send(
                    self._exception_reply(request.request_id, error)
                    if error is not None
                    else self._success_reply(request.request_id, value)
                )
            )
            return
        send(self._success_reply(request.request_id, result))

    def _success_reply(self, request_id: int, result: Any) -> ReplyMessage:
        self.requests_handled += 1
        return ReplyMessage(
            request_id=request_id,
            status=ReplyStatus.NO_EXCEPTION,
            body_cdr=marshal_values((result,)),
        )

    def _exception_reply(self, request_id: int, exc: BaseException) -> ReplyMessage:
        if isinstance(exc, CorbaUserException):
            self.user_exceptions_sent += 1
            return ReplyMessage(
                request_id=request_id,
                status=ReplyStatus.USER_EXCEPTION,
                body_cdr=b"",
                exception_type=exc.type_name,
                exception_detail=exc.message,
            )
        if isinstance(exc, CorbaSystemException):
            self.system_exceptions_sent += 1
            return ReplyMessage(
                request_id=request_id,
                status=ReplyStatus.SYSTEM_EXCEPTION,
                body_cdr=b"",
                exception_type=exc.name,
                exception_detail=exc.detail,
            )
        self.system_exceptions_sent += 1
        return ReplyMessage(
            request_id=request_id,
            status=ReplyStatus.SYSTEM_EXCEPTION,
            body_cdr=b"",
            exception_type="UNKNOWN",
            exception_detail=f"{type(exc).__name__}: {exc}",
        )

    def _send_reply(self, destination: Address, reply: ReplyMessage) -> None:
        self.host.send(destination, reply.to_bytes(), source_port=self.port)

    def _processing_delay(self, request_size: int, reply_size: int) -> float:
        if self.cost_model is None:
            return 0.0
        cost = self.cost_model.binary_processing(request_size)
        cost += self.cost_model.binary_processing(reply_size)
        cost += self.dynamic_dispatch_overhead
        return cost * self.speed_factor

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        return f"ServerOrb({self.host.name}:{self.port}, {state})"


class RemoteObjectReference:
    """A client-side reference to a remote CORBA object."""

    def __init__(self, orb: "ClientOrb", ior: IOR) -> None:
        self.orb = orb
        self.ior = ior

    def invoke(self, operation: str, *arguments: Any) -> Any:
        """Perform a blocking remote invocation of ``operation``."""
        return self.orb.invoke(self.ior, operation, arguments)

    def __repr__(self) -> str:
        return f"RemoteObjectReference({self.ior.type_id} at {self.ior.host}:{self.ior.port})"


class ClientOrb:
    """The client-side ORB."""

    def __init__(
        self,
        host: Host,
        cost_model: CostModel | None = None,
        speed_factor: float = 1.0,
    ) -> None:
        self.host = host
        self.cost_model = cost_model
        self.speed_factor = speed_factor
        self._request_ids = itertools.count(1)
        self._next_ephemeral = _EPHEMERAL_BASE
        self.calls_made = 0

    # -- public API -----------------------------------------------------------

    def string_to_object(self, stringified_ior: str) -> RemoteObjectReference:
        """Parse a stringified IOR and return an object reference
        (the CORBA ``string_to_object`` operation used at client
        initialisation, Figure 2 step 1)."""
        return RemoteObjectReference(self, IOR.from_string(stringified_ior))

    def object_for(self, ior: IOR) -> RemoteObjectReference:
        """Wrap an already-parsed IOR."""
        return RemoteObjectReference(self, ior)

    def invoke(self, ior: IOR, operation: str, arguments: tuple[Any, ...]) -> Any:
        """Marshal, transmit, await and unmarshal one remote invocation."""
        request_id = next(self._request_ids)
        arguments_cdr = marshal_values(tuple(arguments))
        request = RequestMessage(
            request_id=request_id,
            object_key=ior.object_key,
            operation=operation,
            arguments_cdr=arguments_cdr,
        )
        payload = request.to_bytes()
        self._charge(len(payload))

        scheduler = self.host.network.scheduler
        latch: CompletionLatch[ReplyMessage] = CompletionLatch(
            scheduler, description=f"CORBA {operation} on {ior.object_key}"
        )
        port = self._allocate_port()

        def on_reply(message: Message, _host: Host) -> None:
            self.host.unbind(port)
            try:
                giop = parse_message(message.payload)
            except GiopError as exc:
                latch.fail(CorbaError(f"malformed GIOP reply: {exc}"))
                return
            if not isinstance(giop, ReplyMessage) or giop.request_id != request_id:
                latch.fail(CorbaError("GIOP reply does not match the outstanding request"))
                return
            latch.complete(giop)

        self.host.bind(port, on_reply)
        self.host.send(Address(ior.host, ior.port), payload, source_port=port)
        reply = latch.wait()
        self._charge(len(reply.body_cdr) + 24)
        self.calls_made += 1
        return self._interpret_reply(reply)

    # -- internals ------------------------------------------------------------

    def _interpret_reply(self, reply: ReplyMessage) -> Any:
        if reply.status == ReplyStatus.NO_EXCEPTION:
            values = unmarshal_values(reply.body_cdr)
            return values[0] if values else None
        if reply.status == ReplyStatus.USER_EXCEPTION:
            raise CorbaUserException(reply.exception_type, reply.exception_detail)
        raise CorbaSystemException(reply.exception_type or "UNKNOWN", reply.exception_detail)

    def _charge(self, size_bytes: int) -> None:
        if self.cost_model is None:
            return
        cost = self.cost_model.binary_processing(size_bytes) * self.speed_factor
        if cost <= 0:
            return
        scheduler = self.host.network.scheduler
        done: list[bool] = []
        scheduler.schedule(cost, lambda: done.append(True), label="client-orb processing")
        scheduler.run_until(lambda: bool(done), description="client ORB processing")

    def _allocate_port(self) -> int:
        while self.host.is_bound(self._next_ephemeral):
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def __repr__(self) -> str:
        return f"ClientOrb(host={self.host.name!r}, calls={self.calls_made})"
