"""Object Request Brokers.

"In a client-server system that uses CORBA-RMI, the Client ORB and the
Server ORB form the communication endpoints.  They direct invocations and
results between remote objects located on client and server sides.  ORBs use
IIOP to communicate over a network." (§2.2)

The :class:`ServerOrb` is a GIOP codec over the shared transport layer: a
:class:`~repro.net.transport.Endpoint` owns the IIOP port, the per-connection
FIFO reply ordering and the drop-after-stop accounting, while the ORB parses
GIOP Requests, locates the servant through the object adapter and encodes
GIOP Replies.  The :class:`ClientOrb` turns an IOR into a
:class:`RemoteObjectReference` whose :meth:`~RemoteObjectReference.invoke`
performs a blocking remote call over a persistent
:class:`~repro.net.transport.ClientChannel` connection;
:meth:`ClientOrb.invoke_async` is the non-blocking variant used by the
multi-client workload driver.  CPU cost for marshalling and dispatch is
charged to the virtual clock through the optional
:class:`~repro.net.latency.CostModel`.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.corba.cdr import marshal_values, unmarshal_values
from repro.corba.giop import (
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    parse_message,
)
from repro.corba.ior import IOR
from repro.corba.poa import PortableObjectAdapter
from repro.errors import (
    CorbaError,
    CorbaSystemException,
    CorbaUserException,
    GiopError,
)
from repro.net.latency import CostModel
from repro.net.simnet import Address, Host, Message
from repro.net.transport import (
    ClientChannel,
    Connection,
    Deferred,
    Endpoint,
    ReplyOutcome,
)
from repro.obs import hooks as _obs_hooks
from repro.sim.servercore import ServerCore

_EPHEMERAL_BASE = 53000


class DeferredResult(Deferred):
    """A servant result that will be provided later.

    A servant (typically a DSI :class:`~repro.corba.dsi.DynamicServant` used
    by SDE) may return an instance of this class from ``invoke`` to stall the
    GIOP reply — for example while the interface publisher catches up with
    pending changes (§5.7).  It is a named alias of the transport layer's
    generic :class:`~repro.net.transport.Deferred`; :class:`ServerOrb`
    accepts either.
    """

    def __init__(self) -> None:
        super().__init__("deferred CORBA result")


class ServerOrb:
    """The server-side ORB: an IIOP endpoint dispatching to servants."""

    def __init__(
        self,
        host: Host,
        port: int,
        poa: PortableObjectAdapter | None = None,
        cost_model: CostModel | None = None,
        speed_factor: float = 1.0,
        dynamic_dispatch_overhead: float = 0.0,
        charge_connection_setup: bool = False,
        cores: "ServerCore | None" = None,
    ) -> None:
        self.host = host
        self.port = port
        self.poa = poa if poa is not None else PortableObjectAdapter()
        self.cost_model = cost_model
        self.speed_factor = speed_factor
        self.dynamic_dispatch_overhead = dynamic_dispatch_overhead
        self.endpoint = Endpoint(
            host,
            port,
            self._on_request,
            name=f"orb:{host.name}:{port}",
            charge_connection_setup=charge_connection_setup,
            cores=cores,
        )
        self.requests_handled = 0
        self.system_exceptions_sent = 0
        self.user_exceptions_sent = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Bind the IIOP port and begin accepting requests."""
        self.endpoint.start()

    def stop(self) -> None:
        """Unbind the IIOP port; replies completed later are dropped."""
        self.endpoint.stop()

    @property
    def running(self) -> bool:
        """True while the ORB is accepting requests."""
        return self.endpoint.running

    @property
    def replies_dropped_after_stop(self) -> int:
        """GIOP replies that resolved after :meth:`stop` and were dropped."""
        return self.endpoint.stats.replies_dropped

    def object_reference(self, object_key: str, type_id: str | None = None) -> IOR:
        """Build the IOR naming the object registered under ``object_key``."""
        if type_id is None:
            servant = self.poa.servant_for(object_key)
            type_id = servant.repository_id
        return IOR(type_id=type_id, host=self.host.name, port=self.port, object_key=object_key)

    # -- request handling -----------------------------------------------------

    def _on_request(self, message: Message, connection: Connection) -> ReplyOutcome:
        try:
            giop = parse_message(message.payload)
        except GiopError:
            # Without a parsable request id there is nothing to correlate a
            # reply with; real ORBs close the connection, we drop the message.
            self.system_exceptions_sent += 1
            return None
        if not isinstance(giop, RequestMessage):
            return None

        request_size = len(message.payload)
        if giop.service_context and _obs_hooks.ACTIVE is not None:
            # Stage the incoming trace context for the call handler, which
            # consumes (and clears) it synchronously inside ``invoke``.
            _obs_hooks.SERVER_WIRE_CONTEXT = giop.service_context
        try:
            servant = self.poa.servant_for(giop.object_key)
            arguments = unmarshal_values(giop.arguments_cdr)
            result = servant.invoke(giop.operation, arguments)
        except BaseException as exc:  # noqa: BLE001 - mapped to a GIOP reply
            return self._encoded(giop.request_id, None, exc, request_size, 0.0)

        if isinstance(result, Deferred):
            out: Deferred = Deferred(f"giop reply {giop.request_id}")
            result.subscribe(
                lambda value, error, delay: out.complete(
                    *self._encoded(giop.request_id, value, error, request_size, delay)
                )
            )
            return out
        return self._encoded(giop.request_id, result, None, request_size, 0.0)

    def _encoded(
        self,
        request_id: int,
        value: Any,
        error: BaseException | None,
        request_size: int,
        extra_delay: float,
    ) -> tuple[bytes, float]:
        try:
            reply = (
                self._exception_reply(request_id, error)
                if error is not None
                else self._success_reply(request_id, value)
            )
        except BaseException as marshal_error:  # noqa: BLE001 - e.g. unmarshallable result
            # A result the CDR layer cannot encode must still produce a
            # reply, or the client (and this connection's FIFO) hangs.
            reply = self._exception_reply(request_id, marshal_error)
        delay = extra_delay + self._processing_delay(request_size, len(reply.body_cdr))
        return reply.to_bytes(), delay

    def _success_reply(self, request_id: int, result: Any) -> ReplyMessage:
        self.requests_handled += 1
        return ReplyMessage(
            request_id=request_id,
            status=ReplyStatus.NO_EXCEPTION,
            body_cdr=marshal_values((result,)),
        )

    def _exception_reply(self, request_id: int, exc: BaseException) -> ReplyMessage:
        if isinstance(exc, CorbaUserException):
            self.user_exceptions_sent += 1
            return ReplyMessage(
                request_id=request_id,
                status=ReplyStatus.USER_EXCEPTION,
                body_cdr=b"",
                exception_type=exc.type_name,
                exception_detail=exc.message,
            )
        if isinstance(exc, CorbaSystemException):
            self.system_exceptions_sent += 1
            return ReplyMessage(
                request_id=request_id,
                status=ReplyStatus.SYSTEM_EXCEPTION,
                body_cdr=b"",
                exception_type=exc.name,
                exception_detail=exc.detail,
            )
        self.system_exceptions_sent += 1
        return ReplyMessage(
            request_id=request_id,
            status=ReplyStatus.SYSTEM_EXCEPTION,
            body_cdr=b"",
            exception_type="UNKNOWN",
            exception_detail=f"{type(exc).__name__}: {exc}",
        )

    def _processing_delay(self, request_size: int, reply_size: int) -> float:
        if self.cost_model is None:
            return 0.0
        cost = self.cost_model.binary_processing(request_size)
        cost += self.cost_model.binary_processing(reply_size)
        cost += self.dynamic_dispatch_overhead
        return cost * self.speed_factor

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"ServerOrb({self.host.name}:{self.port}, {state})"


class RemoteObjectReference:
    """A client-side reference to a remote CORBA object."""

    def __init__(self, orb: "ClientOrb", ior: IOR) -> None:
        self.orb = orb
        self.ior = ior

    def invoke(self, operation: str, *arguments: Any) -> Any:
        """Perform a blocking remote invocation of ``operation``."""
        return self.orb.invoke(self.ior, operation, arguments)

    def invoke_async(self, operation: str, *arguments: Any) -> Deferred:
        """Issue a non-blocking remote invocation of ``operation``."""
        return self.orb.invoke_async(self.ior, operation, arguments)

    def __repr__(self) -> str:
        return f"RemoteObjectReference({self.ior.type_id} at {self.ior.host}:{self.ior.port})"


class ClientOrb:
    """The client-side ORB."""

    def __init__(
        self,
        host: Host,
        cost_model: CostModel | None = None,
        speed_factor: float = 1.0,
    ) -> None:
        self.host = host
        self.cost_model = cost_model
        self.speed_factor = speed_factor
        self.channel = ClientChannel(host, base_port=_EPHEMERAL_BASE, name="client-orb")
        self._request_ids = itertools.count(1)
        self.calls_made = 0

    # -- public API -----------------------------------------------------------

    def string_to_object(self, stringified_ior: str) -> RemoteObjectReference:
        """Parse a stringified IOR and return an object reference
        (the CORBA ``string_to_object`` operation used at client
        initialisation, Figure 2 step 1)."""
        return RemoteObjectReference(self, IOR.from_string(stringified_ior))

    def object_for(self, ior: IOR) -> RemoteObjectReference:
        """Wrap an already-parsed IOR."""
        return RemoteObjectReference(self, ior)

    def invoke(self, ior: IOR, operation: str, arguments: tuple[Any, ...]) -> Any:
        """Marshal, transmit, await and unmarshal one remote invocation.

        CORBA exceptions are replies, not transport failures, so they leave
        the connection intact; anything else (dead server, malformed reply)
        resets it so a stale expectation cannot mis-correlate the next call.
        """
        try:
            return self.invoke_async(ior, operation, arguments).wait(self.channel.scheduler)
        except (CorbaUserException, CorbaSystemException):
            raise
        except BaseException:
            self.channel.reset(Address(ior.host, ior.port))
            raise

    def invoke_async(self, ior: IOR, operation: str, arguments: tuple[Any, ...]) -> Deferred:
        """Issue one remote invocation without blocking.

        The returned deferred resolves with the operation result, or fails
        with the mapped CORBA exception.  Marshalling cost is charged as a
        virtual-clock delay before the request leaves; unmarshalling cost
        delays the resolution, so the round-trip time a caller observes is
        identical to the blocking path.
        """
        request_id = next(self._request_ids)
        arguments_cdr = marshal_values(tuple(arguments))
        # In-band trace propagation: an active client-side trace context
        # rides the request's GIOP service-context slot (untraced calls
        # frame nothing, keeping their bytes identical).
        context = _obs_hooks.CONTEXT
        request = RequestMessage(
            request_id=request_id,
            object_key=ior.object_key,
            operation=operation,
            arguments_cdr=arguments_cdr,
            service_context=context.encode_bytes() if context is not None else b"",
        )
        payload = request.to_bytes()
        scheduler = self.channel.scheduler
        result: Deferred = Deferred(f"CORBA {operation} on {ior.object_key}")

        def parse(message: Message) -> ReplyMessage:
            try:
                giop = parse_message(message.payload)
            except GiopError as exc:
                raise CorbaError(f"malformed GIOP reply: {exc}") from None
            if not isinstance(giop, ReplyMessage) or giop.request_id != request_id:
                raise CorbaError("GIOP reply does not match the outstanding request")
            return giop

        def on_reply(reply: ReplyMessage | None, error: BaseException | None, _delay: float) -> None:
            if error is not None:
                result.fail(error)
                return
            self.calls_made += 1
            cost = self._cost(len(reply.body_cdr) + 24)
            if cost > 0:
                scheduler.schedule(cost, finish, reply, label="client-orb processing")
            else:
                finish(reply)

        def finish(reply: ReplyMessage) -> None:
            try:
                result.complete(self._interpret_reply(reply))
            except BaseException as exc:  # noqa: BLE001 - CORBA exceptions propagate
                result.fail(exc)

        def send() -> None:
            wire = self.channel.request_async(
                Address(ior.host, ior.port),
                payload,
                parse,
                description=f"CORBA {operation} on {ior.object_key}",
            )
            wire.subscribe(on_reply)

        marshal_cost = self._cost(len(payload))
        if marshal_cost > 0:
            scheduler.schedule(marshal_cost, send, label="client-orb processing")
        else:
            send()
        return result

    def close(self) -> None:
        """Close every connection this ORB holds."""
        self.channel.close()

    # -- internals ------------------------------------------------------------

    def _interpret_reply(self, reply: ReplyMessage) -> Any:
        if reply.status == ReplyStatus.NO_EXCEPTION:
            values = unmarshal_values(reply.body_cdr)
            return values[0] if values else None
        if reply.status == ReplyStatus.USER_EXCEPTION:
            raise CorbaUserException(reply.exception_type, reply.exception_detail)
        raise CorbaSystemException(reply.exception_type or "UNKNOWN", reply.exception_detail)

    def _cost(self, size_bytes: int) -> float:
        if self.cost_model is None:
            return 0.0
        return self.cost_model.binary_processing(size_bytes) * self.speed_factor

    def __repr__(self) -> str:
        return f"ClientOrb(host={self.host.name!r}, calls={self.calls_made})"
