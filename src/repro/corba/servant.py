"""Servants: the server-side objects that implement CORBA operations.

A :class:`StaticServant` is the ordinary case — a fixed set of operations
bound to Python callables, the moral equivalent of a compiled skeleton.  The
dynamic counterpart used by SDE lives in :mod:`repro.corba.dsi`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import CorbaSystemException
from repro.interface import OperationSignature


class Servant:
    """Base class for all servants."""

    #: The repository id advertised in the IOR.
    repository_id: str = "IDL:repro/Object:1.0"

    def invoke(self, operation: str, arguments: list[Any]) -> Any:
        """Invoke ``operation`` with ``arguments`` and return the result.

        Implementations raise :class:`CorbaSystemException` (``BAD_OPERATION``)
        for unknown operations and may raise
        :class:`~repro.errors.CorbaUserException` for application errors.
        """
        raise NotImplementedError

    def operation_names(self) -> tuple[str, ...]:
        """The operations this servant can currently handle (may be empty
        for fully dynamic servants)."""
        return ()


@dataclass
class StaticServant(Servant):
    """A servant with a fixed operation table — the compiled-skeleton case."""

    type_name: str
    operations: dict[str, tuple[OperationSignature, Callable[..., Any]]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        self.repository_id = f"IDL:repro/{self.type_name}:1.0"

    def register(self, signature: OperationSignature, implementation: Callable[..., Any]) -> None:
        """Register an operation implementation."""
        if signature.name in self.operations:
            raise CorbaSystemException(
                "BAD_PARAM", f"operation {signature.name!r} already registered"
            )
        self.operations[signature.name] = (signature, implementation)

    def operation_names(self) -> tuple[str, ...]:
        return tuple(self.operations)

    def signature(self, operation: str) -> OperationSignature | None:
        """The signature registered for ``operation``, if any."""
        entry = self.operations.get(operation)
        return entry[0] if entry else None

    def invoke(self, operation: str, arguments: list[Any]) -> Any:
        entry = self.operations.get(operation)
        if entry is None:
            raise CorbaSystemException(
                "BAD_OPERATION", f"no such operation {operation!r} on {self.type_name}"
            )
        signature, implementation = entry
        if len(arguments) != signature.arity:
            raise CorbaSystemException(
                "BAD_PARAM",
                f"operation {operation!r} expects {signature.arity} argument(s), "
                f"got {len(arguments)}",
            )
        return implementation(*arguments)
