"""Static CORBA client — the "OpenORB client" baseline of Table 1 / Figure 2.

The client follows the interaction of Figure 2: it obtains the CORBA-IDL
document and the IOR (directly or over HTTP), initialises its client ORB from
the IOR, and invokes the methods declared in the IDL through typed stubs.
"""

from __future__ import annotations

from typing import Any

from repro.corba.idl import parse_idl
from repro.corba.ior import IOR
from repro.corba.orb import ClientOrb, RemoteObjectReference
from repro.errors import CorbaError
from repro.interface import InterfaceDescription, OperationSignature
from repro.net.http import HttpClient
from repro.net.latency import CostModel
from repro.net.simnet import Host


class CorbaStubMethod:
    """A typed client stub for one IDL-declared operation."""

    def __init__(self, signature: OperationSignature, target: RemoteObjectReference) -> None:
        self.signature = signature
        self._target = target
        self.call_count = 0
        self.__name__ = signature.name
        self.__doc__ = f"Remote CORBA stub for {signature.describe()}"

    def __call__(self, *arguments: Any) -> Any:
        if len(arguments) != self.signature.arity:
            raise CorbaError(
                f"operation {self.signature.name!r} expects {self.signature.arity} "
                f"argument(s), got {len(arguments)}"
            )
        for value, parameter in zip(arguments, self.signature.parameters):
            parameter.param_type.validate(value)
        self.call_count += 1
        return self._target.invoke(self.signature.name, *arguments)

    def __repr__(self) -> str:
        return f"CorbaStubMethod({self.signature.describe()})"


class CorbaStub:
    """The compiled client-side view of an IDL interface."""

    def __init__(self, description: InterfaceDescription, target: RemoteObjectReference) -> None:
        self.description = description
        self.target = target
        self._methods = {
            operation.name: CorbaStubMethod(operation, target)
            for operation in description.operations
        }

    @property
    def operation_names(self) -> tuple[str, ...]:
        """Names of all operations available on this stub."""
        return tuple(self._methods)

    def method(self, name: str) -> CorbaStubMethod:
        """Return the stub method for ``name``."""
        try:
            return self._methods[name]
        except KeyError:
            raise CorbaError(
                f"operation {name!r} is not declared in the IDL "
                f"(available: {', '.join(self._methods) or 'none'})"
            ) from None

    def invoke(self, name: str, *arguments: Any) -> Any:
        """Invoke operation ``name`` with ``arguments``."""
        return self.method(name)(*arguments)

    def __getattr__(self, name: str) -> CorbaStubMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            return self.method(name)
        except CorbaError as exc:
            raise AttributeError(str(exc)) from None

    def __repr__(self) -> str:
        return f"CorbaStub({self.description.service_name}, operations={list(self._methods)})"


class StaticCorbaClient:
    """A static CORBA-RMI client attached to a simulated host."""

    def __init__(
        self,
        host: Host,
        cost_model: CostModel | None = None,
        speed_factor: float = 1.0,
    ) -> None:
        self.host = host
        self.orb = ClientOrb(host, cost_model=cost_model, speed_factor=speed_factor)
        self.http_client = HttpClient(host, name="corba-client")
        self.description: InterfaceDescription | None = None
        self.stub: CorbaStub | None = None

    # -- connection (Figure 2, step 1) ----------------------------------------

    def connect(self, idl_document: str, ior: IOR | str) -> CorbaStub:
        """Parse the IDL, initialise the client ORB from the IOR and build stubs."""
        self.description = parse_idl(idl_document)
        reference = (
            self.orb.string_to_object(ior) if isinstance(ior, str) else self.orb.object_for(ior)
        )
        self.stub = CorbaStub(self.description, reference)
        return self.stub

    def connect_via_http(self, idl_url: str, ior_url: str) -> CorbaStub:
        """Retrieve the IDL document and IOR over HTTP, then connect."""
        idl_response = self.http_client.get(idl_url)
        if not idl_response.ok:
            raise CorbaError(f"could not retrieve IDL from {idl_url}: HTTP {idl_response.status}")
        ior_response = self.http_client.get(ior_url)
        if not ior_response.ok:
            raise CorbaError(f"could not retrieve IOR from {ior_url}: HTTP {ior_response.status}")
        return self.connect(idl_response.body, ior_response.body.strip())

    # -- invocation (Figure 2, steps 2 and 3) ------------------------------------

    def invoke(self, operation: str, *arguments: Any) -> Any:
        """Invoke ``operation`` through the compiled stub."""
        if self.stub is None:
            raise CorbaError("client is not connected; call connect() first")
        return self.stub.invoke(operation, *arguments)

    def close(self) -> None:
        """Release the client ORB's and HTTP client's connections."""
        self.orb.close()
        self.http_client.close()

    def __repr__(self) -> str:
        target = self.description.service_name if self.description else "<disconnected>"
        return f"StaticCorbaClient(host={self.host.name!r}, target={target})"
