"""E1 — Table 1: round-trip times for client-server communication.

The paper measures the average RTT of one hundred RMI calls in four
configurations (§7):

==========================  ==========
Server/Client               RTT (s)
==========================  ==========
SDE SOAP / Axis             0.58
Axis-Tomcat / Axis          0.53
SDE CORBA / OpenORB         0.51
OpenORB / OpenORB           0.42
==========================  ==========

This driver rebuilds the same four configurations on the simulated testbed:
a 3.2 GHz-class server host, a slower client host (the 1 GHz PowerBook is
modelled by a client speed factor), a T1-LAN latency profile and the
calibrated 2004-era CPU cost model.  The absolute numbers depend on the cost
calibration; the claims the benchmark asserts are the paper's qualitative
ones — both SOAP configurations are slower than their CORBA counterparts,
and each SDE server stays within ~25% of its static counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sde import SDEConfig
from repro.corba import CorbaServiceDefinition, StaticCorbaClient, StaticCorbaServer
from repro.interface import OperationSignature, Parameter
from repro.net import Network, t1_lan_profile
from repro.net.latency import CostModel, era_2004_cost_model
from repro.rmitypes import STRING
from repro.sim import Scheduler
from repro.soap import SoapClient, SoapServiceDefinition, StaticSoapServer
from repro.testbed import CLIENT_SPEED_FACTOR, LiveDevelopmentTestbed, OperationSpec

#: The RTTs reported in Table 1 of the paper, in seconds.
PAPER_TABLE1_RTT: dict[str, float] = {
    "SDE SOAP/Axis": 0.58,
    "Axis-Tomcat/Axis": 0.53,
    "SDE CORBA/OpenORB": 0.51,
    "OpenORB/OpenORB": 0.42,
}

#: The echo payload used for every measured call.
ECHO_PAYLOAD = "hello from the client development environment"


@dataclass(frozen=True)
class RttResult:
    """Measured RTT for one Table 1 configuration."""

    configuration: str
    technology: str
    dynamic_server: bool
    calls: int
    mean_rtt: float
    paper_rtt: float

    @property
    def overhead_vs_paper(self) -> float:
        """Ratio of measured to paper-reported RTT (for the record only)."""
        return self.mean_rtt / self.paper_rtt if self.paper_rtt else float("nan")


def _echo_signature() -> OperationSignature:
    return OperationSignature("echo", (Parameter("message", STRING),), STRING)


def _echo_body(_instance, message: str) -> str:
    return message


def _measure(scheduler: Scheduler, call_once, calls: int) -> float:
    total = 0.0
    for _ in range(calls):
        start = scheduler.now
        result = call_once()
        if result != ECHO_PAYLOAD:
            raise AssertionError(f"echo returned {result!r}")
        total += scheduler.now - start
    return total / calls


# ---------------------------------------------------------------------------
# The four configurations
# ---------------------------------------------------------------------------


def run_static_soap(calls: int = 100, cost_model: CostModel | None = None) -> RttResult:
    """Axis-Tomcat server / Axis client (both static)."""
    cost_model = cost_model or era_2004_cost_model()
    scheduler = Scheduler()
    network = Network(scheduler, t1_lan_profile())
    server_host = network.add_host("server")
    client_host = network.add_host("client")

    definition = SoapServiceDefinition("EchoService", "urn:bench:echo")
    definition.add_operation(_echo_signature(), lambda message: message)
    server = StaticSoapServer(server_host, 8080, definition, cost_model=cost_model)
    server.start()

    client = SoapClient(client_host, cost_model=cost_model, speed_factor=CLIENT_SPEED_FACTOR)
    stub = client.connect(server.wsdl_url)
    mean = _measure(scheduler, lambda: stub.echo(ECHO_PAYLOAD), calls)
    return RttResult(
        configuration="Axis-Tomcat/Axis",
        technology="soap",
        dynamic_server=False,
        calls=calls,
        mean_rtt=mean,
        paper_rtt=PAPER_TABLE1_RTT["Axis-Tomcat/Axis"],
    )


def run_sde_soap(calls: int = 100, cost_model: CostModel | None = None) -> RttResult:
    """SDE SOAP server (live, running within JPie) / static Axis client."""
    cost_model = cost_model or era_2004_cost_model()
    testbed = LiveDevelopmentTestbed(
        cost_model=cost_model,
        sde_config=SDEConfig(cost_model=cost_model, publication_timeout=2.0),
    )
    testbed.create_soap_server(
        "EchoService",
        [OperationSpec("echo", (("message", STRING),), STRING, body=_echo_body)],
    )
    testbed.publish_now("EchoService")

    publisher = testbed.sde.managed_server("EchoService").publisher
    client = SoapClient(
        testbed.client_host, cost_model=cost_model, speed_factor=CLIENT_SPEED_FACTOR
    )
    stub = client.connect(publisher.document_url)
    mean = _measure(testbed.scheduler, lambda: stub.echo(ECHO_PAYLOAD), calls)
    return RttResult(
        configuration="SDE SOAP/Axis",
        technology="soap",
        dynamic_server=True,
        calls=calls,
        mean_rtt=mean,
        paper_rtt=PAPER_TABLE1_RTT["SDE SOAP/Axis"],
    )


def run_static_corba(calls: int = 100, cost_model: CostModel | None = None) -> RttResult:
    """OpenORB server / OpenORB client (both static)."""
    cost_model = cost_model or era_2004_cost_model()
    scheduler = Scheduler()
    network = Network(scheduler, t1_lan_profile())
    server_host = network.add_host("server")
    client_host = network.add_host("client")

    definition = CorbaServiceDefinition("EchoService", "urn:bench:echo")
    definition.add_operation(_echo_signature(), lambda message: message)
    server = StaticCorbaServer(server_host, 9000, definition, cost_model=cost_model)
    server.start()

    client = StaticCorbaClient(
        client_host, cost_model=cost_model, speed_factor=CLIENT_SPEED_FACTOR
    )
    stub = client.connect(server.idl_document, server.ior)
    mean = _measure(scheduler, lambda: stub.echo(ECHO_PAYLOAD), calls)
    return RttResult(
        configuration="OpenORB/OpenORB",
        technology="corba",
        dynamic_server=False,
        calls=calls,
        mean_rtt=mean,
        paper_rtt=PAPER_TABLE1_RTT["OpenORB/OpenORB"],
    )


def run_sde_corba(calls: int = 100, cost_model: CostModel | None = None) -> RttResult:
    """SDE CORBA server (live, running within JPie) / static OpenORB client."""
    cost_model = cost_model or era_2004_cost_model()
    testbed = LiveDevelopmentTestbed(
        cost_model=cost_model,
        sde_config=SDEConfig(cost_model=cost_model, publication_timeout=2.0),
    )
    testbed.create_corba_server(
        "EchoService",
        [OperationSpec("echo", (("message", STRING),), STRING, body=_echo_body)],
    )
    testbed.publish_now("EchoService")

    server = testbed.sde.managed_server("EchoService")
    publisher = server.publisher
    handler = server.call_handler
    client = StaticCorbaClient(
        testbed.client_host, cost_model=cost_model, speed_factor=CLIENT_SPEED_FACTOR
    )
    idl_document = testbed.sde.interface_server.document(publisher.document_path)
    stub = client.connect(idl_document, handler.ior)  # type: ignore[attr-defined]
    mean = _measure(testbed.scheduler, lambda: stub.echo(ECHO_PAYLOAD), calls)
    return RttResult(
        configuration="SDE CORBA/OpenORB",
        technology="corba",
        dynamic_server=True,
        calls=calls,
        mean_rtt=mean,
        paper_rtt=PAPER_TABLE1_RTT["SDE CORBA/OpenORB"],
    )


def run_table1(calls: int = 100, cost_model: CostModel | None = None) -> list[RttResult]:
    """Run all four Table 1 configurations and return their results in the
    same order as the paper's table."""
    return [
        run_sde_soap(calls, cost_model),
        run_static_soap(calls, cost_model),
        run_sde_corba(calls, cost_model),
        run_static_corba(calls, cost_model),
    ]


def format_table1(results: list[RttResult]) -> str:
    """Render the results as a table matching the paper's layout."""
    lines = [
        f"{'Server/Client':26s} {'RTT (s)':>9s} {'paper':>8s}",
        "-" * 45,
    ]
    for result in results:
        lines.append(
            f"{result.configuration:26s} {result.mean_rtt:9.3f} {result.paper_rtt:8.2f}"
        )
    return "\n".join(lines)
