"""Experiment drivers reproducing the paper's evaluation.

Each module regenerates one table, figure or ablation and is wrapped by a
benchmark in ``benchmarks/`` (the DESIGN.md experiment index maps them):

* :mod:`repro.experiments.table1` — E1, the Table 1 round-trip-time
  comparison between SDE servers and their static counterparts;
* :mod:`repro.core.protocol.interleaving` — E2/E3, the Figure 7 and Figure 8
  interleaving analyses (re-exported here for convenience);
* :mod:`repro.experiments.publication_strategies` — E4, the §5.6 ablation of
  stable-timeout vs change-driven vs polling publication;
* :mod:`repro.experiments.stale_flood` — E5, the §5.7 rogue-client ablation;
* :mod:`repro.experiments.encoding_costs` — E6, SOAP vs GIOP message sizes;
* :mod:`repro.experiments.interface_generation` — E7, interface-generation
  cost versus interface size;
* :mod:`repro.experiments.multi_client` — E8, multi-client scale-out over
  the shared transport layer (RTT, throughput and §5.7 stall-queue depth as
  the client fleet grows 1 → 512 for both middlewares, optionally through a bounded server-CPU model).
"""

from repro.core.protocol.interleaving import run_figure7_matrix, run_figure8_matrix
from repro.experiments.table1 import RttResult, run_table1, PAPER_TABLE1_RTT
from repro.experiments.publication_strategies import (
    StrategyResult,
    run_publication_strategy_comparison,
)
from repro.experiments.stale_flood import StaleFloodResult, run_stale_flood
from repro.experiments.encoding_costs import EncodingResult, run_encoding_comparison
from repro.experiments.interface_generation import (
    GenerationResult,
    run_interface_generation_sweep,
)
from repro.experiments.multi_client import (
    MultiClientResult,
    run_multi_client,
    run_scaling,
)

__all__ = [
    "run_figure7_matrix",
    "run_figure8_matrix",
    "RttResult",
    "run_table1",
    "PAPER_TABLE1_RTT",
    "StrategyResult",
    "run_publication_strategy_comparison",
    "StaleFloodResult",
    "run_stale_flood",
    "EncodingResult",
    "run_encoding_comparison",
    "GenerationResult",
    "run_interface_generation_sweep",
    "MultiClientResult",
    "run_multi_client",
    "run_scaling",
]
