"""E6 — substrate characterisation: SOAP (XML/HTTP) vs CORBA (GIOP/IIOP).

Section 2 of the paper contrasts the two technologies: SOAP exchanges
verbose, textual XML over HTTP, whereas IIOP "supports a wide range of
primitives, data structures, and object references" in a binary encoding.
This experiment quantifies the difference that drives the Table 1 gap in the
reproduction: wire message sizes for equivalent calls across a payload sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.corba.cdr import marshal_values
from repro.corba.giop import ReplyMessage, ReplyStatus, RequestMessage
from repro.rmitypes import FieldDef, INT, STRING, StructType, TypeRegistry, infer_type
from repro.soap.envelope import SoapRequest, SoapResponse

#: The struct type used by the struct-bearing workloads.
ADDRESS_STRUCT = StructType(
    "Address", (FieldDef("street", STRING), FieldDef("number", INT))
)


@dataclass(frozen=True)
class EncodingResult:
    """Wire sizes for one workload point."""

    label: str
    soap_request_bytes: int
    soap_response_bytes: int
    giop_request_bytes: int
    giop_reply_bytes: int

    @property
    def soap_total(self) -> int:
        """Total bytes on the wire for a SOAP round trip (bodies only)."""
        return self.soap_request_bytes + self.soap_response_bytes

    @property
    def giop_total(self) -> int:
        """Total bytes on the wire for a GIOP round trip."""
        return self.giop_request_bytes + self.giop_reply_bytes

    @property
    def size_ratio(self) -> float:
        """SOAP bytes / GIOP bytes for the same logical call."""
        return self.soap_total / self.giop_total if self.giop_total else float("nan")


def measure_call(
    label: str,
    operation: str,
    arguments: tuple[Any, ...],
    result: Any,
    registry: TypeRegistry | None = None,
) -> EncodingResult:
    """Measure wire sizes for one logical call in both encodings."""
    if registry is None:
        registry = TypeRegistry((ADDRESS_STRUCT,))
    soap_request = SoapRequest.for_call(operation, arguments, registry=registry)
    return_type = infer_type(result, registry) if result is not None else None
    if return_type is None:
        soap_response = SoapResponse(operation=operation)
    else:
        soap_response = SoapResponse.for_result(operation, result, return_type)

    giop_request = RequestMessage(
        request_id=1,
        object_key="EchoService",
        operation=operation,
        arguments_cdr=marshal_values(arguments),
    )
    giop_reply = ReplyMessage(
        request_id=1,
        status=ReplyStatus.NO_EXCEPTION,
        body_cdr=marshal_values((result,)),
    )
    return EncodingResult(
        label=label,
        soap_request_bytes=len(soap_request.to_wire()),
        soap_response_bytes=len(soap_response.to_wire()),
        giop_request_bytes=len(giop_request.to_bytes()),
        giop_reply_bytes=len(giop_reply.to_bytes()),
    )


def default_workloads() -> list[tuple[str, str, tuple[Any, ...], Any]]:
    """The payload sweep: primitives, strings of growing size, arrays, structs."""
    workloads: list[tuple[str, str, tuple[Any, ...], Any]] = [
        ("two ints", "add", (3, 4), 7),
        ("small string", "echo", ("hello",), "hello"),
        ("medium string", "echo", ("x" * 256,), "x" * 256),
        ("large string", "echo", ("x" * 4096,), "x" * 4096),
        ("int array (100)", "total", (list(range(100)),), sum(range(100))),
        ("struct", "locate", ({"street": "1 Brookings Dr", "number": 1045},), True),
        (
            "struct array (25)",
            "batch",
            ([{"street": f"{i} Main St", "number": i} for i in range(25)],),
            25,
        ),
    ]
    return workloads


def run_encoding_comparison() -> list[EncodingResult]:
    """Measure the default payload sweep."""
    return [measure_call(label, op, args, result) for label, op, args, result in default_workloads()]


def format_encoding_comparison(results: list[EncodingResult]) -> str:
    """Render the sweep as a table."""
    lines = [
        f"{'workload':20s} {'SOAP bytes':>12s} {'GIOP bytes':>12s} {'ratio':>7s}",
        "-" * 56,
    ]
    for result in results:
        lines.append(
            f"{result.label:20s} {result.soap_total:12d} {result.giop_total:12d} "
            f"{result.size_ratio:7.1f}"
        )
    return "\n".join(lines)
