"""E5 — §5.7 ablation: a rogue client flooding the server with stale calls.

"Since publication is triggered only when the published interface is out of
date, this algorithm prevents a rogue client from overwhelming the server by
sending multiple calls to non-existent methods that trigger IDL generation
needlessly."

The experiment deploys a server whose interface changed once (so exactly one
reactive publication is justified), then fires a configurable number of calls
to a non-existent method and reports how many interface generations the
publisher actually performed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sde import SDEConfig
from repro.errors import NonExistentMethodError
from repro.rmitypes import INT
from repro.testbed import LiveDevelopmentTestbed, OperationSpec


@dataclass(frozen=True)
class StaleFloodResult:
    """Outcome of one rogue-client flood."""

    stale_calls_sent: int
    non_existent_method_faults: int
    generations: int
    publications: int
    stale_call_publications: int

    @property
    def generations_per_stale_call(self) -> float:
        """Interface generations per stale call (should be ≪ 1)."""
        if self.stale_calls_sent == 0:
            return 0.0
        return self.generations / self.stale_calls_sent


def run_stale_flood(
    stale_calls: int = 50,
    interval: float = 0.05,
    publication_timeout: float = 5.0,
    generation_cost: float = 0.25,
    change_interface_first: bool = True,
) -> StaleFloodResult:
    """Fire ``stale_calls`` calls to a method that does not exist.

    With ``change_interface_first`` the interface genuinely changed before
    the flood (one reactive publication is warranted); without it the
    published interface is already current and no generation should happen at
    all.
    """
    testbed = LiveDevelopmentTestbed(
        sde_config=SDEConfig(
            publication_timeout=publication_timeout,
            generation_cost=generation_cost,
        )
    )
    calculator, _instance = testbed.create_soap_server(
        "Calculator",
        [OperationSpec("add", (("a", INT), ("b", INT)), INT, body=lambda self, a, b: a + b)],
    )
    testbed.publish_now("Calculator")
    publisher = testbed.sde.managed_server("Calculator").publisher
    handler = testbed.sde.managed_server("Calculator").call_handler
    binding = testbed.connect_soap_client("Calculator")

    generations_before = publisher.stats.generations
    publications_before = publisher.stats.publications

    if change_interface_first:
        calculator.method("add").rename("sum")

    faults = 0
    for _ in range(stale_calls):
        try:
            binding.invoke("definitely_not_a_method", 1, 2)
        except NonExistentMethodError:
            faults += 1
        testbed.run_for(interval)
    testbed.run_for(publication_timeout + generation_cost * 2)

    return StaleFloodResult(
        stale_calls_sent=stale_calls,
        non_existent_method_faults=faults,
        generations=publisher.stats.generations - generations_before,
        publications=publisher.stats.publications - publications_before,
        stale_call_publications=publisher.stats.stale_call_publications,
    )
