"""E8 — Multi-client scale-out: RTT and stall-queue behaviour vs client count.

The paper evaluates one client against one SDE (Table 1).  This experiment
asks the scaling question the reproduction's north-star cares about: what
happens to per-call round-trip time and to the §5.7 stall queue as the
number of concurrent clients grows 1 → 512, for both middlewares?

Each configuration builds a fresh testbed (one SDE server host, N client
hosts on the same latency profile), publishes an echo service, and drives
every client through the deterministic callback-driven workload driver in
:mod:`repro.workload`.  Two scenarios:

* ``steady`` — every call hits a live method; measures pure transport/dispatch
  scaling (connection reuse, FIFO reply ordering, endpoint dispatch).
* ``stale_storm`` — a scripted mid-run edit leaves the published interface
  behind the live one, and every third call per client targets a method the
  server does not implement; with reactive publication this exercises the
  §5.7 stall protocol under load, and the report captures how deep the stall
  queue grows with the fleet size.

Determinism: the same configuration always yields byte-identical RTT
sequences, which the multi-client benchmark asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sde import SDEConfig
from repro.net.latency import CostModel
from repro.rmitypes import STRING, VOID
from repro.testbed import LiveDevelopmentTestbed, OperationSpec
from repro.workload import WorkloadReport, WorkloadSpec, run_workload

#: Client counts swept by the scaling benchmark (1 → 512).
DEFAULT_CLIENT_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: The echo payload used for every measured call.
ECHO_PAYLOAD = "hello from the client fleet"

SCENARIO_STEADY = "steady"
SCENARIO_STALE_STORM = "stale_storm"


@dataclass(frozen=True)
class MultiClientResult:
    """Outcome of one (technology, scenario, client-count) configuration."""

    technology: str
    scenario: str
    clients: int
    calls_per_client: int
    mean_rtt: float
    max_rtt: float
    throughput: float
    stalled_calls: int
    max_stall_queue_depth: int
    server_connections: int
    report: WorkloadReport
    #: Bounded server-CPU configuration (None = unlimited parallel cores).
    server_cores: int | None = None
    #: Seconds requests spent queued for a server core across the run.
    server_waited_seconds: float = 0.0

    @property
    def total_calls(self) -> int:
        """Calls completed across the fleet."""
        return self.report.total_calls


def _echo_body(_instance, message: str) -> str:
    return message


def _build_testbed(
    technology: str,
    cost_model: CostModel | None,
    publication_timeout: float,
    server_cores: int | None = None,
) -> tuple[LiveDevelopmentTestbed, object]:
    testbed = LiveDevelopmentTestbed(
        cost_model=cost_model,
        sde_config=SDEConfig(
            cost_model=cost_model,
            publication_timeout=publication_timeout,
            server_cores=server_cores,
        ),
    )
    create = (
        testbed.create_soap_server if technology == "soap" else testbed.create_corba_server
    )
    dynamic_class, _instance = create(
        "EchoService",
        [OperationSpec("echo", (("message", STRING),), STRING, body=_echo_body)],
    )
    testbed.publish_now("EchoService")
    return testbed, dynamic_class


def run_multi_client(
    technology: str,
    clients: int,
    calls_per_client: int = 10,
    scenario: str = SCENARIO_STEADY,
    cost_model: CostModel | None = None,
    server_cores: int | None = None,
) -> MultiClientResult:
    """Run one scale-out configuration and summarise it.

    ``server_cores`` bounds the server machine's CPU concurrency; it only
    changes behaviour when a ``cost_model`` charges per-request processing
    (with no cost model requests consume zero CPU and nothing contends).
    """
    if scenario not in (SCENARIO_STEADY, SCENARIO_STALE_STORM):
        raise ValueError(f"unknown scenario {scenario!r}")
    publication_timeout = 5.0 if scenario == SCENARIO_STALE_STORM else 2.0
    testbed, dynamic_class = _build_testbed(
        technology, cost_model, publication_timeout, server_cores
    )

    if scenario == SCENARIO_STALE_STORM:
        spec = WorkloadSpec(
            technology=technology,
            clients=clients,
            calls_per_client=calls_per_client,
            operation="echo",
            arguments=(ECHO_PAYLOAD,),
            stale_every=3,
            think_time=0.05,
            # The edit lands as the fleet starts: the publication timer is
            # running when the stale calls arrive, so they stall (§5.7).
            scripted_events=(
                (0.0, lambda: dynamic_class.add_method("added_later", (), VOID, distributed=True)),
            ),
        )
    else:
        spec = WorkloadSpec(
            technology=technology,
            clients=clients,
            calls_per_client=calls_per_client,
            operation="echo",
            arguments=(ECHO_PAYLOAD,),
        )

    report = run_workload(testbed, "EchoService", spec)
    return MultiClientResult(
        technology=technology,
        scenario=scenario,
        clients=clients,
        calls_per_client=calls_per_client,
        mean_rtt=report.mean_rtt,
        max_rtt=report.max_rtt,
        throughput=report.throughput,
        stalled_calls=report.stalled_calls,
        max_stall_queue_depth=report.max_stall_queue_depth,
        server_connections=report.server_connections,
        report=report,
        server_cores=report.server_cores,
        server_waited_seconds=report.server_waited_seconds,
    )


def run_scaling(
    technologies: tuple[str, ...] = ("soap", "corba"),
    client_counts: tuple[int, ...] = DEFAULT_CLIENT_COUNTS,
    calls_per_client: int = 10,
    scenario: str = SCENARIO_STEADY,
    cost_model: CostModel | None = None,
    server_cores: int | None = None,
) -> list[MultiClientResult]:
    """Sweep client counts for each technology and return all results."""
    return [
        run_multi_client(
            technology,
            clients,
            calls_per_client=calls_per_client,
            scenario=scenario,
            cost_model=cost_model,
            server_cores=server_cores,
        )
        for technology in technologies
        for clients in client_counts
    ]


def format_scaling(results: list[MultiClientResult]) -> str:
    """Render scaling results as a table."""
    lines = [
        f"{'tech':6s} {'scenario':12s} {'clients':>7s} {'cores':>5s} {'mean RTT':>9s} "
        f"{'max RTT':>9s} {'calls/s':>9s} {'stalls':>6s} {'queue':>5s}",
        "-" * 74,
    ]
    for result in results:
        cores = str(result.server_cores) if result.server_cores else "inf"
        lines.append(
            f"{result.technology:6s} {result.scenario:12s} {result.clients:7d} "
            f"{cores:>5s} "
            f"{result.mean_rtt:9.4f} {result.max_rtt:9.4f} {result.throughput:9.1f} "
            f"{result.stalled_calls:6d} {result.max_stall_queue_depth:5d}"
        )
    return "\n".join(lines)
