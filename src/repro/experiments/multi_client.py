"""E8 — Multi-client scale-out: RTT and stall-queue behaviour vs client count.

The paper evaluates one client against one SDE (Table 1).  This experiment
asks the scaling question the reproduction's north-star cares about: what
happens to per-call round-trip time and to the §5.7 stall queue as the
number of concurrent clients grows 1 → 512, for both middlewares?

Each configuration is one declarative :class:`repro.cluster.Scenario` —
one SDE server machine, an echo service, N clients — driven by the
deterministic callback-driven cluster fleet driver.  Two scenarios:

* ``steady`` — every call hits a live method; measures pure transport/dispatch
  scaling (connection reuse, FIFO reply ordering, endpoint dispatch).
* ``stale_storm`` — a scripted mid-run edit leaves the published interface
  behind the live one, and every third call per client targets a method the
  server does not implement; with reactive publication this exercises the
  §5.7 stall protocol under load, and the report captures how deep the stall
  queue grows with the fleet size.

Determinism: the same configuration always yields byte-identical RTT
sequences, which the multi-client benchmark asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import ClusterReport, Scenario, edit, op
from repro.core.sde import SDEConfig
from repro.net.latency import CostModel
from repro.rmitypes import STRING

#: Client counts swept by the scaling benchmark (1 → 512).
DEFAULT_CLIENT_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: The echo payload used for every measured call.
ECHO_PAYLOAD = "hello from the client fleet"

SCENARIO_STEADY = "steady"
SCENARIO_STALE_STORM = "stale_storm"


@dataclass(frozen=True)
class MultiClientResult:
    """Outcome of one (technology, scenario, client-count) configuration."""

    technology: str
    scenario: str
    clients: int
    calls_per_client: int
    mean_rtt: float
    max_rtt: float
    throughput: float
    stalled_calls: int
    max_stall_queue_depth: int
    server_connections: int
    report: ClusterReport
    #: Bounded server-CPU configuration (None = unlimited parallel cores).
    server_cores: int | None = None
    #: Seconds requests spent queued for a server core across the run.
    server_waited_seconds: float = 0.0

    @property
    def total_calls(self) -> int:
        """Calls completed across the fleet."""
        return self.report.total_calls


def _echo_body(_instance, message: str) -> str:
    return message


def build_scenario(
    technology: str,
    clients: int,
    calls_per_client: int = 10,
    scenario: str = SCENARIO_STEADY,
    cost_model: CostModel | None = None,
    server_cores: int | None = None,
) -> Scenario:
    """The declarative world description for one scale-out configuration."""
    if scenario not in (SCENARIO_STEADY, SCENARIO_STALE_STORM):
        raise ValueError(f"unknown scenario {scenario!r}")
    stale = scenario == SCENARIO_STALE_STORM
    world = (
        Scenario(
            name=f"multi-client-{technology}-{scenario}",
            sde_config=SDEConfig(
                cost_model=cost_model,
                publication_timeout=5.0 if stale else 2.0,
                server_cores=server_cores,
            ),
        )
        .servers(1)
        .service(
            "EchoService",
            [op("echo", (("message", STRING),), STRING, body=_echo_body)],
            technology=technology,
        )
    )
    if stale:
        world.clients(
            clients,
            service="EchoService",
            calls=calls_per_client,
            operation="echo",
            arguments=(ECHO_PAYLOAD,),
            stale_every=3,
            think_time=0.05,
        )
        # The edit lands as the fleet starts: the publication timer is
        # running when the stale calls arrive, so they stall (§5.7).
        world.at(0.0, edit("EchoService", op("added_later")))
    else:
        world.clients(
            clients,
            service="EchoService",
            calls=calls_per_client,
            operation="echo",
            arguments=(ECHO_PAYLOAD,),
        )
    return world


def run_multi_client(
    technology: str,
    clients: int,
    calls_per_client: int = 10,
    scenario: str = SCENARIO_STEADY,
    cost_model: CostModel | None = None,
    server_cores: int | None = None,
) -> MultiClientResult:
    """Run one scale-out configuration and summarise it.

    ``server_cores`` bounds the server machine's CPU concurrency; it only
    changes behaviour when a ``cost_model`` charges per-request processing
    (with no cost model requests consume zero CPU and nothing contends).
    """
    world = build_scenario(
        technology, clients, calls_per_client, scenario, cost_model, server_cores
    )
    report = world.run()
    node = report.nodes[0]
    return MultiClientResult(
        technology=technology,
        scenario=scenario,
        clients=clients,
        calls_per_client=calls_per_client,
        mean_rtt=report.mean_rtt,
        max_rtt=report.max_rtt,
        throughput=report.throughput,
        stalled_calls=report.stalled_calls,
        max_stall_queue_depth=report.max_stall_queue_depth,
        server_connections=report.server_connections,
        report=report,
        server_cores=node.cores,
        server_waited_seconds=node.waited_seconds,
    )


def run_scaling(
    technologies: tuple[str, ...] = ("soap", "corba"),
    client_counts: tuple[int, ...] = DEFAULT_CLIENT_COUNTS,
    calls_per_client: int = 10,
    scenario: str = SCENARIO_STEADY,
    cost_model: CostModel | None = None,
    server_cores: int | None = None,
) -> list[MultiClientResult]:
    """Sweep client counts for each technology and return all results."""
    return [
        run_multi_client(
            technology,
            clients,
            calls_per_client=calls_per_client,
            scenario=scenario,
            cost_model=cost_model,
            server_cores=server_cores,
        )
        for technology in technologies
        for clients in client_counts
    ]


def format_scaling(results: list[MultiClientResult]) -> str:
    """Render scaling results as a table."""
    lines = [
        f"{'tech':6s} {'scenario':12s} {'clients':>7s} {'cores':>5s} {'mean RTT':>9s} "
        f"{'max RTT':>9s} {'calls/s':>9s} {'stalls':>6s} {'queue':>5s}",
        "-" * 74,
    ]
    for result in results:
        cores = str(result.server_cores) if result.server_cores else "inf"
        lines.append(
            f"{result.technology:6s} {result.scenario:12s} {result.clients:7d} "
            f"{cores:>5s} "
            f"{result.mean_rtt:9.4f} {result.max_rtt:9.4f} {result.throughput:9.1f} "
            f"{result.stalled_calls:6d} {result.max_stall_queue_depth:5d}"
        )
    return "\n".join(lines)
