"""E4 — §5.6 ablation: stable-timeout vs change-driven vs polling publication.

The paper argues for a change-driven mechanism that waits for a stable
interval: pure change-driven publication "would often lead to publishing
transient server interface descriptions", and pure polling "could still
publish a transient interface [which] could persist at the client side until
the next polling interval".

This experiment replays a scripted editing session — bursts of interface
edits separated by think time, as a developer iterates on a server class —
against the three strategies and reports:

* how many interface generations and publications each strategy performed;
* how many of those publications were *transient* (they describe an
  interface that never survives a full burst of editing);
* the staleness window: how long after the final edit the published
  interface still disagreed with the live one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sde import SDEConfig
from repro.core.sde.publisher import (
    STRATEGY_CHANGE_DRIVEN,
    STRATEGY_POLLING,
    STRATEGY_STABLE_TIMEOUT,
)
from repro.interface import Parameter
from repro.rmitypes import INT, STRING
from repro.testbed import LiveDevelopmentTestbed, OperationSpec

ALL_STRATEGIES = (STRATEGY_STABLE_TIMEOUT, STRATEGY_CHANGE_DRIVEN, STRATEGY_POLLING)


@dataclass(frozen=True)
class EditBurst:
    """One burst of editing activity: ``edits`` edits ``gap`` seconds apart,
    followed by ``pause`` seconds of think time."""

    edits: int
    gap: float
    pause: float


#: The default editing session: three bursts of rapid edits with think time
#: in between, ending with a stable interface.
DEFAULT_SESSION: tuple[EditBurst, ...] = (
    EditBurst(edits=6, gap=0.5, pause=12.0),
    EditBurst(edits=4, gap=0.8, pause=15.0),
    EditBurst(edits=5, gap=0.4, pause=20.0),
)


@dataclass(frozen=True)
class StrategyResult:
    """Outcome of replaying the editing session under one strategy."""

    strategy: str
    edits: int
    generations: int
    publications: int
    transient_publications: int
    final_interface_published: bool
    staleness_after_last_edit: float

    @property
    def useful_publications(self) -> int:
        """Publications that describe an interface surviving a burst."""
        return self.publications - self.transient_publications


def _apply_session(testbed: LiveDevelopmentTestbed, dynamic_class, session) -> list[int]:
    """Replay the editing session; return the scheduler times (as indices in
    the publication history comparison) of burst boundaries."""
    counter = 0
    stable_interfaces: list[tuple[str, ...]] = []
    for burst in session:
        for _ in range(burst.edits):
            name = f"operation_{counter}"
            dynamic_class.add_method(
                name,
                (Parameter("value", INT),),
                STRING,
                body=lambda self, value: str(value),
                distributed=True,
            )
            counter += 1
            testbed.run_for(burst.gap)
        stable_interfaces.append(dynamic_class.distributed_signatures())
        testbed.run_for(burst.pause)
    return stable_interfaces


def run_single_strategy(
    strategy: str,
    session: tuple[EditBurst, ...] = DEFAULT_SESSION,
    timeout: float = 5.0,
    generation_cost: float = 0.25,
    poll_interval: float = 10.0,
) -> StrategyResult:
    """Replay the editing session under ``strategy`` and measure the outcome."""
    testbed = LiveDevelopmentTestbed(
        sde_config=SDEConfig(
            publication_timeout=timeout,
            generation_cost=generation_cost,
            publication_strategy=strategy,
            poll_interval=poll_interval,
        )
    )
    dynamic_class, _instance = testbed.create_soap_server("EditedService", [])
    publisher = testbed.sde.managed_server("EditedService").publisher

    stable_interfaces = _apply_session(testbed, dynamic_class, session)
    final_interface = dynamic_class.distributed_signatures()

    # Measure how long after the last edit the published interface still
    # disagrees with the live one.
    last_edit_time = testbed.now - session[-1].pause
    staleness = None
    for record in publisher.publication_history:
        if record.time >= last_edit_time and record.description.operations == final_interface:
            staleness = record.time - last_edit_time
            break
    if staleness is None:
        already = (
            publisher.published_description is not None
            and publisher.published_description.operations == final_interface
        )
        staleness = 0.0 if already else float("inf")

    # A publication is transient if the interface it describes is not one of
    # the burst-boundary (stable) interfaces and not the final interface.
    stable_set = {tuple(ops) for ops in stable_interfaces}
    stable_set.add(tuple(final_interface))
    transient = sum(
        1
        for record in publisher.publication_history
        if record.description.operations and tuple(record.description.operations) not in stable_set
    )

    final_published = (
        publisher.published_description is not None
        and publisher.published_description.operations == final_interface
    )
    return StrategyResult(
        strategy=strategy,
        edits=sum(burst.edits for burst in session),
        generations=publisher.stats.generations,
        publications=publisher.stats.publications,
        transient_publications=transient,
        final_interface_published=final_published,
        staleness_after_last_edit=staleness,
    )


def run_publication_strategy_comparison(
    session: tuple[EditBurst, ...] = DEFAULT_SESSION,
    timeout: float = 5.0,
    generation_cost: float = 0.25,
    poll_interval: float = 10.0,
) -> list[StrategyResult]:
    """Run the editing session under all three strategies."""
    return [
        run_single_strategy(strategy, session, timeout, generation_cost, poll_interval)
        for strategy in ALL_STRATEGIES
    ]


def format_strategy_comparison(results: list[StrategyResult]) -> str:
    """Render the comparison as a small table."""
    lines = [
        f"{'strategy':18s} {'edits':>6s} {'gens':>6s} {'pubs':>6s} {'transient':>10s} {'staleness':>10s}",
        "-" * 62,
    ]
    for result in results:
        staleness = (
            f"{result.staleness_after_last_edit:.2f}s"
            if result.staleness_after_last_edit != float("inf")
            else "never"
        )
        lines.append(
            f"{result.strategy:18s} {result.edits:6d} {result.generations:6d} "
            f"{result.publications:6d} {result.transient_publications:10d} {staleness:>10s}"
        )
    return "\n".join(lines)
