"""E7 — interface-generation cost versus interface size.

Section 5.6's premise is that "the generation and publication of the server
interface description is a relatively expensive operation", which is what
justifies suppressing transient publications.  This experiment sweeps the
number of distributed operations and reports the size of the generated WSDL
and CORBA-IDL documents (the wall-clock generation time is measured by the
pytest-benchmark wrapper around this driver).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corba.idl import generate_idl
from repro.interface import InterfaceDescription, OperationSignature, Parameter
from repro.rmitypes import DOUBLE, INT, STRING
from repro.soap.wsdl import generate_wsdl


@dataclass(frozen=True)
class GenerationResult:
    """Document sizes for one interface size."""

    operations: int
    wsdl_bytes: int
    idl_bytes: int


def build_interface(operation_count: int) -> InterfaceDescription:
    """Build a synthetic interface with ``operation_count`` operations of
    varied signatures."""
    operations = []
    parameter_menu = (
        (Parameter("name", STRING),),
        (Parameter("a", INT), Parameter("b", INT)),
        (Parameter("x", DOUBLE), Parameter("y", DOUBLE), Parameter("label", STRING)),
    )
    return_menu = (STRING, INT, DOUBLE)
    for index in range(operation_count):
        operations.append(
            OperationSignature(
                name=f"operation_{index}",
                parameters=parameter_menu[index % len(parameter_menu)],
                return_type=return_menu[index % len(return_menu)],
            )
        )
    return InterfaceDescription(
        service_name="GeneratedService",
        namespace="urn:bench:generated",
        endpoint_url="http://server:8070/sde/GeneratedService",
    ).with_operations(operations)


def run_interface_generation_sweep(
    operation_counts: tuple[int, ...] = (1, 5, 10, 25, 50, 100)
) -> list[GenerationResult]:
    """Generate WSDL and IDL documents across the interface-size sweep."""
    results = []
    for count in operation_counts:
        description = build_interface(count)
        wsdl = generate_wsdl(description)
        idl = generate_idl(description)
        results.append(
            GenerationResult(
                operations=count,
                wsdl_bytes=len(wsdl.encode("utf-8")),
                idl_bytes=len(idl.encode("utf-8")),
            )
        )
    return results
