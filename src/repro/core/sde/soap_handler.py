"""The SOAP Call Handler (§5.1.3).

"The SOAP Call Handler acts as the communication end point that performs the
SOAP to Java and Java to SOAP translation for remote method invocations."
Here it binds an HTTP endpoint on the server host, parses incoming SOAP
Requests, feeds them through the shared dispatch logic of
:class:`~repro.core.sde.call_handler.CallHandler`, and encodes the outcome as
a SOAP Response (value or fault).  Replies are issued through the transport
layer's generic :class:`~repro.net.transport.Deferred` so a §5.7 stall simply
delays the reply without blocking the simulated server; per-connection FIFO
ordering guarantees stalled replies drain in arrival order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.sde.call_handler import CallHandler, DispatchOutcome
from repro.errors import (
    MalformedRequestError,
    NonExistentMethodError,
    ServerNotInitializedError,
    SoapError,
)
from repro.interface import OperationSignature
from repro.net.http import HttpRequest, HttpResponse, HttpServer
from repro.net.transport import Deferred
from repro.obs import hooks as _obs_hooks
from repro.rmitypes import TypeRegistry
from repro.soap.envelope import SoapRequest, SoapResponse
from repro.soap.faults import SoapFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sde.manager import ManagedServer, SDEManager


class SoapCallHandler(CallHandler):
    """HTTP/SOAP communication endpoint for a managed SOAP server class."""

    def __init__(self, manager: "SDEManager", server: "ManagedServer", port: int) -> None:
        super().__init__(manager, server)
        self.port = port
        self.http_server = HttpServer(
            manager.host,
            port,
            name=f"sde-soap:{server.dynamic_class.name}",
            cores=manager.server_core,
        )
        self.http_server.add_route(self.endpoint_path, self._handle, methods=("GET", "POST"))

    # -- endpoint ------------------------------------------------------------

    @property
    def endpoint_path(self) -> str:
        """HTTP path of the SOAP endpoint."""
        return f"/sde/{self.dynamic_class.name}"

    @property
    def endpoint_url(self) -> str:
        return f"http://{self.manager.host.name}:{self.port}{self.endpoint_path}"

    def start(self) -> None:
        self.http_server.start()

    def stop(self) -> None:
        self.http_server.stop()

    # -- request handling ---------------------------------------------------------

    def _handle(self, request: HttpRequest):
        if request.method == "GET":
            # Convenience: point clients at the published WSDL document.
            return HttpResponse.ok_text(self.server.publisher.document_url)

        namespace = self.server.publisher.namespace
        registry = TypeRegistry(self.dynamic_class.struct_types)
        try:
            soap_request = SoapRequest.from_xml(request.body, registry)
        except SoapError as exc:
            self.note_malformed_request(str(exc))
            fault = SoapFault.malformed_request(str(exc))
            return self._fault_response("", fault, len(request.body))

        deferred: Deferred = Deferred(f"soap reply for {soap_request.operation}")

        def on_result(value: Any, signature: OperationSignature) -> None:
            response = SoapResponse.for_result(
                soap_request.operation, value, signature.return_type, namespace=namespace
            )
            body, wire = response.to_xml_and_wire()
            deferred.complete(
                HttpResponse.ok_xml(body, wire=wire),
                self._processing_delay(len(request.body), len(body)),
            )

        def on_fault(error: BaseException) -> None:
            fault = self._fault_for(soap_request.operation, error)
            response = SoapResponse.for_fault(soap_request.operation, fault, namespace=namespace)
            body, wire = response.to_xml_and_wire()
            deferred.complete(
                HttpResponse.ok_xml(body, wire=wire),
                self._processing_delay(len(request.body), len(body)),
            )

        if soap_request.trace_context is not None and _obs_hooks.ACTIVE is not None:
            # Staged for CallHandler.dispatch, which consumes and clears it
            # synchronously before this frame returns.
            _obs_hooks.SERVER_WIRE_CONTEXT = soap_request.trace_context
        self.dispatch(
            soap_request.operation,
            soap_request.arguments,
            DispatchOutcome(on_result=on_result, on_fault=on_fault),
        )
        return deferred

    # -- fault mapping ----------------------------------------------------------------

    def _fault_for(self, operation: str, error: BaseException) -> SoapFault:
        if isinstance(error, ServerNotInitializedError):
            return SoapFault.server_not_initialized()
        if isinstance(error, NonExistentMethodError):
            return SoapFault.non_existent_method(operation, error.interface_version)
        if isinstance(error, MalformedRequestError):
            return SoapFault.malformed_request(str(error))
        return SoapFault.application_fault(error)

    def _fault_response(self, operation: str, fault: SoapFault, request_size: int):
        response = SoapResponse.for_fault(operation, fault)
        body, wire = response.to_xml_and_wire()
        delay = self._processing_delay(request_size, len(body))
        if delay > 0:
            return HttpResponse.ok_xml(body, wire=wire), delay
        return HttpResponse.ok_xml(body, wire=wire)

    # -- cost accounting ---------------------------------------------------------------

    def _processing_delay(self, request_size: int, response_size: int) -> float:
        cost_model = self.manager.config.cost_model
        if cost_model is None:
            return 0.0
        cost = cost_model.text_processing(request_size)
        cost += cost_model.text_processing(response_size)
        cost += cost_model.dynamic_dispatch_overhead()
        return cost * self.manager.config.speed_factor
