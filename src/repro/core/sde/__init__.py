"""Server Development Environment (SDE).

SDE has three main responsibilities (§5): detect the presence of server
classes within JPie, construct and deploy the RMI call handlers for each of
those classes, and automate the publication of the server interface in an
intelligent manner.  In conjunction with CDE it also provides concurrency
control between the RMI call path and the interface update mechanism.

The package mirrors the class hierarchy of Figure 6:

* :mod:`repro.core.sde.api` — the technology-independent abstractions
  (``SDEServer`` gateway classes, ``DLPublisher``, ``CallHandler``,
  ``Technology`` plug-in descriptor);
* :mod:`repro.core.sde.publisher` — the stable-change publication engine
  (§5.6) and the §5.7 recency machinery, shared by both technologies;
* :mod:`repro.core.sde.wsdl_publisher` / :mod:`repro.core.sde.idl_publisher`
  — the WSDL and CORBA-IDL publishers;
* :mod:`repro.core.sde.call_handler` /
  :mod:`repro.core.sde.soap_handler` / :mod:`repro.core.sde.corba_handler`
  — the RMI call handlers;
* :mod:`repro.core.sde.interface_server` — the integrated HTTP server that
  publishes interface documents;
* :mod:`repro.core.sde.manager` — the SDE Manager that wires everything up;
* :mod:`repro.core.sde.manager_interface` — the user-facing SDE Manager
  Interface (§4).
"""

from repro.core.sde.api import Technology, GATEWAY_SOAP, GATEWAY_CORBA
from repro.core.sde.manager import SDEManager, SDEConfig, ManagedServer
from repro.core.sde.manager_interface import SDEManagerInterface
from repro.core.sde.interface_server import InterfaceServer

__all__ = [
    "Technology",
    "GATEWAY_SOAP",
    "GATEWAY_CORBA",
    "SDEManager",
    "SDEConfig",
    "ManagedServer",
    "SDEManagerInterface",
    "InterfaceServer",
]
