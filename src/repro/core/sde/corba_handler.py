"""The CORBA Call Handler (§5.2.3).

"In the CORBA subsystem, the CORBA Call Handler is a simple wrapper around
the Server ORB, and the low level communication details are handled by making
OpenORB API calls."  Here the handler owns a :class:`~repro.corba.orb.ServerOrb`
and registers a DSI :class:`~repro.corba.dsi.DynamicServant` whose dispatch
function feeds incoming calls through the shared
:class:`~repro.core.sde.call_handler.CallHandler` logic; using DSI means the
Server ORB never needs to be re-initialised when server methods or types
change (§5.2.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.sde.call_handler import CallHandler, DispatchOutcome
from repro.corba.dsi import DynamicServant, ServerRequest
from repro.corba.ior import IOR
from repro.corba.orb import ServerOrb
from repro.net.transport import Deferred
from repro.corba.poa import PortableObjectAdapter
from repro.errors import (
    CorbaUserException,
    NonExistentMethodError,
    ServerNotInitializedError,
)
from repro.interface import OperationSignature
from repro.soap.faults import FaultCodes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sde.manager import ManagedServer, SDEManager

#: User-exception type names carried in GIOP replies so CDE can classify them.
EXC_SERVER_NOT_INITIALIZED = "ServerNotInitialized"
EXC_NON_EXISTENT_METHOD = "NonExistentMethod"
EXC_APPLICATION = "ApplicationException"


class CorbaCallHandler(CallHandler):
    """The CORBA End Point + Call Handler for a managed CORBA server class."""

    def __init__(self, manager: "SDEManager", server: "ManagedServer", iiop_port: int) -> None:
        super().__init__(manager, server)
        self.iiop_port = iiop_port
        self.object_key = server.dynamic_class.name
        self.poa = PortableObjectAdapter(f"sde-poa:{self.object_key}")
        self.servant = DynamicServant(self.object_key, self._serve_request)
        self.poa.activate_object(self.object_key, self.servant)

        cost_model = manager.config.cost_model
        dynamic_overhead = (
            cost_model.dynamic_dispatch_overhead() + cost_model.dsi_overhead
            if cost_model is not None
            else 0.0
        )
        self.orb = ServerOrb(
            manager.host,
            iiop_port,
            poa=self.poa,
            cost_model=cost_model,
            speed_factor=manager.config.speed_factor,
            dynamic_dispatch_overhead=dynamic_overhead,
            cores=manager.server_core,
        )

    # -- endpoint --------------------------------------------------------------

    @property
    def endpoint_url(self) -> str:
        return f"iiop://{self.manager.host.name}:{self.iiop_port}/{self.object_key}"

    @property
    def ior(self) -> IOR:
        """The IOR naming the managed object."""
        return IOR(
            type_id=self.servant.repository_id,
            host=self.manager.host.name,
            port=self.iiop_port,
            object_key=self.object_key,
        )

    def start(self) -> None:
        self.orb.start()

    def stop(self) -> None:
        self.orb.stop()

    # -- DSI dispatch -------------------------------------------------------------

    def _serve_request(self, request: ServerRequest) -> None:
        deferred: Deferred = Deferred(f"giop result for {request.operation}")

        def on_result(value: Any, signature: OperationSignature) -> None:
            deferred.complete(value)

        def on_fault(error: BaseException) -> None:
            deferred.fail(self._exception_for(error))

        self.dispatch(
            request.operation,
            tuple(request.arguments),
            DispatchOutcome(on_result=on_result, on_fault=on_fault),
        )
        request.set_result(deferred)

    def _exception_for(self, error: BaseException) -> CorbaUserException:
        if isinstance(error, ServerNotInitializedError):
            return CorbaUserException(EXC_SERVER_NOT_INITIALIZED, FaultCodes.SERVER_NOT_INITIALIZED)
        if isinstance(error, NonExistentMethodError):
            detail = f"operation={error.operation}"
            if error.interface_version is not None:
                detail += f"; publishedVersion={error.interface_version}"
            return CorbaUserException(EXC_NON_EXISTENT_METHOD, detail)
        return CorbaUserException(EXC_APPLICATION, f"{type(error).__name__}: {error}")
