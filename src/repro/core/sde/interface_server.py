"""The Interface Server: SDE's integrated HTTP publication server.

"The Interface Server acts as a simple HTTP server that publishes the WSDL
documents to the public domain" (§5.1); "the same Interface Server is used by
both subsystems for simplicity" (§5.2) — it also serves CORBA-IDL documents
and IORs.  The SDE Manager Interface lets the developer start and stop it
(§4).
"""

from __future__ import annotations

from repro.errors import PublicationError
from repro.net.http import HttpResponse, HttpServer
from repro.net.simnet import Host


class InterfaceServer:
    """Publishes interface documents (WSDL, IDL, IOR) at HTTP paths."""

    def __init__(self, host: Host, port: int = 8080) -> None:
        self.host = host
        self.port = port
        self.http_server = HttpServer(host, port, name="sde-interface-server")
        self._documents: dict[str, tuple[str, str]] = {}
        self._publication_count: dict[str, int] = {}
        self.http_server.add_route("/", self._serve, methods=("GET",), prefix=True)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start serving published documents."""
        self.http_server.start()

    def stop(self) -> None:
        """Stop the HTTP server (published documents are retained)."""
        self.http_server.stop()

    @property
    def running(self) -> bool:
        """True while the HTTP server is accepting requests."""
        return self.http_server.running

    @property
    def base_url(self) -> str:
        """Base URL of the interface server."""
        return self.http_server.url

    @property
    def transport_stats(self):
        """Transport-layer counters (connections, replies, drops)."""
        return self.http_server.endpoint.stats

    @property
    def connection_count(self) -> int:
        """Distinct client connections that fetched documents."""
        return len(self.http_server.endpoint.connections)

    # -- publication ----------------------------------------------------------

    def publish(self, path: str, content: str, content_type: str = "text/xml; charset=utf-8") -> str:
        """Publish (or republish) ``content`` at ``path`` and return its URL."""
        if not path.startswith("/"):
            raise PublicationError(f"publication path must start with '/', got {path!r}")
        self._documents[path] = (content, content_type)
        self._publication_count[path] = self._publication_count.get(path, 0) + 1
        return self.url_for(path)

    def withdraw(self, path: str) -> None:
        """Remove a published document."""
        self._documents.pop(path, None)

    def document(self, path: str) -> str | None:
        """Return the currently published content at ``path``, if any."""
        entry = self._documents.get(path)
        return entry[0] if entry else None

    def publication_count(self, path: str) -> int:
        """How many times ``path`` has been (re)published."""
        return self._publication_count.get(path, 0)

    @property
    def published_paths(self) -> tuple[str, ...]:
        """All paths that currently have a published document."""
        return tuple(sorted(self._documents))

    def url_for(self, path: str) -> str:
        """The full URL at which ``path`` is served."""
        return f"{self.base_url}{path}"

    # -- request handling --------------------------------------------------------

    def _serve(self, request) -> HttpResponse:
        path = request.path.split("?", 1)[0]
        entry = self._documents.get(path)
        if entry is None:
            return HttpResponse.not_found(f"no published document at {path}")
        content, content_type = entry
        return HttpResponse(200, {"Content-Type": content_type}, content)

    def __repr__(self) -> str:
        return f"InterfaceServer({self.base_url}, documents={len(self._documents)})"
