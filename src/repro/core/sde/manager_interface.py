"""The SDE Manager Interface (§4).

"Once SDE starts monitoring a subclass of SOAPServer or CORBAServer, the user
can control the automated server interface publication using the SDE Manager
Interface.  The user can control the publication frequency by specifying a
timeout value.  In addition, the SDE Manager Interface allows users to
control the integrated HTTP server used to publish server interfaces.  The
users may also view the WSDL/CORBA-IDL that corresponds to each server under
development in JPie."

This is the headless (API) rendering of that GUI panel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sde.manager import SDEManager
from repro.errors import PublicationError


@dataclass(frozen=True)
class PublicationStatus:
    """A snapshot of one managed server's publication state."""

    class_name: str
    technology: str
    version: int
    timer_running: bool
    generation_in_progress: bool
    published_current: bool
    publications: int
    document_url: str


class SDEManagerInterface:
    """User-facing control panel for a running SDE Manager."""

    def __init__(self, manager: SDEManager) -> None:
        self.manager = manager

    # -- publication frequency control -----------------------------------------

    def set_publication_timeout(self, class_name: str, timeout: float) -> None:
        """Set the §5.6 stability timeout for one managed class."""
        if timeout <= 0:
            raise PublicationError(f"publication timeout must be positive, got {timeout}")
        self.manager.managed_server(class_name).publisher.timeout = timeout

    def publication_timeout(self, class_name: str) -> float:
        """Return the current stability timeout for one managed class."""
        return self.manager.managed_server(class_name).publisher.timeout

    def force_publication(self, class_name: str) -> None:
        """Manually trigger publication by forcing timer expiration (§5.6)."""
        self.manager.managed_server(class_name).publisher.force_publish()

    # -- interface inspection ------------------------------------------------------

    def view_interface_document(self, class_name: str) -> str:
        """Return the currently *published* WSDL/CORBA-IDL document text."""
        publisher = self.manager.managed_server(class_name).publisher
        document = self.manager.interface_server.document(publisher.document_path)
        return document if document is not None else ""

    def view_live_interface(self, class_name: str) -> str:
        """Return a human-readable rendering of the *live* (possibly not yet
        published) interface of the dynamic class."""
        publisher = self.manager.managed_server(class_name).publisher
        return publisher.current_description().describe()

    def publication_status(self, class_name: str) -> PublicationStatus:
        """A status snapshot for one managed class."""
        server = self.manager.managed_server(class_name)
        publisher = server.publisher
        return PublicationStatus(
            class_name=class_name,
            technology=server.technology.name,
            version=publisher.version,
            timer_running=publisher.timer.running,
            generation_in_progress=publisher.generation_in_progress,
            published_current=publisher.is_published_current(),
            publications=publisher.stats.publications,
            document_url=publisher.document_url,
        )

    def managed_class_names(self) -> tuple[str, ...]:
        """Names of all classes SDE is currently managing."""
        return tuple(server.name for server in self.manager.managed_servers)

    # -- interface server control -----------------------------------------------------

    def start_interface_server(self) -> None:
        """Start the integrated HTTP publication server."""
        self.manager.interface_server.start()

    def stop_interface_server(self) -> None:
        """Stop the integrated HTTP publication server."""
        self.manager.interface_server.stop()

    @property
    def interface_server_running(self) -> bool:
        """True while the integrated HTTP publication server is running."""
        return self.manager.interface_server.running
