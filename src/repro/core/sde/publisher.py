"""The DL Publisher: automated, stable-change-driven interface publication.

This module implements §5.6 ("Detection of Server Interface Changes") and the
publisher half of §5.7 ("Client Requests for Non-existent Methods"):

* every interface-affecting change to the managed dynamic class resets a
  countdown timer; only when the interface has been *stable* for the whole
  timeout does the publisher generate and publish a new description;
* generation itself takes time ("a relatively expensive operation"); if the
  timer expires again while a generation is running, another generation is
  queued to run as soon as the current one finishes;
* the developer can force publication at any time (SDE Manager Interface);
* :meth:`DLPublisher.ensure_current` implements the §5.7 recency guarantee
  used by the call handlers when a stale method is invoked.

For the E4 ablation the publisher also supports the two strategies the paper
rejects — pure change-driven publication and periodic polling — selected by
the ``strategy`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import PublicationError
from repro.interface import InterfaceDescription
from repro.jpie.dynamic_class import DynamicClass
from repro.jpie.undo_redo import ChangeRecord
from repro.sim.scheduler import Scheduler
from repro.sim.timers import PeriodicTimer, ResettableTimer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sde.interface_server import InterfaceServer

#: Publication strategies.  The paper's mechanism is ``stable-timeout``;
#: ``change-driven`` and ``polling`` exist for the §5.6 ablation (E4).
STRATEGY_STABLE_TIMEOUT = "stable-timeout"
STRATEGY_CHANGE_DRIVEN = "change-driven"
STRATEGY_POLLING = "polling"

_STRATEGIES = (STRATEGY_STABLE_TIMEOUT, STRATEGY_CHANGE_DRIVEN, STRATEGY_POLLING)


@dataclass
class PublicationRecord:
    """One published interface description (kept for the experiments)."""

    version: int
    time: float
    description: InterfaceDescription
    forced: bool = False


@dataclass
class PublisherStats:
    """Counters describing the publisher's activity."""

    changes_observed: int = 0
    timer_resets: int = 0
    generations: int = 0
    publications: int = 0
    redundant_generations: int = 0
    forced_publications: int = 0
    stale_call_publications: int = 0


class DLPublisher:
    """Base class for the WSDL and CORBA-IDL publishers.

    Subclasses provide the document rendering (:meth:`render`), the
    publication path and the content type; everything about *when* to publish
    lives here.
    """

    def __init__(
        self,
        dynamic_class: DynamicClass,
        interface_server: "InterfaceServer",
        scheduler: Scheduler,
        namespace: str,
        endpoint_url: str,
        timeout: float = 5.0,
        generation_cost: float = 0.25,
        strategy: str = STRATEGY_STABLE_TIMEOUT,
        poll_interval: float = 10.0,
    ) -> None:
        if strategy not in _STRATEGIES:
            raise PublicationError(f"unknown publication strategy {strategy!r}")
        self.dynamic_class = dynamic_class
        self.interface_server = interface_server
        self.scheduler = scheduler
        self.namespace = namespace
        self.endpoint_url = endpoint_url
        self.generation_cost = float(generation_cost)
        self.strategy = strategy

        self.timer = ResettableTimer(
            scheduler, timeout, self._on_timer_expired, label=f"publish-timer:{dynamic_class.name}"
        )
        self._poll_timer: PeriodicTimer | None = None
        if strategy == STRATEGY_POLLING:
            self._poll_timer = PeriodicTimer(
                scheduler, poll_interval, self._on_poll_tick, label=f"poll-timer:{dynamic_class.name}"
            )

        self.version = 0
        self.published_description: InterfaceDescription | None = None
        self.published_document: str = ""
        self.publication_history: list[PublicationRecord] = []
        self.stats = PublisherStats()

        self._generation_in_progress = False
        self._pending_generation = False
        self._force_next_publication = False
        self._waiters: list[Callable[[], None]] = []
        #: Called with each new :class:`PublicationRecord` the instant it is
        #: published — the hook the interface-evolution layer uses to feed
        #: per-replica version graphs (:mod:`repro.evolve`).  Listeners must
        #: be pure bookkeeping: they run inside the publication step and
        #: must not schedule events or mutate the managed class.
        self.publication_listeners: list[Callable[[PublicationRecord], None]] = []

    # -- abstract rendering -------------------------------------------------

    def render(self, description: InterfaceDescription) -> str:
        """Render ``description`` into the technology's document format."""
        raise NotImplementedError

    @property
    def document_path(self) -> str:
        """Path under which the document is published on the Interface Server."""
        raise NotImplementedError

    @property
    def content_type(self) -> str:
        """MIME type of the published document."""
        return "text/xml; charset=utf-8"

    # -- configuration ----------------------------------------------------------

    @property
    def timeout(self) -> float:
        """The §5.6 stability timeout in (virtual) seconds."""
        return self.timer.timeout

    @timeout.setter
    def timeout(self, value: float) -> None:
        self.timer.timeout = value

    @property
    def document_url(self) -> str:
        """Full URL of the published document."""
        return self.interface_server.url_for(self.document_path)

    @property
    def generation_in_progress(self) -> bool:
        """True while a document generation is running (§5.6/§5.7)."""
        return self._generation_in_progress

    # -- the current interface -----------------------------------------------------

    def current_description(self) -> InterfaceDescription:
        """Snapshot the dynamic class's current distributed interface."""
        base = InterfaceDescription(
            service_name=self.dynamic_class.name,
            namespace=self.namespace,
            endpoint_url=self.endpoint_url,
            version=self.version,
        )
        return base.with_operations(
            self.dynamic_class.distributed_signatures(),
            self.dynamic_class.struct_types,
        )

    def is_published_current(self) -> bool:
        """True if the published description matches the live interface."""
        if self.published_description is None:
            return False
        return self.published_description.same_signature(self.current_description())

    # -- deployment-time publication (§5.1.1) ----------------------------------------

    def publish_minimal(self) -> None:
        """Publish the minimal interface description immediately.

        "creates a minimal WSDL document [containing] the SOAP Endpoint
        address but ... no server operation definitions" — this happens at
        deployment time, before any editing, so it bypasses the stability
        timer and the generation delay.
        """
        description = InterfaceDescription.minimal(
            self.dynamic_class.name, self.namespace, self.endpoint_url
        )
        self._publish(description, forced=False)

    def start(self) -> None:
        """Begin monitoring (start the polling timer when that strategy is used)."""
        if self._poll_timer is not None and not self._poll_timer.running:
            self._poll_timer.start()

    def stop(self) -> None:
        """Stop all timers (used when a managed server is torn down)."""
        self.timer.cancel()
        if self._poll_timer is not None:
            self._poll_timer.stop()

    # -- change monitoring (§5.6) --------------------------------------------------------

    def on_change_record(self, record: ChangeRecord) -> None:
        """Undo/redo-stack listener: note a change to the managed class."""
        if record.class_name != self.dynamic_class.name:
            return
        if not record.event.affects_interface:
            return
        self.stats.changes_observed += 1
        if self.strategy == STRATEGY_CHANGE_DRIVEN:
            self._begin_generation()
        elif self.strategy == STRATEGY_STABLE_TIMEOUT:
            if self.timer.running:
                self.stats.timer_resets += 1
            self.timer.reset()
        # polling: nothing to do, the periodic timer will notice.

    def _on_timer_expired(self) -> None:
        self._begin_generation()

    def _on_poll_tick(self) -> None:
        if not self.is_published_current():
            self._begin_generation()

    # -- manual control (§4 / §5.6) --------------------------------------------------------

    def force_publish(self) -> None:
        """Force timer expiration: generate and publish now."""
        self.stats.forced_publications += 1
        self._force_next_publication = True
        self.timer.cancel()
        self._begin_generation()

    # -- the §5.7 recency machinery ------------------------------------------------------------

    def ensure_current(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once the published interface is guaranteed to
        be at least as recent as the live interface observed *now*.

        The case analysis follows §5.7 of the paper:

        * timer idle, no generation running → already current, call back now;
        * generation running, timer idle → the running generation's result is
          current, call back when it completes;
        * generation running *and* timer running → wait for the running
          generation and one more, call back after the second;
        * timer running, no generation running → the published interface is
          stale; cancel the countdown, generate immediately, call back when
          that generation completes.
        """
        if not self.timer.running and not self._generation_in_progress:
            callback()
            return
        self.stats.stale_call_publications += 1
        self._waiters.append(callback)
        if self._generation_in_progress and self.timer.running:
            self.timer.cancel()
            self._pending_generation = True
            return
        if self._generation_in_progress:
            return
        # Timer running, no generation in progress: force one now.
        self.timer.cancel()
        self._begin_generation()

    # -- generation pipeline ------------------------------------------------------------------------

    def _begin_generation(self) -> None:
        if self._generation_in_progress:
            self._pending_generation = True
            return
        self._generation_in_progress = True
        snapshot = self.current_description()
        self.stats.generations += 1
        self.scheduler.schedule(
            self.generation_cost,
            self._complete_generation,
            snapshot,
            label=f"idl-generation:{self.dynamic_class.name}",
        )

    def _complete_generation(self, snapshot: InterfaceDescription) -> None:
        self._generation_in_progress = False
        forced = self._force_next_publication
        self._force_next_publication = False

        already_published = (
            self.published_description is not None
            and self.published_description.same_signature(snapshot)
        )
        if already_published:
            # "publication is triggered only when the published interface is
            # out of date" — a redundant generation does not bump the version.
            self.stats.redundant_generations += 1
        else:
            self._publish(snapshot, forced=forced)

        if self._pending_generation:
            self._pending_generation = False
            self._begin_generation()
            return
        self._flush_waiters()

    def _publish(self, description: InterfaceDescription, forced: bool) -> None:
        self.version += 1
        versioned = description.with_version(self.version)
        document = self.render(versioned)
        self.interface_server.publish(self.document_path, document, self.content_type)
        self.published_description = versioned
        self.published_document = document
        record = PublicationRecord(
            version=self.version,
            time=self.scheduler.now,
            description=versioned,
            forced=forced,
        )
        self.publication_history.append(record)
        self.stats.publications += 1
        for listener in self.publication_listeners:
            listener(record)

    def _flush_waiters(self) -> None:
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.dynamic_class.name!r}, version={self.version}, "
            f"strategy={self.strategy})"
        )
