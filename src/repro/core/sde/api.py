"""Technology-independent SDE abstractions (the Figure 6 class hierarchy).

"Each technology incorporated into SDE must implement a generator to publish
the server interface, a communication backend that handles incoming requests
and sends reply messages, and an extensible class that will serve as the base
type for dynamic classes using that technology." (Figure 6 caption)

The three roles map to:

* a *gateway class name* — the provided ``SDEServer`` subclass users extend
  (``SOAPServer`` / ``CORBAServer``);
* a :class:`~repro.core.sde.publisher.DLPublisher` factory;
* a :class:`~repro.core.sde.call_handler.CallHandler` factory.

Bundling the three into a :class:`Technology` descriptor keeps the SDE
Manager technology independent and lets tests register additional toy
technologies to exercise the claimed extensibility (§2, §5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sde.call_handler import CallHandler
    from repro.core.sde.manager import ManagedServer, SDEManager
    from repro.core.sde.publisher import DLPublisher

#: Name of the provided gateway class SOAP servers extend (§4).
GATEWAY_SOAP = "SOAPServer"

#: Name of the provided gateway class CORBA servers extend (§4).
GATEWAY_CORBA = "CORBAServer"

#: Name of the common ancestor of all gateway classes (§5.3, ``SDEServer``).
GATEWAY_ROOT = "SDEServer"


PublisherFactory = Callable[["SDEManager", "ManagedServer"], "DLPublisher"]
CallHandlerFactory = Callable[["SDEManager", "ManagedServer"], "CallHandler"]


@dataclass(frozen=True)
class Technology:
    """A pluggable RMI technology (SOAP, CORBA, or a test technology)."""

    name: str
    gateway_class_name: str
    publisher_factory: PublisherFactory
    call_handler_factory: CallHandlerFactory

    def __str__(self) -> str:
        return f"Technology({self.name}, gateway={self.gateway_class_name})"
