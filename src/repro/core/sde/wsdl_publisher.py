"""The WSDL Generator/Publisher for the SOAP subsystem (§5.1).

"The WSDL Generator is in charge of detecting the addition, deletion, and
mutation of server methods within the SOAP Server instance and creating new
WSDL documents as required."  All of the *when* logic lives in
:class:`~repro.core.sde.publisher.DLPublisher`; this subclass supplies the
WSDL rendering and the publication path.
"""

from __future__ import annotations

from repro.core.sde.publisher import DLPublisher
from repro.interface import InterfaceDescription
from repro.soap.wsdl import generate_wsdl


class WsdlPublisher(DLPublisher):
    """Publishes WSDL documents for a managed SOAP server class."""

    def render(self, description: InterfaceDescription) -> str:
        return generate_wsdl(description)

    @property
    def document_path(self) -> str:
        return f"/wsdl/{self.dynamic_class.name}.wsdl"

    @property
    def content_type(self) -> str:
        return "text/xml; charset=utf-8"
