"""Technology-independent RMI call handling (§5.1.3 / §5.2.3 / §5.7).

The SOAP and CORBA call handlers share all of their interesting behaviour:

* before any instance of the gateway subclass exists, every call is answered
  with a "Server not initialized" fault;
* once an instance exists, incoming calls are matched against the *live*
  distributed interface of the dynamic class and invoked on that instance;
* application exceptions are wrapped and returned as faults;
* calls to stale methods (name no longer present, or signature no longer
  matching) trigger the §5.7 protocol: the handler **stalls** the processing
  of incoming messages, asks the SDE Manager to bring the published interface
  up to date, and only then returns the "Non existent Method" fault.

The technology-specific subclasses translate between the wire format and
:meth:`CallHandler.dispatch`, which reports its outcome through the
:class:`DispatchOutcome` callbacks so replies can be deferred while the
publisher catches up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    MalformedRequestError,
    NonExistentMethodError,
    ServerNotInitializedError,
    SignatureError,
)
from repro.interface import OperationSignature
from repro.jpie.dynamic_class import DynamicClass
from repro.jpie.dynamic_instance import DynamicInstance
from repro.obs import hooks as _obs_hooks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sde.manager import ManagedServer, SDEManager


@dataclass
class CallStats:
    """Counters kept by every call handler."""

    calls_received: int = 0
    calls_completed: int = 0
    application_faults: int = 0
    not_initialized_faults: int = 0
    non_existent_method_faults: int = 0
    malformed_requests: int = 0
    stalled_calls: int = 0
    queued_while_stalled: int = 0
    #: Deepest the §5.7 stall queue ever got (multi-client scaling metric).
    max_stall_queue_depth: int = 0


@dataclass
class DispatchOutcome:
    """Callbacks a technology handler provides for one dispatched call."""

    on_result: Callable[[Any, OperationSignature], None]
    on_fault: Callable[[BaseException], None]
    operation: str = ""


class CallHandler:
    """Base class of the SOAP and CORBA call handlers."""

    def __init__(self, manager: "SDEManager", server: "ManagedServer") -> None:
        self.manager = manager
        self.server = server
        self.active_instance: DynamicInstance | None = None
        self.stats = CallStats()
        self._stalled = False
        self._stall_queue: list[Callable[[], None]] = []

    # -- lifecycle (overridden by technology handlers) ----------------------

    @property
    def endpoint_url(self) -> str:
        """The endpoint address advertised in the published interface."""
        raise NotImplementedError

    def start(self) -> None:
        """Bind the communication endpoint."""
        raise NotImplementedError

    def stop(self) -> None:
        """Unbind the communication endpoint."""
        raise NotImplementedError

    # -- activation (§5.1.3, §5.4) ----------------------------------------------

    @property
    def active(self) -> bool:
        """True once an instance of the gateway subclass exists."""
        return self.active_instance is not None

    def activate(self, instance: DynamicInstance) -> None:
        """Attach the (single) live instance calls are invoked upon."""
        self.active_instance = instance

    @property
    def dynamic_class(self) -> DynamicClass:
        """The managed dynamic server class."""
        return self.server.dynamic_class

    # -- the common dispatch logic -------------------------------------------------

    def dispatch(self, operation: str, arguments: tuple[Any, ...], outcome: DispatchOutcome) -> None:
        """Process one incoming call, reporting through ``outcome``.

        While a §5.7 stall is in effect, further calls are queued and
        processed in arrival order once the stall resolves ("stalls the
        processing of incoming messages").
        """
        outcome.operation = operation
        self.stats.calls_received += 1
        if _obs_hooks.ACTIVE is not None:
            _obs_hooks.ACTIVE.server_dispatch(self, operation, outcome)
        if self._stalled:
            self.stats.queued_while_stalled += 1
            self._stall_queue.append(lambda: self._process(operation, arguments, outcome))
            self.stats.max_stall_queue_depth = max(
                self.stats.max_stall_queue_depth, len(self._stall_queue)
            )
            return
        self._process(operation, arguments, outcome)

    def _process(self, operation: str, arguments: tuple[Any, ...], outcome: DispatchOutcome) -> None:
        if self.active_instance is None:
            self.stats.not_initialized_faults += 1
            outcome.on_fault(ServerNotInitializedError("Server not initialized"))
            return

        method = self._match(operation, arguments)
        if method is None:
            self._handle_stale_call(operation, outcome)
            return

        try:
            result = method.invoke(self.active_instance, *arguments)
        except SignatureError:
            # The signature changed between matching and invocation, or the
            # argument types no longer fit: from the client's point of view
            # the method it knew about no longer exists.
            self._handle_stale_call(operation, outcome)
            return
        except Exception as exc:  # noqa: BLE001 - becomes an application fault
            self.stats.application_faults += 1
            outcome.on_fault(exc)
            return
        self.stats.calls_completed += 1
        outcome.on_result(result, method.signature())

    def _match(self, operation: str, arguments: tuple[Any, ...]):
        """Find a distributed method matching the requested call, if any."""
        for method in self.dynamic_class.distributed_methods():
            if method.name != operation:
                continue
            if len(method.parameters) != len(arguments):
                return None
            for value, parameter in zip(arguments, method.parameters):
                try:
                    parameter.param_type.validate(value)
                except Exception:
                    return None
            return method
        return None

    @property
    def stall_queue_depth(self) -> int:
        """Calls currently queued behind a §5.7 stall."""
        return len(self._stall_queue)

    @property
    def stalled(self) -> bool:
        """True while a §5.7 stall is in effect."""
        return self._stalled

    # -- §5.7: stale calls -----------------------------------------------------------

    def _handle_stale_call(self, operation: str, outcome: DispatchOutcome) -> None:
        if not self.manager.config.reactive_publication:
            # Naive "active publishing" behaviour (Figure 7 baseline): reply
            # immediately; the published interface may still be stale.
            self.stats.non_existent_method_faults += 1
            outcome.on_fault(
                NonExistentMethodError(operation, self.server.publisher.version)
            )
            return

        self.stats.stalled_calls += 1
        self._stalled = True

        def after_publication() -> None:
            self.stats.non_existent_method_faults += 1
            version = self.server.publisher.version
            outcome.on_fault(NonExistentMethodError(operation, version))
            self._resume()

        self.manager.ensure_interface_current(self.server, after_publication)

    def _resume(self) -> None:
        self._stalled = False
        queued, self._stall_queue = self._stall_queue, []
        for pending in queued:
            if self._stalled:
                # A queued call hit the stale path again; re-queue the rest.
                self._stall_queue.extend(queued[queued.index(pending) + 1 :])
                break
            pending()

    # -- malformed requests ---------------------------------------------------------------

    def note_malformed_request(self, detail: str) -> MalformedRequestError:
        """Record a malformed incoming request and build the error for it."""
        self.stats.malformed_requests += 1
        return MalformedRequestError(detail)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.dynamic_class.name!r}, "
            f"active={self.active}, received={self.stats.calls_received})"
        )
