"""The SDE Manager (§5.1/§5.2/§5.3).

"The SDE Manager oversees the subsystem initialization and acts as the
central point of communication between the other components."  Concretely it:

* creates the gateway classes (``SDEServer``, ``SOAPServer``, ``CORBAServer``)
  inside the JPie environment and listens for new dynamic classes extending
  them (§5.1.1);
* on detection, automatically deploys the backend components — a DL Publisher
  and a Call Handler — and immediately publishes the minimal interface
  description (automated deployment, §1/§4);
* enforces the single-instance rule (§5.4) and activates the call handler
  when the first instance of a managed class is created;
* relays the §5.7 "bring the published interface up to date" requests from
  call handlers to the corresponding publisher;
* stays technology independent: SOAP and CORBA are two registered
  :class:`~repro.core.sde.api.Technology` plug-ins, and further technologies
  can be registered at run time (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.sde.api import (
    GATEWAY_CORBA,
    GATEWAY_ROOT,
    GATEWAY_SOAP,
    Technology,
)
from repro.core.sde.call_handler import CallHandler
from repro.core.sde.corba_handler import CorbaCallHandler
from repro.core.sde.idl_publisher import IdlPublisher
from repro.core.sde.interface_server import InterfaceServer
from repro.core.sde.publisher import DLPublisher, STRATEGY_STABLE_TIMEOUT
from repro.core.sde.soap_handler import SoapCallHandler
from repro.core.sde.wsdl_publisher import WsdlPublisher
from repro.errors import DeploymentError, TechnologyError
from repro.jpie.dynamic_class import DynamicClass
from repro.jpie.dynamic_instance import DynamicInstance
from repro.jpie.environment import JPieEnvironment
from repro.jpie.listeners import ClassLoadedEvent
from repro.net.latency import CostModel
from repro.net.simnet import Host
from repro.sim.scheduler import Scheduler
from repro.sim.servercore import ServerCore


@dataclass
class SDEConfig:
    """Deployment and publication configuration for an SDE instance."""

    #: Port of the integrated Interface Server (WSDL/IDL/IOR publication).
    interface_port: int = 8080
    #: First HTTP port used for SOAP endpoints (one port per managed class).
    soap_base_port: int = 8070
    #: First IIOP port used for CORBA endpoints (one port per managed class).
    corba_base_port: int = 9000
    #: §5.6 stability timeout (virtual seconds); user-tunable per class.
    publication_timeout: float = 5.0
    #: Simulated cost of one interface generation operation (§5.6: "a
    #: relatively expensive operation").
    generation_cost: float = 0.25
    #: Publication strategy (the paper's mechanism by default; the others
    #: exist for the E4 ablation).
    publication_strategy: str = STRATEGY_STABLE_TIMEOUT
    #: Polling interval when the polling strategy is selected.
    poll_interval: float = 10.0
    #: §5.7 reactive publication: when a stale method is called, stall the
    #: reply until the published interface is current.  Disabling this gives
    #: the naive "active publishing" behaviour of Figure 7, used as the
    #: baseline in the consistency experiments.
    reactive_publication: bool = True
    #: CPU cost model charged by call handlers (None disables cost accounting).
    cost_model: CostModel | None = None
    #: Relative speed of the server machine (1.0 = the calibrated baseline).
    speed_factor: float = 1.0
    #: Number of server CPU cores shared by every managed class's endpoint.
    #: ``None`` keeps the seed behaviour — processing delays charged in
    #: parallel with unlimited implicit concurrency; a bound makes replies
    #: queue under load, so RTT degrades realistically as the fleet grows.
    server_cores: int | None = None
    #: Namespace prefix used for generated interfaces.
    namespace_prefix: str = "urn:sde"


@dataclass
class ManagedServer:
    """Everything SDE created for one dynamic server class."""

    dynamic_class: DynamicClass
    technology: Technology
    publisher: DLPublisher = field(default=None)  # type: ignore[assignment]
    call_handler: CallHandler = field(default=None)  # type: ignore[assignment]
    instance: DynamicInstance | None = None

    @property
    def name(self) -> str:
        """The managed class name."""
        return self.dynamic_class.name


class SDEManager:
    """The central SDE component."""

    def __init__(
        self,
        environment: JPieEnvironment,
        scheduler: Scheduler,
        host: Host,
        config: SDEConfig | None = None,
    ) -> None:
        self.environment = environment
        self.scheduler = scheduler
        self.host = host
        self.config = config if config is not None else SDEConfig()

        #: The server machine's bounded CPU pool, shared by every managed
        #: class's call-handler endpoint (None = unbounded, the seed model).
        self.server_core = (
            ServerCore(scheduler, self.config.server_cores)
            if self.config.server_cores
            else None
        )

        self.interface_server = InterfaceServer(host, self.config.interface_port)
        self.interface_server.start()

        self._technologies: dict[str, Technology] = {}
        self._managed: dict[str, ManagedServer] = {}
        self._next_soap_port = self.config.soap_base_port
        self._next_corba_port = self.config.corba_base_port
        self.deployments = 0

        self._gateway_root = self._ensure_gateway_class(GATEWAY_ROOT, superclass=None)
        self.register_technology(self._soap_technology())
        self.register_technology(self._corba_technology())

        environment.add_class_load_listener(self._on_class_loaded)
        environment.add_instance_listener(self._on_instance_created)

    # -- technology plug-ins (§5.3) -------------------------------------------

    def register_technology(self, technology: Technology) -> None:
        """Register a technology plug-in and create its gateway class."""
        if technology.name in self._technologies:
            raise TechnologyError(f"technology {technology.name!r} is already registered")
        self._technologies[technology.name] = technology
        self._ensure_gateway_class(technology.gateway_class_name, superclass=self._gateway_root)

    @property
    def technologies(self) -> tuple[Technology, ...]:
        """The registered technologies, in registration order."""
        return tuple(self._technologies.values())

    def _ensure_gateway_class(
        self, name: str, superclass: DynamicClass | None
    ) -> DynamicClass:
        try:
            return self.environment.get_class(name)
        except Exception:
            return self.environment.create_class(name, superclass=superclass)

    def gateway_class(self, technology_name: str) -> DynamicClass:
        """The gateway class users extend for ``technology_name``."""
        technology = self._technologies.get(technology_name)
        if technology is None:
            raise TechnologyError(f"unknown technology {technology_name!r}")
        return self.environment.get_class(technology.gateway_class_name)

    @property
    def soap_server_class(self) -> DynamicClass:
        """The provided ``SOAPServer`` gateway class (§4)."""
        return self.environment.get_class(GATEWAY_SOAP)

    @property
    def corba_server_class(self) -> DynamicClass:
        """The provided ``CORBAServer`` gateway class (§4)."""
        return self.environment.get_class(GATEWAY_CORBA)

    def _soap_technology(self) -> Technology:
        def publisher_factory(manager: "SDEManager", server: ManagedServer) -> DLPublisher:
            return WsdlPublisher(
                dynamic_class=server.dynamic_class,
                interface_server=manager.interface_server,
                scheduler=manager.scheduler,
                namespace=f"{manager.config.namespace_prefix}:{server.name}",
                endpoint_url=server.call_handler.endpoint_url,
                timeout=manager.config.publication_timeout,
                generation_cost=manager.config.generation_cost,
                strategy=manager.config.publication_strategy,
                poll_interval=manager.config.poll_interval,
            )

        def handler_factory(manager: "SDEManager", server: ManagedServer) -> CallHandler:
            port = manager._allocate_soap_port()
            return SoapCallHandler(manager, server, port)

        return Technology(
            name="soap",
            gateway_class_name=GATEWAY_SOAP,
            publisher_factory=publisher_factory,
            call_handler_factory=handler_factory,
        )

    def _corba_technology(self) -> Technology:
        def publisher_factory(manager: "SDEManager", server: ManagedServer) -> DLPublisher:
            publisher = IdlPublisher(
                dynamic_class=server.dynamic_class,
                interface_server=manager.interface_server,
                scheduler=manager.scheduler,
                namespace=f"{manager.config.namespace_prefix}:{server.name}",
                endpoint_url=server.call_handler.endpoint_url,
                timeout=manager.config.publication_timeout,
                generation_cost=manager.config.generation_cost,
                strategy=manager.config.publication_strategy,
                poll_interval=manager.config.poll_interval,
            )
            publisher.publish_ior(server.call_handler.ior)  # type: ignore[attr-defined]
            return publisher

        def handler_factory(manager: "SDEManager", server: ManagedServer) -> CallHandler:
            port = manager._allocate_corba_port()
            return CorbaCallHandler(manager, server, port)

        return Technology(
            name="corba",
            gateway_class_name=GATEWAY_CORBA,
            publisher_factory=publisher_factory,
            call_handler_factory=handler_factory,
        )

    def _allocate_soap_port(self) -> int:
        port = self._next_soap_port
        self._next_soap_port += 1
        return port

    def _allocate_corba_port(self) -> int:
        port = self._next_corba_port
        self._next_corba_port += 1
        return port

    # -- automated deployment (§5.1.1/§5.2.1) -------------------------------------

    def _on_class_loaded(self, event: ClassLoadedEvent) -> None:
        dynamic_class = event.dynamic_class
        if dynamic_class is None:
            return
        technology = self._technology_for(dynamic_class)
        if technology is None:
            return
        self.deploy(dynamic_class, technology)

    def _technology_for(self, dynamic_class: DynamicClass) -> Technology | None:
        for technology in self._technologies.values():
            if dynamic_class.name == technology.gateway_class_name:
                return None  # the gateway class itself is not a server
            try:
                gateway = self.environment.get_class(technology.gateway_class_name)
            except Exception:
                continue
            if dynamic_class.is_subclass_of(gateway):
                return technology
        return None

    def deploy(self, dynamic_class: DynamicClass, technology: Technology) -> ManagedServer:
        """Create and start the backend components for ``dynamic_class``.

        This is the automated deployment step: the developer only created the
        class; SDE creates the call handler, the publisher, publishes the
        minimal interface description, and starts listening for changes.
        """
        if dynamic_class.name in self._managed:
            raise DeploymentError(f"class {dynamic_class.name!r} is already managed")

        server = ManagedServer(dynamic_class=dynamic_class, technology=technology)
        server.call_handler = technology.call_handler_factory(self, server)
        server.call_handler.start()
        server.publisher = technology.publisher_factory(self, server)
        server.publisher.start()
        server.publisher.publish_minimal()

        # §5.6: the publisher listens to changes by monitoring the undo/redo stack.
        self.environment.undo_stack.add_listener(server.publisher.on_change_record)

        self._managed[dynamic_class.name] = server
        self.deployments += 1
        return server

    def undeploy(self, class_name: str) -> None:
        """Tear down the backend components for a managed class."""
        server = self._managed.pop(class_name, None)
        if server is None:
            return
        self.environment.undo_stack.remove_listener(server.publisher.on_change_record)
        server.publisher.stop()
        server.call_handler.stop()
        self.interface_server.withdraw(server.publisher.document_path)

    # -- instance management (§5.4) ---------------------------------------------------

    def _on_instance_created(self, dynamic_class: DynamicClass, instance: DynamicInstance) -> None:
        server = self._managed.get(dynamic_class.name)
        if server is None:
            return
        if server.instance is not None:
            raise DeploymentError(
                f"only a single instance of {dynamic_class.name!r} may exist (§5.4); "
                "an instance is already active"
            )
        server.instance = instance
        server.call_handler.activate(instance)

    # -- lookups -------------------------------------------------------------------------

    @property
    def managed_servers(self) -> tuple[ManagedServer, ...]:
        """All currently managed servers, in deployment order."""
        return tuple(self._managed.values())

    def managed_server(self, class_name: str) -> ManagedServer:
        """The managed server for ``class_name``."""
        server = self._managed.get(class_name)
        if server is None:
            raise DeploymentError(f"class {class_name!r} is not managed by SDE")
        return server

    def is_managed(self, class_name: str) -> bool:
        """True if SDE manages a class with this name."""
        return class_name in self._managed

    # -- §5.7 relay ---------------------------------------------------------------------------

    def ensure_interface_current(
        self, server: ManagedServer, callback: Callable[[], None]
    ) -> None:
        """Ask the publisher to bring the published interface up to date,
        then invoke ``callback`` (used by call handlers on stale calls)."""
        server.publisher.ensure_current(callback)

    def __repr__(self) -> str:
        return (
            f"SDEManager(host={self.host.name!r}, managed={list(self._managed)}, "
            f"technologies={list(self._technologies)})"
        )
