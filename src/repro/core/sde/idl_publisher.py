"""The IDL Generator/Publisher for the CORBA subsystem (§5.2).

"The IDL Generator registers itself as a listener to changes in the method
signatures within the CORBA Server and creates a minimal CORBA-IDL document.
The Server ORB is initialized by the CORBA End Point and finally, the IOR is
published via the Interface Server."

Besides the IDL document itself, this publisher also publishes the IOR (the
IOR changes only when the endpoint changes, so it is published once at
deployment time and simply re-served afterwards).
"""

from __future__ import annotations

from repro.core.sde.publisher import DLPublisher
from repro.corba.idl import generate_idl
from repro.corba.ior import IOR
from repro.interface import InterfaceDescription


class IdlPublisher(DLPublisher):
    """Publishes CORBA-IDL documents (and the IOR) for a managed CORBA class."""

    def render(self, description: InterfaceDescription) -> str:
        return generate_idl(description)

    @property
    def document_path(self) -> str:
        return f"/idl/{self.dynamic_class.name}.idl"

    @property
    def ior_path(self) -> str:
        """Path under which the IOR is published."""
        return f"/idl/{self.dynamic_class.name}.ior"

    @property
    def ior_url(self) -> str:
        """Full URL of the published IOR."""
        return self.interface_server.url_for(self.ior_path)

    @property
    def content_type(self) -> str:
        return "text/plain; charset=utf-8"

    def publish_ior(self, ior: IOR) -> str:
        """Publish the stringified IOR via the Interface Server (§5.2.1)."""
        return self.interface_server.publish(
            self.ior_path, ior.stringify(), "text/plain; charset=utf-8"
        )
