"""Dynamic client bindings: CDE's live view of one remote server.

A binding owns the client's current copy of the published interface
description and a transport to the server endpoint.  Invocations are sent
even when the local view might be stale — that is the nature of live
development — and the client half of the §6 consistency algorithm runs when
the server answers with a "Non existent Method" fault:

1. the client view of the server interface is updated to the currently
   published one (which, thanks to the server half in §5.7, is guaranteed to
   be at least as recent as the interface the server used to process the
   call);
2. the exception is handed to the JPie debugger so the developer sees the
   changed signature, with a ``retry`` callback implementing the "try again"
   feature;
3. the exception is raised to the calling code.

Every stale fault produces a :class:`GuaranteeRecord` capturing the version
the server reported and the version the client observed after refreshing;
the Figure 8 experiment checks ``client_version >= server_version`` over all
interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.corba.dii import create_request
from repro.corba.ior import IOR
from repro.corba.orb import ClientOrb, RemoteObjectReference
from repro.errors import (
    CorbaUserException,
    MiddlewareError,
    NonExistentMethodError,
    RemoteApplicationError,
    ServerNotInitializedError,
    StubError,
)
from repro.corba.idl import parse_idl
from repro.interface import InterfaceDescription, InterfaceDiff
from repro.rmitypes import infer_type
from repro.soap.envelope import SoapRequest, SoapResponse
from repro.soap.faults import SoapFault
from repro.soap.wsdl import parse_wsdl

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cde.client_env import ClientDevelopmentEnvironment
    from repro.core.cde.stub_manager import ClientStubManager

TECHNOLOGY_SOAP = "soap"
TECHNOLOGY_CORBA = "corba"


@dataclass(frozen=True)
class GuaranteeRecord:
    """One observation of the §6 recency guarantee."""

    operation: str
    server_version: int
    client_version_after_refresh: int
    interface_diff: InterfaceDiff

    @property
    def satisfied(self) -> bool:
        """True if the client ended up with an interface at least as recent
        as the one the server used to reject the call."""
        return self.client_version_after_refresh >= self.server_version


@dataclass
class BindingStats:
    """Counters kept by a dynamic client binding."""

    invocations: int = 0
    successful_calls: int = 0
    application_faults: int = 0
    stale_faults: int = 0
    not_initialized_faults: int = 0
    refreshes: int = 0
    #: Per-call round-trip times in virtual seconds, in call order.
    rtt_samples: list[float] = field(default_factory=list)

    @property
    def mean_rtt(self) -> float:
        """Mean observed round-trip time (0.0 before the first call)."""
        if not self.rtt_samples:
            return 0.0
        return sum(self.rtt_samples) / len(self.rtt_samples)


class DynamicClientBinding:
    """A live client binding to one SOAP or CORBA server."""

    def __init__(
        self,
        cde: "ClientDevelopmentEnvironment",
        technology: str,
        document_url: str,
        ior_url: str | None = None,
        reactive_updates: bool = True,
    ) -> None:
        if technology not in (TECHNOLOGY_SOAP, TECHNOLOGY_CORBA):
            raise StubError(f"unknown technology {technology!r}")
        if technology == TECHNOLOGY_CORBA and ior_url is None:
            raise StubError("CORBA bindings require an IOR URL")
        self.cde = cde
        self.technology = technology
        self.document_url = document_url
        self.ior_url = ior_url
        #: §6 client-side algorithm: refresh the view and involve the
        #: debugger when a stale fault arrives.  Disabling this gives the
        #: naive client of the Figure 7 baseline.
        self.reactive_updates = reactive_updates
        self.description: InterfaceDescription | None = None
        self.stats = BindingStats()
        self.guarantee_records: list[GuaranteeRecord] = []
        self.stub_manager: "ClientStubManager | None" = None

        self._client_orb: ClientOrb | None = None
        self._remote_object: RemoteObjectReference | None = None
        if technology == TECHNOLOGY_CORBA:
            self._client_orb = ClientOrb(
                cde.host, cost_model=cde.cost_model, speed_factor=cde.speed_factor
            )
        self.refresh()

    # -- the client view of the interface -------------------------------------

    @property
    def interface_version(self) -> int:
        """The publication version of the client's current view."""
        return self.description.version if self.description is not None else -1

    @property
    def service_name(self) -> str:
        """The remote service name."""
        return self.description.service_name if self.description is not None else ""

    def refresh(self) -> InterfaceDiff:
        """Re-fetch the published interface description and update the view.

        Returns the difference between the previous and the new view so
        callers (and the debugger display) can show what changed.
        """
        previous = self.description
        document = self._fetch(self.document_url)
        if self.technology == TECHNOLOGY_SOAP:
            new_description = parse_wsdl(document)
        else:
            new_description = parse_idl(document)
            ior_text = self._fetch(self.ior_url or "")
            self._remote_object = self._client_orb.string_to_object(ior_text)  # type: ignore[union-attr]
        self.description = new_description
        self.stats.refreshes += 1
        if self.stub_manager is not None:
            self.stub_manager.update_from(new_description)
        if previous is None:
            return InterfaceDiff()
        return previous.diff(new_description)

    def _fetch(self, url: str) -> str:
        response = self.cde.http_client.get(url)
        if not response.ok:
            raise StubError(f"could not retrieve {url}: HTTP {response.status}")
        return response.body

    # -- invocation --------------------------------------------------------------

    def invoke(self, operation: str, *arguments: Any) -> Any:
        """Invoke ``operation`` on the remote server.

        The call is attempted even if ``operation`` is not (or no longer)
        part of the client's current view — the server decides.
        """
        self.stats.invocations += 1
        started = self._scheduler.now
        try:
            if self.technology == TECHNOLOGY_SOAP:
                return self._invoke_soap(operation, arguments)
            return self._invoke_corba(operation, arguments)
        finally:
            self.stats.rtt_samples.append(self._scheduler.now - started)

    @property
    def _scheduler(self):
        return self.cde.host.network.scheduler

    # -- SOAP path ------------------------------------------------------------------

    def _invoke_soap(self, operation: str, arguments: tuple[Any, ...]) -> Any:
        assert self.description is not None
        signature = self.description.operation(operation)
        registry = self.description.type_registry()
        if signature is not None and signature.arity == len(arguments):
            request = SoapRequest(
                operation=operation,
                arguments=arguments,
                argument_types=signature.parameter_types(),
                namespace=self.description.namespace,
            )
        else:
            request = SoapRequest.for_call(
                operation, arguments, namespace=self.description.namespace, registry=registry
            )
        response = self._soap_transport(request)
        if response.is_fault:
            self._raise_for_fault(operation, arguments, response.fault)
        self.stats.successful_calls += 1
        return response.return_value

    def _soap_transport(self, request: SoapRequest) -> SoapResponse:
        assert self.description is not None
        request_xml, request_wire = request.to_xml_and_wire()
        self.cde.charge_text_cost(len(request_xml))
        http_response = self.cde.http_client.post(
            self.description.endpoint_url,
            request_xml,
            headers={"Content-Type": "text/xml; charset=utf-8"},
            body_wire=request_wire,
        )
        if not http_response.ok:
            raise MiddlewareError(
                f"SOAP endpoint returned HTTP {http_response.status}: {http_response.body}"
            )
        self.cde.charge_text_cost(len(http_response.body))
        return SoapResponse.from_xml(http_response.body, self.description.type_registry())

    def _raise_for_fault(self, operation: str, arguments: tuple[Any, ...], fault: SoapFault) -> None:
        if fault.is_non_existent_method:
            self._handle_stale_fault(operation, arguments, fault.detail)
        if fault.is_server_not_initialized:
            self.stats.not_initialized_faults += 1
            raise ServerNotInitializedError(fault.fault_string)
        self.stats.application_faults += 1
        raise RemoteApplicationError(str(fault))

    # -- CORBA path --------------------------------------------------------------------

    def _invoke_corba(self, operation: str, arguments: tuple[Any, ...]) -> Any:
        if self._remote_object is None:
            raise StubError("CORBA binding has no remote object reference")
        try:
            result = create_request(self._remote_object, operation, *arguments).invoke()
        except CorbaUserException as exc:
            self._raise_for_corba_exception(operation, arguments, exc)
            raise  # unreachable; _raise_for_corba_exception always raises
        self.stats.successful_calls += 1
        return result

    def _raise_for_corba_exception(
        self, operation: str, arguments: tuple[Any, ...], exc: CorbaUserException
    ) -> None:
        from repro.core.sde.corba_handler import (
            EXC_APPLICATION,
            EXC_NON_EXISTENT_METHOD,
            EXC_SERVER_NOT_INITIALIZED,
        )

        if exc.type_name == EXC_NON_EXISTENT_METHOD:
            self._handle_stale_fault(operation, arguments, exc.message)
        if exc.type_name == EXC_SERVER_NOT_INITIALIZED:
            self.stats.not_initialized_faults += 1
            raise ServerNotInitializedError(exc.message)
        if exc.type_name == EXC_APPLICATION:
            self.stats.application_faults += 1
            raise RemoteApplicationError(exc.message)
        self.stats.application_faults += 1
        raise RemoteApplicationError(f"{exc.type_name}: {exc.message}")

    # -- the §6 client-side algorithm -----------------------------------------------------

    def _handle_stale_fault(self, operation: str, arguments: tuple[Any, ...], detail: str) -> None:
        self.stats.stale_faults += 1
        server_version = _parse_published_version(detail)
        if not self.reactive_updates:
            # Naive client (Figure 7 baseline): no automatic view update.
            raise NonExistentMethodError(operation, server_version)
        diff = self.refresh()
        record = GuaranteeRecord(
            operation=operation,
            server_version=server_version,
            client_version_after_refresh=self.interface_version,
            interface_diff=diff,
        )
        self.guarantee_records.append(record)

        error = NonExistentMethodError(operation, server_version)
        self.cde.debugger.report(
            source=f"{self.technology}:{self.service_name}",
            exception=error,
            description=(
                f"call to stale method {operation!r}; interface changes: {diff}"
            ),
            retry=lambda: self.invoke(operation, *arguments),
            context={
                "operation": operation,
                "server_version": server_version,
                "client_version": self.interface_version,
                "diff": str(diff),
            },
        )
        raise error

    def __repr__(self) -> str:
        return (
            f"DynamicClientBinding({self.technology}:{self.service_name}, "
            f"version={self.interface_version})"
        )


def _parse_published_version(detail: str) -> int:
    """Extract the ``publishedVersion=N`` hint carried in stale-call faults."""
    marker = "publishedVersion="
    if marker not in detail:
        return -1
    fragment = detail.split(marker, 1)[1]
    digits = ""
    for character in fragment:
        if character.isdigit():
            digits += character
        else:
            break
    return int(digits) if digits else -1
