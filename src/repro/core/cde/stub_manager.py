"""Client-side stub management.

"In CDE, we extend the live development model introduced by JPie to automate
addition, mutation, and deletion of dynamic server methods within dynamic
clients" (§2.3).  The :class:`ClientStubManager` keeps a dynamic class in the
client's JPie environment whose methods mirror the server interface; every
refresh of the binding updates that class in place, so client code written
against the stub class always sees the current server interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.interface import InterfaceDescription, OperationSignature
from repro.jpie.dynamic_class import DynamicClass
from repro.jpie.environment import JPieEnvironment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cde.binding import DynamicClientBinding


class ClientStubManager:
    """Maintains a dynamic stub class mirroring one server interface."""

    def __init__(
        self,
        binding: "DynamicClientBinding",
        environment: JPieEnvironment,
        class_name: str | None = None,
    ) -> None:
        self.binding = binding
        self.environment = environment
        self.class_name = class_name or f"{binding.service_name}Stub"
        self.stub_class: DynamicClass = environment.create_class(self.class_name)
        self.updates_applied = 0
        binding.stub_manager = self
        if binding.description is not None:
            self.update_from(binding.description)

    # -- stub maintenance ------------------------------------------------------

    def update_from(self, description: InterfaceDescription) -> None:
        """Reconcile the stub class with ``description``.

        Methods are added, removed or re-signatured in place; existing stub
        instances keep working because dynamic instances always dispatch
        through the current class definition.
        """
        wanted = {operation.name: operation for operation in description.operations}
        existing = {method.name: method for method in self.stub_class.methods}

        for name in list(existing):
            if name not in wanted:
                self.stub_class.remove_method(name)

        for name, operation in wanted.items():
            if name in existing:
                method = existing[name]
                if method.signature() != operation:
                    method.set_parameters(operation.parameters)
                    method.set_return_type(operation.return_type)
                method.set_body(self._body_for(operation))
            else:
                self.stub_class.add_method(
                    name,
                    operation.parameters,
                    operation.return_type,
                    body=self._body_for(operation),
                    distributed=False,
                )
        self.updates_applied += 1

    def _body_for(self, operation: OperationSignature):
        binding = self.binding

        def stub_body(_instance: Any, *arguments: Any) -> Any:
            return binding.invoke(operation.name, *arguments)

        stub_body.__doc__ = f"Client stub for remote operation {operation.describe()}"
        return stub_body

    # -- convenience -----------------------------------------------------------------

    def new_stub_instance(self):
        """Create a live stub instance whose methods call the remote server."""
        return self.stub_class.new_instance()

    @property
    def operation_names(self) -> tuple[str, ...]:
        """The operations currently exposed by the stub class."""
        return tuple(method.name for method in self.stub_class.methods)

    def __repr__(self) -> str:
        return (
            f"ClientStubManager({self.class_name!r}, operations={list(self.operation_names)})"
        )
