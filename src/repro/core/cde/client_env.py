"""The Client Development Environment facade.

CDE "simplifies distributed application development by masking technical
differences between local and remote method invocations" (§2.3): the
developer asks for a connection to a SOAP or CORBA server and receives a
:class:`~repro.core.cde.binding.DynamicClientBinding` plus, optionally, a
dynamic stub class managed by
:class:`~repro.core.cde.stub_manager.ClientStubManager`.
"""

from __future__ import annotations

from repro.core.cde.binding import (
    DynamicClientBinding,
    TECHNOLOGY_CORBA,
    TECHNOLOGY_SOAP,
)
from repro.core.cde.stub_manager import ClientStubManager
from repro.jpie.debugger import JPieDebugger
from repro.jpie.environment import JPieEnvironment
from repro.net.http import HttpClient
from repro.net.latency import CostModel
from repro.net.simnet import Host


class ClientDevelopmentEnvironment:
    """A running CDE session on the client machine."""

    def __init__(
        self,
        host: Host,
        environment: JPieEnvironment | None = None,
        cost_model: CostModel | None = None,
        speed_factor: float = 1.0,
    ) -> None:
        self.host = host
        self.jpie = environment if environment is not None else JPieEnvironment("cde")
        self.cost_model = cost_model
        self.speed_factor = speed_factor
        self.http_client = HttpClient(host, name="cde-http")
        self.bindings: list[DynamicClientBinding] = []

    @property
    def debugger(self) -> JPieDebugger:
        """The client-side JPie debugger (§6, Figure 9)."""
        return self.jpie.debugger

    # -- connections ------------------------------------------------------------

    def connect_soap(self, wsdl_url: str, reactive_updates: bool = True) -> DynamicClientBinding:
        """Bind to a SOAP server via its published WSDL document."""
        binding = DynamicClientBinding(
            self, TECHNOLOGY_SOAP, wsdl_url, reactive_updates=reactive_updates
        )
        self.bindings.append(binding)
        return binding

    def connect_corba(
        self, idl_url: str, ior_url: str, reactive_updates: bool = True
    ) -> DynamicClientBinding:
        """Bind to a CORBA server via its published IDL document and IOR."""
        binding = DynamicClientBinding(
            self,
            TECHNOLOGY_CORBA,
            idl_url,
            ior_url=ior_url,
            reactive_updates=reactive_updates,
        )
        self.bindings.append(binding)
        return binding

    def create_stub_class(
        self, binding: DynamicClientBinding, class_name: str | None = None
    ) -> ClientStubManager:
        """Create a client-side dynamic stub class mirroring the binding."""
        return ClientStubManager(binding, self.jpie, class_name)

    # -- cost accounting ----------------------------------------------------------

    def charge_text_cost(self, size_bytes: int) -> None:
        """Advance the virtual clock by the client-side cost of handling a
        textual message of ``size_bytes`` bytes."""
        if self.cost_model is None:
            return
        cost = self.cost_model.text_processing(size_bytes) * self.speed_factor
        if cost <= 0:
            return
        scheduler = self.host.network.scheduler
        done: list[bool] = []
        scheduler.schedule(cost, lambda: done.append(True), label="cde client processing")
        scheduler.run_until(lambda: bool(done), description="CDE client processing")

    def __repr__(self) -> str:
        return f"ClientDevelopmentEnvironment(host={self.host.name!r}, bindings={len(self.bindings)})"
