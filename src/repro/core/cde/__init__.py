"""Client Development Environment (CDE).

"CDE supports the live construction of SOAP and CORBA clients ... we extend
the live development model introduced by JPie to automate addition, mutation,
and deletion of dynamic server methods within dynamic clients" (§2.3).

* :mod:`repro.core.cde.binding` — a live client-side binding to one remote
  server: it tracks the published interface description, performs RMI calls
  even when the local view may be stale, and implements the client half of
  the §6 consistency algorithm (refresh on "Non existent Method", report to
  the JPie debugger, support "try again");
* :mod:`repro.core.cde.stub_manager` — maintains a client-side dynamic class
  whose methods mirror the server interface;
* :mod:`repro.core.cde.client_env` — the CDE facade that connects to SOAP and
  CORBA servers.
"""

from repro.core.cde.binding import DynamicClientBinding, GuaranteeRecord
from repro.core.cde.stub_manager import ClientStubManager
from repro.core.cde.client_env import ClientDevelopmentEnvironment

__all__ = [
    "DynamicClientBinding",
    "GuaranteeRecord",
    "ClientStubManager",
    "ClientDevelopmentEnvironment",
]
