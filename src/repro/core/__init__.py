"""The paper's primary contribution: the SDE and CDE middleware.

* :mod:`repro.core.sde` — the Server Development Environment: automated
  deployment, automated interface publication with stable-change detection,
  and reactive publication on stale calls (§4, §5).
* :mod:`repro.core.cde` — the Client Development Environment: dynamic client
  bindings whose view of the server interface is updated live (§2.3, §6).
* :mod:`repro.core.protocol` — the joint SDE/CDE consistency algorithm and
  the interleaving analyses behind Figures 7 and 8 (§6).
"""

from repro.core.sde.manager import SDEManager, SDEConfig
from repro.core.sde.manager_interface import SDEManagerInterface
from repro.core.cde.client_env import ClientDevelopmentEnvironment

__all__ = [
    "SDEManager",
    "SDEConfig",
    "SDEManagerInterface",
    "ClientDevelopmentEnvironment",
]
