"""Interleaving analyses for Figures 7 and 8.

Figure 7 (*active publishing*) is an argument about event orderings: the
server-interface update path and the RMI call path are completely
independent, so the points at which the server publishes (1, 2, 3) and the
client updates its stub (i, ii, iii) interleave freely with the call.  The
:class:`ActivePublishingExperiment` reproduces that argument with an explicit
event-order model over real :class:`~repro.interface.InterfaceDescription`
values and classifies each of the nine combinations; only (1, i), (1, ii) and
(2, ii) make the interface change visible to the developer at error-display
time.

Figure 8 (*reactive publishing*) is a claim about the deployed algorithm, so
:class:`ReactivePublishingExperiment` runs the real middleware end to end on
the simulated network: an SDE-managed server whose method is renamed mid-
session, a CDE client that calls the stale method, and a sweep over the
timing of the *regular* publication and the *regular* client update relative
to that call.  For every combination the §6 recency guarantee must hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.sde import SDEConfig
from repro.errors import NonExistentMethodError
from repro.interface import InterfaceDescription, OperationSignature, Parameter
from repro.rmitypes import INT
from repro.testbed import LiveDevelopmentTestbed, OperationSpec

# ---------------------------------------------------------------------------
# Figure 7 — active publishing
# ---------------------------------------------------------------------------

#: Global event order used by the active-publishing analysis.  It mirrors the
#: vertical layout of Figure 7: the client sends a call for a method whose
#: signature has just changed on the server; publication may occur at three
#: points of the server timeline and the client stub update at three points
#: of the client timeline.
FIGURE7_EVENT_ORDER: tuple[str, ...] = (
    "client:send_call",
    "server:interface_changes",
    "server:publish_1",
    "client:update_i",
    "server:process_call",
    "server:publish_2",
    "server:send_exception",
    "client:receive_exception",
    "client:update_ii",
    "client:display_error",
    "server:publish_3",
    "client:update_iii",
)

PUBLISH_POINTS = ("1", "2", "3")
UPDATE_POINTS = ("i", "ii", "iii")


@dataclass(frozen=True)
class InterleavingResult:
    """Outcome of one publish-point / update-point combination."""

    publish_point: str
    update_point: str
    consistent: bool
    detail: str = ""

    @property
    def label(self) -> str:
        """The combination label, e.g. ``"(1, ii)"``."""
        return f"({self.publish_point}, {self.update_point})"


class ActivePublishingExperiment:
    """The Figure 7 analysis: naive, unsynchronised publication."""

    def __init__(
        self,
        old_interface: InterfaceDescription | None = None,
        new_interface: InterfaceDescription | None = None,
    ) -> None:
        if old_interface is None or new_interface is None:
            old_interface, new_interface = _default_interface_pair()
        self.old_interface = old_interface
        self.new_interface = new_interface

    # -- the ordering model ----------------------------------------------------

    @staticmethod
    def _position(event: str) -> int:
        return FIGURE7_EVENT_ORDER.index(event)

    def run_single(self, publish_point: str, update_point: str) -> InterleavingResult:
        """Classify one combination of publish point and update point."""
        if publish_point not in PUBLISH_POINTS or update_point not in UPDATE_POINTS:
            raise ValueError(f"unknown combination ({publish_point}, {update_point})")

        publish_event = f"server:publish_{publish_point}"
        update_event = f"client:update_{update_point}"
        display_event = "client:display_error"

        publish_position = self._position(publish_event)
        update_position = self._position(update_event)
        display_position = self._position(display_event)

        # The stub update retrieves whatever interface description has been
        # published at the moment it runs.
        view_after_update = (
            self.new_interface if publish_position < update_position else self.old_interface
        )
        # The developer inspects the error at display time; an update that
        # has not happened yet cannot help.
        update_effective = update_position < display_position
        view_at_display = view_after_update if update_effective else self.old_interface

        consistent = view_at_display.same_signature(self.new_interface)
        if consistent:
            detail = "interface change visible when the error is displayed"
        elif not update_effective:
            detail = "client stub update happens only after the error is displayed"
        else:
            detail = "stub update retrieved the stale interface (publication came later)"
        return InterleavingResult(publish_point, update_point, consistent, detail)

    def run_matrix(self) -> list[InterleavingResult]:
        """Classify all nine combinations."""
        return [
            self.run_single(publish_point, update_point)
            for publish_point in PUBLISH_POINTS
            for update_point in UPDATE_POINTS
        ]

    @staticmethod
    def expected_consistent_labels() -> set[str]:
        """The combinations the paper reports as consistent."""
        return {"(1, i)", "(1, ii)", "(2, ii)"}


def _default_interface_pair() -> tuple[InterfaceDescription, InterfaceDescription]:
    """The before/after interfaces used by the default Figure 7 analysis:
    the distributed method ``add(int, int)`` is renamed to ``sum(int, int)``."""
    add = OperationSignature("add", (Parameter("a", INT), Parameter("b", INT)), INT)
    total = OperationSignature("sum", (Parameter("a", INT), Parameter("b", INT)), INT)
    base = InterfaceDescription(
        service_name="Calculator",
        namespace="urn:sde:Calculator",
        endpoint_url="http://server:8070/sde/Calculator",
    )
    return base.with_operations((add,)).with_version(1), base.with_operations((total,)).with_version(2)


# ---------------------------------------------------------------------------
# Figure 8 — reactive publishing (the deployed algorithm, end to end)
# ---------------------------------------------------------------------------

#: Server-side timings of the *regular* (timer-driven) publication relative
#: to the stale call, corresponding to positions 1-4 of Figure 8.
FIGURE8_PUBLICATION_TIMINGS: dict[str, float | None] = {
    "1": 0.0,     # regular publication completes before the call is issued
    "2": 0.4,     # regular publication racing with the call
    "3": 2.0,     # regular publication long after the call
    "4": None,    # no regular publication at all (only the reactive one)
}

#: Client-side timings of the *regular* (developer-triggered) view update
#: relative to the stale call, corresponding to positions i-iv of Figure 8.
FIGURE8_UPDATE_TIMINGS: dict[str, float | None] = {
    "i": 0.0,     # client refreshes just before making the call
    "ii": 0.4,    # client refresh racing with the call
    "iii": 2.0,   # client refreshes well after the call
    "iv": None,   # no regular refresh at all (only the reactive one)
}


@dataclass
class ReactiveRunRecord:
    """Everything observed in one Figure 8 run."""

    publish_point: str
    update_point: str
    guarantee_satisfied: bool
    server_version_in_fault: int
    client_version_after_call: int
    change_visible_to_developer: bool
    publications: int

    def to_result(self) -> InterleavingResult:
        """Summarise as an :class:`InterleavingResult`."""
        consistent = self.guarantee_satisfied and self.change_visible_to_developer
        detail = (
            f"server fault referenced version {self.server_version_in_fault}, "
            f"client refreshed to version {self.client_version_after_call}"
        )
        return InterleavingResult(self.publish_point, self.update_point, consistent, detail)


class ReactivePublishingExperiment:
    """The Figure 8 experiment: the real middleware, every interleaving."""

    def __init__(
        self,
        technology: str = "soap",
        publication_timeout: float = 1.0,
        generation_cost: float = 0.1,
    ) -> None:
        self.technology = technology
        self.publication_timeout = publication_timeout
        self.generation_cost = generation_cost

    def run_single(self, publish_point: str, update_point: str) -> ReactiveRunRecord:
        """Run one interleaving end to end and report what the client saw."""
        publish_delay = FIGURE8_PUBLICATION_TIMINGS[publish_point]
        update_delay = FIGURE8_UPDATE_TIMINGS[update_point]

        testbed = LiveDevelopmentTestbed(
            sde_config=SDEConfig(
                publication_timeout=self.publication_timeout,
                generation_cost=self.generation_cost,
            )
        )
        operations = [
            OperationSpec("add", (("a", INT), ("b", INT)), INT, body=lambda self, a, b: a + b)
        ]
        if self.technology == "soap":
            calculator, _instance = testbed.create_soap_server("Calculator", operations)
            testbed.publish_now("Calculator")
            binding = testbed.connect_soap_client("Calculator")
        else:
            calculator, _instance = testbed.create_corba_server("Calculator", operations)
            testbed.publish_now("Calculator")
            binding = testbed.connect_corba_client("Calculator")

        # The live change: the developer renames add -> sum while the client
        # still believes the interface contains add.
        method = calculator.method("add")
        method.rename("sum")

        scheduler = testbed.scheduler
        base = scheduler.now

        if publish_delay is not None:
            scheduler.schedule(
                publish_delay + 0.001,
                lambda: testbed.manager_interface.force_publication("Calculator"),
                label=f"regular publication ({publish_point})",
            )
        if update_delay is not None:
            scheduler.schedule(
                update_delay + 0.002,
                binding.refresh,
                label=f"regular client update ({update_point})",
            )

        outcome: dict[str, object] = {}

        def make_stale_call() -> None:
            try:
                binding.invoke("add", 2, 3)
                outcome["exception"] = None
            except NonExistentMethodError as exc:
                outcome["exception"] = exc

        scheduler.schedule(0.2, make_stale_call, label="client stale call")
        scheduler.run_until_idle()

        record = binding.guarantee_records[-1] if binding.guarantee_records else None
        server_version = record.server_version if record else -1
        satisfied = record.satisfied if record else False
        change_visible = binding.description.has_operation("sum") and not binding.description.has_operation("add")

        return ReactiveRunRecord(
            publish_point=publish_point,
            update_point=update_point,
            guarantee_satisfied=satisfied,
            server_version_in_fault=server_version,
            client_version_after_call=binding.interface_version,
            change_visible_to_developer=change_visible,
            publications=testbed.sde.managed_server("Calculator").publisher.stats.publications,
        )

    def run_matrix(self) -> list[ReactiveRunRecord]:
        """Run all 16 interleavings."""
        return [
            self.run_single(publish_point, update_point)
            for publish_point in FIGURE8_PUBLICATION_TIMINGS
            for update_point in FIGURE8_UPDATE_TIMINGS
        ]


# ---------------------------------------------------------------------------
# Convenience entry points used by the benchmarks and EXPERIMENTS.md
# ---------------------------------------------------------------------------


def run_figure7_matrix() -> list[InterleavingResult]:
    """Reproduce the Figure 7 classification (3 of 9 combinations consistent)."""
    return ActivePublishingExperiment().run_matrix()


def run_figure8_matrix(technology: str = "soap") -> list[InterleavingResult]:
    """Reproduce the Figure 8 claim (all combinations satisfy the guarantee)."""
    experiment = ReactivePublishingExperiment(technology=technology)
    return [record.to_result() for record in experiment.run_matrix()]
