"""The joint SDE/CDE consistency protocol and its interleaving analyses.

Section 6 of the paper identifies a race between the RMI call path and the
server-interface update path and proposes a distributed algorithm (reactive
publication on the server, reactive update on the client) that guarantees:

    "the method signature observable at the client upon return from an RMI
    call is always consistent with a published server interface that is at
    least as recent as the interface used by the server to process the call."

This package reproduces the two figures that frame the argument:

* Figure 7 (*active publishing*): with independent publication and update
  paths, only 3 of the 9 publish-point x update-point combinations make the
  interface change visible to the client developer at error-display time;
* Figure 8 (*reactive publishing*): with the §5.7 + §6 algorithm, every
  combination satisfies the recency guarantee.
"""

from repro.core.protocol.interleaving import (
    ActivePublishingExperiment,
    InterleavingResult,
    ReactivePublishingExperiment,
    run_figure7_matrix,
    run_figure8_matrix,
)

__all__ = [
    "ActivePublishingExperiment",
    "ReactivePublishingExperiment",
    "InterleavingResult",
    "run_figure7_matrix",
    "run_figure8_matrix",
]
