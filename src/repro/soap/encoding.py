"""Encoding of RMI values to and from SOAP/XSD XML.

The WSDL standard "supports direct encoding of a small subset of Java object
types and permits the encoding of complex data structures using XML" (§2.1).
This module maps the shared RMI type model (:mod:`repro.rmitypes`) onto XML
Schema types and encodes/decodes Python values accordingly:

========================  =======================
RMI type                  XSD type
========================  =======================
``int``                   ``xsd:int``
``double``                ``xsd:double``
``float``                 ``xsd:float``
``boolean``               ``xsd:boolean``
``string``                ``xsd:string``
``char``                  ``xsd:string`` (length 1)
``T[]``                   ``soapenc:Array``
struct ``S``              ``tns:S`` complex type
========================  =======================
"""

from __future__ import annotations

from typing import Any

from repro.errors import SoapEncodingError
from repro.rmitypes import (
    ArrayType,
    PrimitiveType,
    RmiType,
    StructType,
    TypeRegistry,
    VOID,
)
from repro.xmlutil import Namespaces, QName, XmlElement

_XSD_BY_PRIMITIVE = {
    "int": "int",
    "double": "double",
    "float": "float",
    "boolean": "boolean",
    "string": "string",
    "char": "string",
    "void": "anyType",
}


def xsd_qname(rmi_type: RmiType, target_namespace: str) -> QName:
    """Return the XSD (or target-namespace) QName describing ``rmi_type``."""
    if isinstance(rmi_type, PrimitiveType):
        return QName(Namespaces.XSD, _XSD_BY_PRIMITIVE[rmi_type.name])
    if isinstance(rmi_type, ArrayType):
        return QName(Namespaces.SOAP_ENCODING, "Array")
    if isinstance(rmi_type, StructType):
        return QName(target_namespace, rmi_type.name)
    raise SoapEncodingError(f"cannot map {rmi_type!r} to an XSD type")


def type_label(rmi_type: RmiType) -> str:
    """A compact textual label stored in ``xsi:type``-style attributes."""
    return rmi_type.type_name


def encode_value(
    name: str,
    value: Any,
    rmi_type: RmiType,
    registry: TypeRegistry | None = None,
) -> XmlElement:
    """Encode ``value`` of ``rmi_type`` into an element named ``name``."""
    rmi_type.validate(value, registry)
    element = XmlElement(QName.plain(name))
    element.set_attribute("type", type_label(rmi_type))
    _encode_into(element, value, rmi_type, registry)
    return element


def _encode_into(
    element: XmlElement,
    value: Any,
    rmi_type: RmiType,
    registry: TypeRegistry | None,
) -> None:
    if isinstance(rmi_type, PrimitiveType):
        element.text = _encode_primitive(value, rmi_type)
        return
    if isinstance(rmi_type, ArrayType):
        for index, item in enumerate(value):
            child = element.add(f"item", {"index": str(index)})
            child.set_attribute("type", type_label(rmi_type.element_type))
            _encode_into(child, item, rmi_type.element_type, registry)
        return
    if isinstance(rmi_type, StructType):
        for field_def in rmi_type.fields:
            child = element.add(field_def.name)
            child.set_attribute("type", type_label(field_def.field_type))
            _encode_into(child, value[field_def.name], field_def.field_type, registry)
        return
    raise SoapEncodingError(f"cannot encode value of type {rmi_type!r}")


def _encode_primitive(value: Any, rmi_type: PrimitiveType) -> str:
    if rmi_type.name == "void":
        return ""
    if rmi_type.name == "boolean":
        return "true" if value else "false"
    return str(value)


def decode_value(
    element: XmlElement,
    rmi_type: RmiType,
    registry: TypeRegistry | None = None,
) -> Any:
    """Decode the value carried by ``element`` according to ``rmi_type``."""
    if isinstance(rmi_type, PrimitiveType):
        return _decode_primitive(element.text or "", rmi_type)
    if isinstance(rmi_type, ArrayType):
        items = []
        for child in element.children:
            items.append(decode_value(child, rmi_type.element_type, registry))
        return items
    if isinstance(rmi_type, StructType):
        result: dict[str, Any] = {}
        for field_def in rmi_type.fields:
            child = element.find(field_def.name)
            if child is None:
                raise SoapEncodingError(
                    f"struct {rmi_type.name!r} is missing field {field_def.name!r}"
                )
            result[field_def.name] = decode_value(child, field_def.field_type, registry)
        return result
    raise SoapEncodingError(f"cannot decode value of type {rmi_type!r}")


def _decode_primitive(text: str, rmi_type: PrimitiveType) -> Any:
    try:
        if rmi_type.name == "void":
            return None
        if rmi_type.name == "int":
            return int(text)
        if rmi_type.name in ("double", "float"):
            return float(text)
        if rmi_type.name == "boolean":
            if text not in ("true", "false", "1", "0"):
                raise ValueError(text)
            return text in ("true", "1")
        if rmi_type.name == "char":
            if len(text) != 1:
                raise ValueError(text)
            return text
        return text
    except ValueError as exc:
        raise SoapEncodingError(
            f"cannot decode {text!r} as {rmi_type.name}: {exc}"
        ) from None


def decode_dynamic(element: XmlElement, registry: TypeRegistry | None = None) -> Any:
    """Decode an element using its embedded ``type`` attribute.

    This is the path the SDE SOAP Call Handler uses for incoming requests:
    the server does not trust the client's view of the interface, so it
    decodes what actually arrived and then matches it against the live
    interface (§5.1.3).
    """
    from repro.rmitypes import parse_type  # local import avoids cycle at import time

    label = element.attribute("type")
    if label is None:
        raise SoapEncodingError(f"element {element.name} carries no type attribute")
    rmi_type = parse_type(label, registry)
    return decode_value(element, rmi_type, registry)
