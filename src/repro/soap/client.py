"""Static SOAP client — the "Axis client" of Figure 1 and Table 1.

The client follows the three-step interaction of Figure 1: it retrieves the
WSDL document over HTTP, compiles it into method stubs, and then issues SOAP
Requests against the endpoint address found in the document.  Client-side CPU
cost (request encoding, response decoding) is charged to the virtual clock —
in the paper's testbed the client is the slower machine (a 1 GHz PowerBook),
which the benchmark models with a ``speed_factor`` greater than one.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SoapError
from repro.interface import InterfaceDescription
from repro.net.http import HttpClient
from repro.net.latency import CostModel
from repro.net.simnet import Host
from repro.soap.envelope import SoapRequest, SoapResponse
from repro.soap.wsdl import parse_wsdl
from repro.soap.wsdl.compiler import CompiledStub, unwrap_response


class SoapClient:
    """A SOAP client attached to a simulated host."""

    def __init__(
        self,
        host: Host,
        cost_model: CostModel | None = None,
        speed_factor: float = 1.0,
    ) -> None:
        self.host = host
        self.cost_model = cost_model
        self.speed_factor = speed_factor
        self.http_client = HttpClient(host, name="soap-client")
        self.description: InterfaceDescription | None = None
        self.stub: CompiledStub | None = None
        self.calls_made = 0

    # -- WSDL retrieval and stub compilation (Figure 1, step 1) -------------

    def fetch_wsdl(self, wsdl_url: str) -> str:
        """Retrieve the WSDL document text from ``wsdl_url``."""
        response = self.http_client.get(wsdl_url)
        if not response.ok:
            raise SoapError(
                f"could not retrieve WSDL from {wsdl_url}: HTTP {response.status}"
            )
        return response.body

    def connect(self, wsdl_url: str) -> CompiledStub:
        """Fetch + parse the WSDL and compile client stubs for the service."""
        document = self.fetch_wsdl(wsdl_url)
        self.description = parse_wsdl(document)
        if not self.description.endpoint_url:
            raise SoapError("WSDL document does not declare a soap:address location")
        self.stub = CompiledStub(self.description, self._transport)
        return self.stub

    def refresh(self, wsdl_url: str) -> CompiledStub:
        """Re-fetch the WSDL and rebuild the stubs (used after live changes)."""
        return self.connect(wsdl_url)

    # -- invocation (Figure 1, steps 2 and 3) --------------------------------

    def invoke(self, operation: str, *arguments: Any) -> Any:
        """Invoke ``operation`` through the compiled stub."""
        if self.stub is None:
            raise SoapError("client is not connected; call connect(wsdl_url) first")
        return self.stub.invoke(operation, *arguments)

    def call_raw(self, request: SoapRequest) -> SoapResponse:
        """Send a pre-built SOAP Request (bypassing stub signature checks).

        CDE's dynamic client uses this path when the developer invokes an
        operation whose local view may be stale — the server, not the stub,
        decides whether the operation still exists.
        """
        if self.description is None:
            raise SoapError("client is not connected; call connect(wsdl_url) first")
        return self._transport(request)

    def call_and_unwrap(self, request: SoapRequest) -> Any:
        """Like :meth:`call_raw` but unwraps the value / raises on faults."""
        return unwrap_response(self.call_raw(request))

    # -- transport ------------------------------------------------------------

    def _transport(self, request: SoapRequest) -> SoapResponse:
        if self.description is None:
            raise SoapError("client is not connected")
        request_xml, request_wire = request.to_xml_and_wire()
        self._charge(len(request_xml))
        http_response = self.http_client.post(
            self.description.endpoint_url,
            request_xml,
            headers={
                "Content-Type": "text/xml; charset=utf-8",
                "Soapaction": f"{request.namespace}#{request.operation}",
            },
            body_wire=request_wire,
        )
        if not http_response.ok:
            raise SoapError(
                f"SOAP endpoint returned HTTP {http_response.status}: {http_response.body}"
            )
        self._charge(len(http_response.body))
        self.calls_made += 1
        return SoapResponse.from_xml(
            http_response.body,
            self.description.type_registry(),
        )

    def _charge(self, size_bytes: int) -> None:
        """Advance the virtual clock by the client-side processing cost."""
        if self.cost_model is None:
            return
        cost = self.cost_model.text_processing(size_bytes) * self.speed_factor
        if cost <= 0:
            return
        scheduler = self.host.network.scheduler
        done = []
        scheduler.schedule(cost, lambda: done.append(True), label="soap-client processing")
        scheduler.run_until(lambda: bool(done), description="client processing")

    def __repr__(self) -> str:
        target = self.description.endpoint_url if self.description else "<disconnected>"
        return f"SoapClient(host={self.host.name!r}, target={target})"
