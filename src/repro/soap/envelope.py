"""SOAP Request and SOAP Response envelopes.

A SOAP Request "encapsulates the remote method call in a standard textual
format" (§2.1); the response carries either the return value or a
:class:`~repro.soap.faults.SoapFault`.  Requests are encoded positionally
(``arg0``, ``arg1``, ...) with embedded type labels so the server can decode
them without trusting the client's stub to be current — which is the whole
point of live development: the client's view may legitimately be stale.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Sequence

from repro.errors import SoapError, XmlError
from repro.rmitypes import RmiType, TypeRegistry, VOID, infer_type, parse_type
from repro.soap.encoding import decode_dynamic, decode_value, encode_value
from repro.soap.faults import SoapFault
from repro.xmlutil import Namespaces, QName, XmlElement, parse, serialize
from repro.xmlutil.serializer import escape_attribute, escape_text

_ENVELOPE = QName(Namespaces.SOAP_ENVELOPE, "Envelope")
_HEADER = QName(Namespaces.SOAP_ENVELOPE, "Header")
_BODY = QName(Namespaces.SOAP_ENVELOPE, "Body")
_FAULT = QName(Namespaces.SOAP_ENVELOPE, "Fault")

#: Namespace of the observability trace-context header block (the SOAP 1.1
#: extensible-header channel the causal tracer propagates ids through).
TRACE_NAMESPACE = "urn:repro:obs"
_TRACE_CONTEXT = QName(TRACE_NAMESPACE, "TraceContext")

# -- serialisation fast path -------------------------------------------------
#
# SOAP encode dominates large-fleet runs (roughly 9x the GIOP cost per
# message), and the generic serialiser re-walks every envelope to rediscover
# the same two namespaces.  An envelope's skeleton — XML declaration, the
# Envelope/Body opening with its namespace declarations, and the closing
# tags — depends only on the target namespace, so it is rendered once and
# cached; per message only the call wrapper and its argument elements are
# formatted.  The fast path must stay byte-identical to
# ``serialize(self.to_element())`` (property-tested), so anything it cannot
# prove safe — a well-known namespace that would get a conventional prefix,
# a namespace-qualified argument element — falls back to the slow path.

#: Toggle for the envelope fast path; tests flip it to prove byte-identity.
_fast_serialization = True


def set_fast_serialization(enabled: bool) -> bool:
    """Enable/disable the envelope fast path; returns the previous setting."""
    global _fast_serialization
    previous = _fast_serialization
    _fast_serialization = enabled
    return previous


@lru_cache(maxsize=512)
def _envelope_skeleton(namespace: str) -> tuple[str, str] | None:
    """``(head, tail)`` of a cached envelope, or ``None`` when unsafe.

    The head ends right where the Body's single child element begins; the
    target namespace is always prefixed ``ns0`` (the serialiser's first
    non-well-known assignment).
    """
    if not namespace or namespace in Namespaces.DEFAULT_PREFIXES:
        return None
    head = (
        '<?xml version="1.0" encoding="UTF-8"?>'
        f'<soapenv:Envelope xmlns:soapenv="{escape_attribute(Namespaces.SOAP_ENVELOPE)}"'
        f' xmlns:ns0="{escape_attribute(namespace)}">'
        "<soapenv:Body>"
    )
    return head, "</soapenv:Body></soapenv:Envelope>"


@lru_cache(maxsize=512)
def _envelope_wire_segments(namespace: str) -> tuple[bytes, bytes] | None:
    """UTF-8 encoded ``(head, tail)`` skeleton segments, or ``None`` when unsafe.

    The wire fast path splices these cached byte segments around the encoded
    per-call body, so the skeleton is never re-encoded per message.  UTF-8
    concatenates cleanly (``(a + b).encode() == a.encode() + b.encode()``),
    which is what keeps the splice byte-identical to encoding the full
    document string.
    """
    skeleton = _envelope_skeleton(namespace)
    if skeleton is None:
        return None
    head, tail = skeleton
    return head.encode("utf-8"), tail.encode("utf-8")


def _write_plain(element: XmlElement, parts: list[str]) -> bool:
    """Serialise a namespace-free subtree exactly as the generic serialiser
    would; returns False (parts must then be discarded) on any namespaced
    name, which only the slow path can prefix correctly."""
    name = element.name
    if name.namespace:
        return False
    attributes = ""
    for attr_name, attr_value in element.attributes.items():
        if attr_name.namespace:
            return False
        attributes += f' {attr_name.local_name}="{escape_attribute(attr_value)}"'
    local = name.local_name
    text = element.text
    children = element.children
    if not children and not text:
        parts.append(f"<{local}{attributes}/>")
        return True
    parts.append(f"<{local}{attributes}>")
    if text:
        parts.append(escape_text(text))
    for child in children:
        if not _write_plain(child, parts):
            return False
    parts.append(f"</{local}>")
    return True


def _valid_local_name(name: str) -> bool:
    return bool(name) and ":" not in name and " " not in name


def _wrap_in_envelope(body_child: XmlElement, trace_context: str | None = None) -> XmlElement:
    envelope = XmlElement(_ENVELOPE)
    if trace_context is not None:
        header = envelope.add_child(XmlElement(_HEADER))
        block = header.add_child(XmlElement(_TRACE_CONTEXT))
        block.text = trace_context
    body = envelope.add_child(XmlElement(_BODY))
    body.add_child(body_child)
    return envelope


def _header_trace_context(envelope: XmlElement) -> str | None:
    header = envelope.find(_HEADER)
    if header is None:
        return None
    block = header.find(_TRACE_CONTEXT)
    if block is None:
        return None
    return block.text or None


def _body_child(envelope: XmlElement, what: str) -> XmlElement:
    if envelope.name != _ENVELOPE:
        raise SoapError(f"{what} root element must be soapenv:Envelope, got {envelope.name}")
    body = envelope.find(_BODY)
    if body is None:
        raise SoapError(f"{what} has no soapenv:Body")
    if not body.children:
        raise SoapError(f"{what} Body is empty")
    return body.children[0]


@dataclass
class SoapRequest:
    """A SOAP Request: one operation invocation with typed arguments."""

    operation: str
    arguments: tuple[Any, ...] = ()
    argument_types: tuple[RmiType, ...] = ()
    namespace: str = "urn:repro"
    #: Optional causal-trace token carried in a soapenv:Header block.  ``None``
    #: (the untraced case) keeps the envelope Header-free and byte-identical
    #: to the historical wire format.
    trace_context: str | None = None

    def __post_init__(self) -> None:
        if self.argument_types and len(self.argument_types) != len(self.arguments):
            raise SoapError(
                "argument_types must match arguments "
                f"({len(self.argument_types)} types for {len(self.arguments)} arguments)"
            )

    @classmethod
    def for_call(
        cls,
        operation: str,
        arguments: Sequence[Any],
        namespace: str = "urn:repro",
        registry: TypeRegistry | None = None,
    ) -> "SoapRequest":
        """Build a request, inferring argument types from the Python values."""
        types = tuple(infer_type(value, registry) for value in arguments)
        return cls(operation, tuple(arguments), types, namespace)

    def to_element(self) -> XmlElement:
        """Render as a full SOAP envelope element."""
        call = XmlElement(QName(self.namespace, self.operation))
        types = self.argument_types or tuple(infer_type(v) for v in self.arguments)
        for index, (value, rmi_type) in enumerate(zip(self.arguments, types)):
            call.add_child(encode_value(f"arg{index}", value, rmi_type))
        return _wrap_in_envelope(call, self.trace_context)

    def to_xml(self) -> str:
        """Serialise to the textual wire format."""
        if _fast_serialization:
            fast = self._to_xml_fast()
            if fast is not None:
                return fast
        return serialize(self.to_element())

    def to_wire(self) -> bytes:
        """Serialise straight to UTF-8 wire bytes.

        Byte-identical to ``to_xml().encode("utf-8")``, but the fast path
        splices the cached, pre-encoded skeleton segments instead of
        re-encoding the whole document per message.
        """
        if _fast_serialization:
            middle = self._fast_body()
            if middle is not None:
                head, tail = _envelope_wire_segments(self.namespace)
                return b"".join((head, middle.encode("utf-8"), tail))
        return self.to_xml().encode("utf-8")

    def to_xml_and_wire(self) -> tuple[str, bytes]:
        """``(to_xml(), to_wire())`` with the per-call body rendered once.

        Producer boundaries (HTTP call sites) need both representations —
        the text for character-count cost charging and the bytes for the
        wire — so this avoids serialising twice.
        """
        if _fast_serialization:
            middle = self._fast_body()
            if middle is not None:
                head, tail = _envelope_skeleton(self.namespace)
                bhead, btail = _envelope_wire_segments(self.namespace)
                return (
                    "".join((head, middle, tail)),
                    b"".join((bhead, middle.encode("utf-8"), btail)),
                )
        xml = self.to_xml()
        return xml, xml.encode("utf-8")

    def _fast_body(self) -> str | None:
        """The Body's single child element as text, or ``None`` when unsafe."""
        if self.trace_context is not None:
            # Traced requests carry a Header block the cached skeleton does
            # not include; the generic serialiser renders them.
            return None
        if _envelope_skeleton(self.namespace) is None or not _valid_local_name(self.operation):
            return None
        types = self.argument_types or tuple(infer_type(v) for v in self.arguments)
        body: list[str] = []
        for index, (value, rmi_type) in enumerate(zip(self.arguments, types)):
            if not _write_plain(encode_value(f"arg{index}", value, rmi_type), body):
                return None
        operation = self.operation
        if not body:
            return f"<ns0:{operation}/>"
        return "".join((f"<ns0:{operation}>", *body, f"</ns0:{operation}>"))

    def _to_xml_fast(self) -> str | None:
        middle = self._fast_body()
        if middle is None:
            return None
        head, tail = _envelope_skeleton(self.namespace)
        return "".join((head, middle, tail))

    @classmethod
    def from_xml(cls, text: str, registry: TypeRegistry | None = None) -> "SoapRequest":
        """Parse a SOAP Request from its wire format.

        Raises
        ------
        SoapError
            If the document is not a well-formed SOAP Request.
        """
        try:
            envelope = parse(text)
        except XmlError as exc:
            raise SoapError(f"malformed SOAP Request: {exc}") from None
        call = _body_child(envelope, "SOAP Request")
        if call.name == _FAULT:
            raise SoapError("SOAP Request body contains a Fault element")
        arguments = []
        types = []
        for child in call.children:
            value = decode_dynamic(child, registry)
            arguments.append(value)
            types.append(parse_type(child.attribute("type"), registry))
        return cls(
            operation=call.name.local_name,
            arguments=tuple(arguments),
            argument_types=tuple(types),
            namespace=call.name.namespace or "urn:repro",
            trace_context=_header_trace_context(envelope),
        )


@dataclass
class SoapResponse:
    """A SOAP Response: either a return value or a fault."""

    operation: str
    return_value: Any = None
    return_type: RmiType = VOID
    fault: SoapFault | None = None
    namespace: str = "urn:repro"

    @property
    def is_fault(self) -> bool:
        """True if the response carries a fault instead of a value."""
        return self.fault is not None

    @classmethod
    def for_result(
        cls,
        operation: str,
        value: Any,
        return_type: RmiType,
        namespace: str = "urn:repro",
    ) -> "SoapResponse":
        """A successful response carrying ``value``."""
        return cls(operation, value, return_type, None, namespace)

    @classmethod
    def for_fault(cls, operation: str, fault: SoapFault, namespace: str = "urn:repro") -> "SoapResponse":
        """A fault response."""
        return cls(operation, None, VOID, fault, namespace)

    def to_element(self) -> XmlElement:
        """Render as a full SOAP envelope element."""
        if self.fault is not None:
            return _wrap_in_envelope(self.fault.to_element())
        wrapper = XmlElement(QName(self.namespace, f"{self.operation}Response"))
        wrapper.add_child(encode_value("return", self.return_value, self.return_type))
        return _wrap_in_envelope(wrapper)

    def to_xml(self) -> str:
        """Serialise to the textual wire format."""
        if _fast_serialization:
            fast = self._to_xml_fast()
            if fast is not None:
                return fast
        return serialize(self.to_element())

    def to_wire(self) -> bytes:
        """Serialise straight to UTF-8 wire bytes (see SoapRequest.to_wire)."""
        if _fast_serialization:
            middle = self._fast_body()
            if middle is not None:
                head, tail = _envelope_wire_segments(self.namespace)
                return b"".join((head, middle.encode("utf-8"), tail))
        return self.to_xml().encode("utf-8")

    def to_xml_and_wire(self) -> tuple[str, bytes]:
        """``(to_xml(), to_wire())`` with the per-call body rendered once."""
        if _fast_serialization:
            middle = self._fast_body()
            if middle is not None:
                head, tail = _envelope_skeleton(self.namespace)
                bhead, btail = _envelope_wire_segments(self.namespace)
                return (
                    "".join((head, middle, tail)),
                    b"".join((bhead, middle.encode("utf-8"), btail)),
                )
        xml = self.to_xml()
        return xml, xml.encode("utf-8")

    def _fast_body(self) -> str | None:
        """The Body's single child element as text, or ``None`` when unsafe."""
        if self.fault is not None:
            # Fault envelopes carry soapenv-qualified children; the generic
            # serialiser handles their prefixes.
            return None
        if _envelope_skeleton(self.namespace) is None or not _valid_local_name(self.operation):
            return None
        body: list[str] = []
        if not _write_plain(encode_value("return", self.return_value, self.return_type), body):
            return None
        wrapper = f"ns0:{self.operation}Response"
        return "".join((f"<{wrapper}>", *body, f"</{wrapper}>"))

    def _to_xml_fast(self) -> str | None:
        middle = self._fast_body()
        if middle is None:
            return None
        head, tail = _envelope_skeleton(self.namespace)
        return "".join((head, middle, tail))

    @classmethod
    def from_xml(cls, text: str, registry: TypeRegistry | None = None) -> "SoapResponse":
        """Parse a SOAP Response from its wire format."""
        try:
            envelope = parse(text)
        except XmlError as exc:
            raise SoapError(f"malformed SOAP Response: {exc}") from None
        child = _body_child(envelope, "SOAP Response")
        if child.name == _FAULT:
            return cls(operation="", fault=SoapFault.from_element(child))
        if not child.name.local_name.endswith("Response"):
            raise SoapError(
                f"SOAP Response body element should end with 'Response', got {child.name}"
            )
        operation = child.name.local_name[: -len("Response")]
        return_element = child.find("return")
        if return_element is None:
            return cls(operation=operation, return_value=None, return_type=VOID)
        value = decode_dynamic(return_element, registry)
        return_type = parse_type(return_element.attribute("type"), registry)
        return cls(
            operation=operation,
            return_value=value,
            return_type=return_type,
            namespace=child.name.namespace or "urn:repro",
        )
