"""Parsing a WSDL document back into an :class:`InterfaceDescription`.

This is the client-side half of the round trip (the ``WSDL Compiler`` box in
Figure 1): CDE fetches the published WSDL over HTTP, parses it with this
module and hands the resulting description to the stub compiler.
"""

from __future__ import annotations

from repro.errors import WsdlError, XmlError
from repro.interface import InterfaceDescription, OperationSignature, Parameter
from repro.rmitypes import FieldDef, StructType, TypeRegistry, parse_type
from repro.xmlutil import Namespaces, QName, XmlElement, parse

_WSDL = Namespaces.WSDL
_SOAP = Namespaces.WSDL_SOAP
_XSD = Namespaces.XSD


def parse_wsdl(text: str) -> InterfaceDescription:
    """Parse a WSDL document and return the interface it describes.

    Raises
    ------
    WsdlError
        If the document is not well-formed WSDL.
    """
    try:
        root = parse(text)
    except XmlError as exc:
        raise WsdlError(f"malformed WSDL document: {exc}") from None
    if root.name != QName(_WSDL, "definitions"):
        raise WsdlError(f"root element must be wsdl:definitions, got {root.name}")

    service_name = root.attribute("name")
    namespace = root.attribute("targetNamespace")
    if not service_name or not namespace:
        raise WsdlError("wsdl:definitions must carry name and targetNamespace")
    version_text = root.attribute("version", "0")
    try:
        version = int(version_text)
    except ValueError:
        raise WsdlError(f"malformed version attribute {version_text!r}") from None

    structs = _parse_structs(root)
    registry = TypeRegistry(structs)
    messages = _parse_messages(root, registry)
    operations = _parse_port_type(root, messages)
    endpoint_url = _parse_endpoint(root)

    return InterfaceDescription(
        service_name=service_name,
        namespace=namespace,
        operations=tuple(sorted(operations, key=lambda op: op.name)),
        structs=tuple(sorted(structs, key=lambda s: s.name)),
        version=version,
        endpoint_url=endpoint_url,
    )


def _parse_structs(root: XmlElement) -> list[StructType]:
    structs: list[StructType] = []
    types = root.find(QName(_WSDL, "types"))
    if types is None:
        return structs
    schema = types.find(QName(_XSD, "schema"))
    if schema is None:
        return structs

    # Two passes so structs may reference each other regardless of order:
    # first create empty shells, then resolve field types.
    raw: list[tuple[str, list[tuple[str, str]]]] = []
    for complex_type in schema.find_all(QName(_XSD, "complexType")):
        name = complex_type.attribute("name")
        if not name:
            raise WsdlError("complexType without a name")
        sequence = complex_type.find(QName(_XSD, "sequence"))
        fields: list[tuple[str, str]] = []
        if sequence is not None:
            for element in sequence.find_all(QName(_XSD, "element")):
                field_name = element.attribute("name")
                field_type = element.attribute("type")
                if not field_name or not field_type:
                    raise WsdlError(f"malformed field in complexType {name!r}")
                fields.append((field_name, field_type))
        raw.append((name, fields))

    shell_registry = TypeRegistry(StructType(name) for name, _fields in raw)
    for name, fields in raw:
        structs.append(
            StructType(
                name,
                tuple(
                    FieldDef(field_name, parse_type(type_name, shell_registry))
                    for field_name, type_name in fields
                ),
            )
        )
    # Rebuild with fully-resolved structs so nested struct fields point at the
    # complete definitions.
    final_registry = TypeRegistry(structs)
    resolved = []
    for struct in structs:
        resolved.append(
            StructType(
                struct.name,
                tuple(
                    FieldDef(
                        f.name,
                        parse_type(f.field_type.type_name, final_registry),
                    )
                    for f in struct.fields
                ),
            )
        )
    return resolved


def _parse_messages(
    root: XmlElement, registry: TypeRegistry
) -> dict[str, list[tuple[str, "object"]]]:
    """Return message name -> list of (part name, resolved type).

    Parts are kept as plain tuples because response messages use the part
    name ``return``, which is not a legal parameter identifier.
    """
    messages: dict[str, list[tuple[str, object]]] = {}
    for message in root.find_all(QName(_WSDL, "message")):
        name = message.attribute("name")
        if not name:
            raise WsdlError("wsdl:message without a name")
        parts: list[tuple[str, object]] = []
        for part in message.find_all(QName(_WSDL, "part")):
            part_name = part.attribute("name")
            part_type = part.attribute("type")
            if not part_name or not part_type:
                raise WsdlError(f"malformed part in message {name!r}")
            parts.append((part_name, parse_type(part_type, registry)))
        messages[name] = parts
    return messages


def _parse_port_type(
    root: XmlElement, messages: dict[str, list[tuple[str, object]]]
) -> list[OperationSignature]:
    operations: list[OperationSignature] = []
    port_type = root.find(QName(_WSDL, "portType"))
    if port_type is None:
        return operations
    for op_element in port_type.find_all(QName(_WSDL, "operation")):
        name = op_element.attribute("name")
        if not name:
            raise WsdlError("wsdl:operation without a name")
        input_element = op_element.find(QName(_WSDL, "input"))
        output_element = op_element.find(QName(_WSDL, "output"))
        request_message = input_element.attribute("message") if input_element is not None else None
        response_message = output_element.attribute("message") if output_element is not None else None
        parameters = tuple(
            Parameter(part_name, part_type)
            for part_name, part_type in messages.get(request_message or "", [])
        )
        return_parts = messages.get(response_message or "", [])
        if return_parts:
            return_type = return_parts[0][1]
        else:
            from repro.rmitypes import VOID

            return_type = VOID
        operations.append(
            OperationSignature(name=name, parameters=parameters, return_type=return_type)
        )
    return operations


def _parse_endpoint(root: XmlElement) -> str:
    service = root.find(QName(_WSDL, "service"))
    if service is None:
        return ""
    port = service.find(QName(_WSDL, "port"))
    if port is None:
        return ""
    address = port.find(QName(_SOAP, "address"))
    if address is None:
        return ""
    return address.attribute("location", "") or ""
