"""Rendering an :class:`InterfaceDescription` into a WSDL document.

The generated document follows the WSDL 1.1 structure the paper describes
(§2.1): a ``types`` section declaring complex types, per-operation request and
response ``message`` elements, a ``portType`` listing the operations, a SOAP
``binding`` and a ``service`` whose ``soap:address`` carries the endpoint
location.  A *minimal* WSDL document (endpoint address but no operations,
§5.1.1 footnote) is simply the rendering of a minimal description.
"""

from __future__ import annotations

from repro.interface import InterfaceDescription, OperationSignature
from repro.rmitypes import StructType
from repro.soap.encoding import xsd_qname
from repro.xmlutil import Namespaces, QName, XmlElement, serialize, serialize_pretty

_WSDL = Namespaces.WSDL
_SOAP = Namespaces.WSDL_SOAP
_XSD = Namespaces.XSD


def generate_wsdl(description: InterfaceDescription, pretty: bool = False) -> str:
    """Return the WSDL document describing ``description``."""
    element = build_wsdl_element(description)
    return serialize_pretty(element) if pretty else serialize(element)


def build_wsdl_element(description: InterfaceDescription) -> XmlElement:
    """Build the WSDL document as an :class:`XmlElement` tree."""
    tns = description.namespace
    definitions = XmlElement(
        QName(_WSDL, "definitions"),
        {
            "name": description.service_name,
            "targetNamespace": tns,
            "version": str(description.version),
        },
    )

    _add_types(definitions, description)
    for operation in description.operations:
        _add_messages(definitions, operation, tns)
    _add_port_type(definitions, description, tns)
    _add_binding(definitions, description, tns)
    _add_service(definitions, description, tns)
    return definitions


def _add_types(definitions: XmlElement, description: InterfaceDescription) -> None:
    types = definitions.add(QName(_WSDL, "types"))
    schema = types.add(
        QName(_XSD, "schema"), {"targetNamespace": description.namespace}
    )
    for struct in description.structs:
        _add_complex_type(schema, struct, description.namespace)


def _add_complex_type(schema: XmlElement, struct: StructType, tns: str) -> None:
    complex_type = schema.add(QName(_XSD, "complexType"), {"name": struct.name})
    sequence = complex_type.add(QName(_XSD, "sequence"))
    for field_def in struct.fields:
        sequence.add(
            QName(_XSD, "element"),
            {
                "name": field_def.name,
                "type": field_def.field_type.type_name,
            },
        )


def _add_messages(definitions: XmlElement, operation: OperationSignature, tns: str) -> None:
    request = definitions.add(
        QName(_WSDL, "message"), {"name": f"{operation.name}Request"}
    )
    for parameter in operation.parameters:
        request.add(
            QName(_WSDL, "part"),
            {"name": parameter.name, "type": parameter.param_type.type_name},
        )
    response = definitions.add(
        QName(_WSDL, "message"), {"name": f"{operation.name}Response"}
    )
    response.add(
        QName(_WSDL, "part"),
        {"name": "return", "type": operation.return_type.type_name},
    )


def _add_port_type(definitions: XmlElement, description: InterfaceDescription, tns: str) -> None:
    port_type = definitions.add(
        QName(_WSDL, "portType"), {"name": f"{description.service_name}PortType"}
    )
    for operation in description.operations:
        op_element = port_type.add(QName(_WSDL, "operation"), {"name": operation.name})
        op_element.add(QName(_WSDL, "input"), {"message": f"{operation.name}Request"})
        op_element.add(QName(_WSDL, "output"), {"message": f"{operation.name}Response"})


def _add_binding(definitions: XmlElement, description: InterfaceDescription, tns: str) -> None:
    binding = definitions.add(
        QName(_WSDL, "binding"),
        {
            "name": f"{description.service_name}SoapBinding",
            "type": f"{description.service_name}PortType",
        },
    )
    binding.add(
        QName(_SOAP, "binding"),
        {"style": "rpc", "transport": "http://schemas.xmlsoap.org/soap/http"},
    )
    for operation in description.operations:
        op_element = binding.add(QName(_WSDL, "operation"), {"name": operation.name})
        op_element.add(
            QName(_SOAP, "operation"),
            {"soapAction": f"{description.namespace}#{operation.name}"},
        )


def _add_service(definitions: XmlElement, description: InterfaceDescription, tns: str) -> None:
    service = definitions.add(
        QName(_WSDL, "service"), {"name": description.service_name}
    )
    port = service.add(
        QName(_WSDL, "port"),
        {
            "name": f"{description.service_name}Port",
            "binding": f"{description.service_name}SoapBinding",
        },
    )
    port.add(QName(_SOAP, "address"), {"location": description.endpoint_url})
