"""WSDL stub compiler — the analogue of Axis' ``WSDL2Java``.

Given a parsed :class:`~repro.interface.InterfaceDescription` and a transport
callable (anything that can take a :class:`~repro.soap.envelope.SoapRequest`
and return a :class:`~repro.soap.envelope.SoapResponse`), the compiler builds
a :class:`CompiledStub` whose attributes are callable server-method stubs.
The static SOAP client (§2.1, Figure 1) and CDE's dynamic client stubs are
both built on top of this.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SoapError, SoapFaultError
from repro.interface import InterfaceDescription, OperationSignature
from repro.soap.envelope import SoapRequest, SoapResponse

Transport = Callable[[SoapRequest], SoapResponse]


class StubMethod:
    """A single callable stub for one remote operation."""

    def __init__(
        self,
        signature: OperationSignature,
        namespace: str,
        transport: Transport,
        registry_provider: Callable[[], Any] | None = None,
    ) -> None:
        self.signature = signature
        self._namespace = namespace
        self._transport = transport
        self.call_count = 0
        self.__name__ = signature.name
        self.__doc__ = f"Remote stub for {signature.describe()}"

    def __call__(self, *arguments: Any) -> Any:
        if len(arguments) != self.signature.arity:
            raise SoapError(
                f"operation {self.signature.name!r} expects {self.signature.arity} "
                f"argument(s), got {len(arguments)}"
            )
        for value, parameter in zip(arguments, self.signature.parameters):
            parameter.param_type.validate(value)
        request = SoapRequest(
            operation=self.signature.name,
            arguments=tuple(arguments),
            argument_types=self.signature.parameter_types(),
            namespace=self._namespace,
        )
        self.call_count += 1
        response = self._transport(request)
        return unwrap_response(response)

    def __repr__(self) -> str:
        return f"StubMethod({self.signature.describe()})"


def unwrap_response(response: SoapResponse) -> Any:
    """Return the response value, raising :class:`SoapFaultError` on faults."""
    if response.is_fault:
        raise SoapFaultError(response.fault)
    return response.return_value


class CompiledStub:
    """The compiled client-side view of a service.

    Operations are exposed both as attributes (``stub.add(2, 3)``) and via
    :meth:`invoke` for dynamically-named dispatch (what CDE uses when the
    operation name itself is part of the live development loop).
    """

    def __init__(self, description: InterfaceDescription, transport: Transport) -> None:
        self.description = description
        self._transport = transport
        self._methods: dict[str, StubMethod] = {
            operation.name: StubMethod(operation, description.namespace, transport)
            for operation in description.operations
        }

    @property
    def operation_names(self) -> tuple[str, ...]:
        """Names of all operations available on this stub."""
        return tuple(self._methods)

    def method(self, name: str) -> StubMethod:
        """Return the stub method for ``name``."""
        try:
            return self._methods[name]
        except KeyError:
            raise SoapError(
                f"operation {name!r} is not part of the compiled interface "
                f"(available: {', '.join(self._methods) or 'none'})"
            ) from None

    def invoke(self, name: str, *arguments: Any) -> Any:
        """Invoke operation ``name`` with ``arguments``."""
        return self.method(name)(*arguments)

    def __getattr__(self, name: str) -> StubMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            return self.method(name)
        except SoapError as exc:
            raise AttributeError(str(exc)) from None

    def __repr__(self) -> str:
        return (
            f"CompiledStub({self.description.service_name}, "
            f"operations={list(self._methods)})"
        )


class WsdlCompiler:
    """Builds :class:`CompiledStub` objects from interface descriptions."""

    def __init__(self, transport_factory: Callable[[InterfaceDescription], Transport]) -> None:
        self._transport_factory = transport_factory
        self.compilations = 0

    def compile(self, description: InterfaceDescription) -> CompiledStub:
        """Compile ``description`` into a stub bound to a fresh transport."""
        transport = self._transport_factory(description)
        self.compilations += 1
        return CompiledStub(description, transport)
