"""WSDL generation, parsing and stub compilation.

These are the analogues of Apache Axis' ``Java2WSDL`` and ``WSDL2Java`` tools
the paper builds on (§3):

* :func:`repro.soap.wsdl.generator.generate_wsdl` renders an
  :class:`~repro.interface.InterfaceDescription` into a WSDL document;
* :func:`repro.soap.wsdl.parser.parse_wsdl` recovers the description from a
  WSDL document retrieved over HTTP;
* :class:`repro.soap.wsdl.compiler.WsdlCompiler` builds callable client-side
  method stubs from a parsed description.
"""

from repro.soap.wsdl.generator import generate_wsdl
from repro.soap.wsdl.parser import parse_wsdl
from repro.soap.wsdl.compiler import WsdlCompiler, CompiledStub

__all__ = ["generate_wsdl", "parse_wsdl", "WsdlCompiler", "CompiledStub"]
