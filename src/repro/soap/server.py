"""Static SOAP server — the "Axis + Tomcat" baseline of Table 1.

A :class:`StaticSoapServer` hosts a fixed service implementation: the WSDL
document is generated once at deployment time, served from
``GET /services/<name>?wsdl``, and SOAP calls are dispatched to statically
bound Python callables.  There is no live update machinery; changing the
interface requires redeploying the server, exactly like the traditional
development cycle the paper contrasts SDE with (§1, §3).

Server-side CPU cost (XML parsing, dispatch, response generation) is charged
to the virtual clock through a :class:`~repro.net.latency.CostModel`, which is
how the Table 1 benchmark reproduces realistic round-trip times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SoapError
from repro.interface import InterfaceDescription, OperationSignature
from repro.net.http import HttpRequest, HttpResponse, HttpServer
from repro.net.latency import CostModel
from repro.net.simnet import Host
from repro.rmitypes import StructType, TypeRegistry
from repro.soap.envelope import SoapRequest, SoapResponse
from repro.soap.faults import SoapFault
from repro.soap.wsdl import generate_wsdl


@dataclass
class SoapServiceDefinition:
    """A statically deployed service: signatures plus their implementations."""

    service_name: str
    namespace: str
    operations: list[tuple[OperationSignature, Callable[..., Any]]] = field(default_factory=list)
    structs: list[StructType] = field(default_factory=list)

    def add_operation(
        self, signature: OperationSignature, implementation: Callable[..., Any]
    ) -> None:
        """Register an operation and its implementation."""
        if any(existing.name == signature.name for existing, _ in self.operations):
            raise SoapError(f"operation {signature.name!r} is already defined")
        self.operations.append((signature, implementation))

    def signatures(self) -> tuple[OperationSignature, ...]:
        """The operation signatures in registration order."""
        return tuple(signature for signature, _ in self.operations)

    def implementation(self, name: str) -> Callable[..., Any] | None:
        """The implementation registered for operation ``name``, if any."""
        for signature, implementation in self.operations:
            if signature.name == name:
                return implementation
        return None

    def signature(self, name: str) -> OperationSignature | None:
        """The signature registered for operation ``name``, if any."""
        for signature, _ in self.operations:
            if signature.name == name:
                return signature
        return None


class StaticSoapServer:
    """A statically deployed SOAP service bound to a simulated host."""

    def __init__(
        self,
        host: Host,
        port: int,
        definition: SoapServiceDefinition,
        cost_model: CostModel | None = None,
        speed_factor: float = 1.0,
    ) -> None:
        self.host = host
        self.port = port
        self.definition = definition
        self.cost_model = cost_model
        self.speed_factor = speed_factor
        self.http_server = HttpServer(host, port, name=f"soap:{definition.service_name}")
        self.calls_served = 0
        self.faults_returned = 0

        self._service_path = f"/services/{definition.service_name}"
        self.description = self._build_description()
        self._registry = TypeRegistry(definition.structs)
        self._wsdl_document = generate_wsdl(self.description)

        self.http_server.add_route(self._service_path, self._handle, methods=("GET", "POST"))

    # -- deployment ---------------------------------------------------------

    def _build_description(self) -> InterfaceDescription:
        return InterfaceDescription(
            service_name=self.definition.service_name,
            namespace=self.definition.namespace,
            endpoint_url=self.endpoint_url,
        ).with_operations(self.definition.signatures(), self.definition.structs)

    @property
    def endpoint_url(self) -> str:
        """The SOAP endpoint URL clients post requests to."""
        return f"http://{self.host.name}:{self.port}{self._service_path}"

    @property
    def wsdl_url(self) -> str:
        """The URL from which the WSDL document is served."""
        return f"{self.endpoint_url}?wsdl"

    @property
    def wsdl_document(self) -> str:
        """The WSDL document describing this (fixed) service."""
        return self._wsdl_document

    def start(self) -> None:
        """Deploy: bind the HTTP server and begin accepting calls."""
        self.http_server.start()

    def stop(self) -> None:
        """Undeploy the service."""
        self.http_server.stop()

    # -- request handling -----------------------------------------------------

    def _handle(self, request: HttpRequest):
        if request.method == "GET":
            return HttpResponse.ok_xml(self._wsdl_document)
        return self._handle_call(request)

    def _handle_call(self, request: HttpRequest):
        try:
            soap_request = SoapRequest.from_xml(request.body, self._registry)
        except SoapError as exc:
            self.faults_returned += 1
            response = SoapResponse.for_fault("", SoapFault.malformed_request(str(exc)))
            return self._reply(request, response)

        signature = self.definition.signature(soap_request.operation)
        implementation = self.definition.implementation(soap_request.operation)
        if signature is None or implementation is None:
            self.faults_returned += 1
            response = SoapResponse.for_fault(
                soap_request.operation,
                SoapFault.non_existent_method(soap_request.operation),
            )
            return self._reply(request, response)

        try:
            result = implementation(*soap_request.arguments)
            response = SoapResponse.for_result(
                soap_request.operation,
                result,
                signature.return_type,
                namespace=self.definition.namespace,
            )
            self.calls_served += 1
        except Exception as exc:  # noqa: BLE001 - wrapped in an application fault
            self.faults_returned += 1
            response = SoapResponse.for_fault(
                soap_request.operation, SoapFault.application_fault(exc)
            )
        return self._reply(request, response)

    def _reply(self, http_request: HttpRequest, soap_response: SoapResponse):
        body, wire = soap_response.to_xml_and_wire()
        http_response = HttpResponse.ok_xml(body, wire=wire)
        delay = self._processing_delay(len(http_request.body), len(body))
        if delay > 0:
            return http_response, delay
        return http_response

    def _processing_delay(self, request_size: int, response_size: int) -> float:
        if self.cost_model is None:
            return 0.0
        cost = self.cost_model.text_processing(request_size)
        cost += self.cost_model.text_processing(response_size)
        return cost * self.speed_factor

    def __repr__(self) -> str:
        return f"StaticSoapServer({self.definition.service_name!r} at {self.endpoint_url})"
