"""SOAP stack: envelopes, encoding, faults, WSDL, and the static baseline.

This package plays the role Apache Axis (plus Tomcat) plays in the paper:

* :mod:`repro.soap.encoding` — XML encoding of the shared RMI type model;
* :mod:`repro.soap.envelope` — SOAP Request / SOAP Response documents;
* :mod:`repro.soap.faults` — SOAP Faults, including the ones SDE emits
  ("Server not initialized", "Malformed SOAP Request", "Non existent Method");
* :mod:`repro.soap.wsdl` — WSDL generation, parsing and stub compilation
  (the analogue of Axis' ``Java2WSDL`` / ``WSDL2Java`` tools);
* :mod:`repro.soap.server` / :mod:`repro.soap.client` — the *static* SOAP
  server and client used as the Table 1 baseline ("Axis-Tomcat/Axis").
"""

from repro.soap.faults import SoapFault, FaultCodes
from repro.soap.envelope import SoapRequest, SoapResponse
from repro.soap.server import StaticSoapServer, SoapServiceDefinition
from repro.soap.client import SoapClient

__all__ = [
    "SoapFault",
    "FaultCodes",
    "SoapRequest",
    "SoapResponse",
    "StaticSoapServer",
    "SoapServiceDefinition",
    "SoapClient",
]
