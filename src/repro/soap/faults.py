"""SOAP Faults.

The paper's SOAP Call Handler replies with three distinguished faults
(§5.1.3): "Server not initialized" while no instance of the gateway subclass
exists, "Malformed SOAP Request" when parsing fails, and "Non existent
Method" when the requested operation is not part of the live interface.
Application exceptions thrown by server methods are wrapped in a fault as
well.  This module defines the fault model and the factories for those cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmlutil import Namespaces, QName, XmlElement


class FaultCodes:
    """SOAP 1.1 fault codes plus the SDE-specific fault strings."""

    CLIENT = "Client"
    SERVER = "Server"

    SERVER_NOT_INITIALIZED = "Server not initialized"
    MALFORMED_REQUEST = "Malformed SOAP Request"
    NON_EXISTENT_METHOD = "Non existent Method"
    APPLICATION_FAULT = "Application Fault"


@dataclass(frozen=True)
class SoapFault:
    """A SOAP Fault carried inside a SOAP Response."""

    fault_code: str
    fault_string: str
    detail: str = ""

    def __str__(self) -> str:
        if self.detail:
            return f"{self.fault_code}: {self.fault_string} ({self.detail})"
        return f"{self.fault_code}: {self.fault_string}"

    # -- factories -------------------------------------------------------

    @classmethod
    def server_not_initialized(cls) -> "SoapFault":
        """§5.1.3: the call arrived before any server instance existed."""
        return cls(FaultCodes.SERVER, FaultCodes.SERVER_NOT_INITIALIZED)

    @classmethod
    def malformed_request(cls, detail: str = "") -> "SoapFault":
        """§5.1.3: the incoming SOAP Request could not be parsed."""
        return cls(FaultCodes.CLIENT, FaultCodes.MALFORMED_REQUEST, detail)

    @classmethod
    def non_existent_method(cls, operation: str, interface_version: int | None = None) -> "SoapFault":
        """§5.7: the requested operation is not in the live interface."""
        detail = f"operation={operation}"
        if interface_version is not None:
            detail += f"; publishedVersion={interface_version}"
        return cls(FaultCodes.CLIENT, FaultCodes.NON_EXISTENT_METHOD, detail)

    @classmethod
    def application_fault(cls, exception: BaseException) -> "SoapFault":
        """§5.1.3: the server method threw; the exception is encapsulated."""
        return cls(
            FaultCodes.SERVER,
            FaultCodes.APPLICATION_FAULT,
            f"{type(exception).__name__}: {exception}",
        )

    # -- classification ----------------------------------------------------

    @property
    def is_non_existent_method(self) -> bool:
        """True for the §5.7 "Non existent Method" fault."""
        return self.fault_string == FaultCodes.NON_EXISTENT_METHOD

    @property
    def is_server_not_initialized(self) -> bool:
        """True for the "Server not initialized" fault."""
        return self.fault_string == FaultCodes.SERVER_NOT_INITIALIZED

    @property
    def is_malformed_request(self) -> bool:
        """True for the "Malformed SOAP Request" fault."""
        return self.fault_string == FaultCodes.MALFORMED_REQUEST

    # -- XML --------------------------------------------------------------

    def to_element(self) -> XmlElement:
        """Render as the ``<soapenv:Fault>`` element."""
        fault = XmlElement(QName(Namespaces.SOAP_ENVELOPE, "Fault"))
        fault.add("faultcode", text=self.fault_code)
        fault.add("faultstring", text=self.fault_string)
        if self.detail:
            fault.add("detail", text=self.detail)
        return fault

    @classmethod
    def from_element(cls, element: XmlElement) -> "SoapFault":
        """Parse a ``<soapenv:Fault>`` element."""
        code = element.find("faultcode")
        string = element.find("faultstring")
        detail = element.find("detail")
        return cls(
            fault_code=code.text if code is not None else FaultCodes.SERVER,
            fault_string=string.text if string is not None else "",
            detail=detail.text if detail is not None else "",
        )
