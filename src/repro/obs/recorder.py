"""Flight recorder: auto-dump the recent span window when an invariant trips.

The recorder watches nothing itself — the invariant owners call
:meth:`FlightRecorder.trip` at the exact code site where a violation is
counted (§6 recency observation in the fleet driver and cohort flows, the
silent-wrong-answer counter, a ``NoAliveReplicaError`` storm in the
registry).  A trip snapshots the tracer's bounded ring plus every still-
open span into a JSON-able dump whose span tree names the violating call,
the replica it was routed to and the version tier the registry chose —
the post-mortem a end-of-run aggregate can never reconstruct.

Dumps are kept in memory (``dumps``) and, when a dump directory is
configured, written to ``flight-<n>-<reason>.json``.  File names come from
a sequence counter, never wall clock, so artifact names are deterministic;
``max_dumps`` bounds both the list and the files so a violation *storm*
cannot fill a disk.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path
from typing import Any

from repro.obs.spans import Tracer, spans_to_dicts


class FlightRecorder:
    """Bounded dump-on-trip recorder over a :class:`Tracer`'s span ring."""

    def __init__(
        self,
        tracer: Tracer,
        dump_dir: "str | Path | None" = None,
        max_dumps: int = 8,
    ) -> None:
        self.tracer = tracer
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self.max_dumps = max_dumps
        #: In-memory dumps, oldest first (bounded by ``max_dumps``).
        self.dumps: list[dict[str, Any]] = []
        #: Trips seen after the dump budget was exhausted.
        self.suppressed_trips = 0
        self._counter = itertools.count(1)

    def trip(self, reason: str, **detail: Any) -> "dict[str, Any] | None":
        """Record one invariant violation; returns the dump (or None).

        ``detail`` carries the violation's own coordinates (client, call,
        replica, versions, tier); the span window supplies the causal
        history leading up to it.
        """
        if len(self.dumps) >= self.max_dumps:
            self.suppressed_trips += 1
            return None
        index = next(self._counter)
        dump = {
            "index": index,
            "reason": reason,
            "time": self.tracer.scheduler.now,
            "detail": {key: detail[key] for key in sorted(detail)},
            "spans": spans_to_dicts(self.tracer.finished),
            "open_spans": spans_to_dicts(self.tracer.open_spans),
        }
        self.dumps.append(dump)
        if self.dump_dir is not None:
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            path = self.dump_dir / f"flight-{index:03d}-{reason}.json"
            path.write_text(json.dumps(dump, indent=2, default=repr) + "\n")
            dump["path"] = str(path)
        return dump

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(dumps={len(self.dumps)}/{self.max_dumps}, "
            f"suppressed={self.suppressed_trips})"
        )
