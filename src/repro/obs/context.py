"""Trace-context propagation: the id pair that rides the wire.

A :class:`TraceContext` is the minimal Dapper-style propagation unit — the
trace id naming the whole causal tree and the span id of the immediate
parent.  It encodes to a short ASCII token (``"<trace>.<span>"`` in hex)
that both in-band channels carry verbatim:

* SOAP — a ``<repro:TraceContext>`` header block inside ``soapenv:Header``
  (W3C SOAP 1.1 extensible headers);
* GIOP — a trailing service-context slot on the request message (OMG
  CORBA portable-interceptor service contexts).

Ids are minted from seeded sequence counters (:class:`repro.obs.spans
.Tracer`), never from wall clock or ``os.urandom``, so the encoded bytes —
and therefore message sizes and simulated latencies — are identical across
runs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The (trace id, parent span id) pair propagated with a request."""

    trace_id: int
    span_id: int

    def encode(self) -> str:
        """The ASCII wire token (``"<trace-hex>.<span-hex>"``)."""
        return f"{self.trace_id:x}.{self.span_id:x}"

    def encode_bytes(self) -> bytes:
        """The wire token as bytes (GIOP service-context payload)."""
        return self.encode().encode("ascii")

    @classmethod
    def decode(cls, token: "str | bytes | None") -> "TraceContext | None":
        """Parse a wire token; malformed or empty input decodes to None.

        Tolerant by design: an unknown peer (or a fuzzer-mangled message)
        must degrade to "no causal parent", never to a server fault.
        """
        if not token:
            return None
        if isinstance(token, bytes):
            try:
                token = token.decode("ascii")
            except UnicodeDecodeError:
                return None
        head, separator, tail = token.partition(".")
        if not separator:
            return None
        try:
            return cls(int(head, 16), int(tail, 16))
        except ValueError:
            return None
