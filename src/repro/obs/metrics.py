"""Fixed-interval time-series metrics over simulated time.

A :class:`MetricsSampler` is an ordinary deterministic state machine on
the existing :class:`~repro.sim.scheduler.Scheduler`: every ``interval``
simulated seconds it reads each registered gauge callable and appends the
value to that gauge's series.  Because sampling rides the same event queue
as everything else, the series are byte-deterministic — two identical runs
sample the same gauges at the same instants and read the same values.

Series are bounded (``max_samples``) with the same ring discipline as the
span ring and the flight recorder, so a long run keeps the most recent
window rather than growing without bound.  The finished product is a
:class:`MetricsReport` attached to ``ClusterReport.metrics`` — carrying
its own fingerprint, and deliberately *excluded* from
``ClusterReport.fingerprint()`` so enabling observability never changes a
scenario's primary determinism signature.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError


@dataclass
class MetricsReport:
    """The sampled series of one run: gauge name → tuple of samples."""

    interval: float
    #: Sample timestamps in simulated seconds (shared by every series).
    times: tuple[float, ...] = ()
    #: Gauge name → one value per timestamp.
    series: dict[str, tuple[float, ...]] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """SHA-256 over the full series state, for determinism asserts."""
        digest = hashlib.sha256()
        digest.update(repr((self.interval, self.times)).encode())
        for name in sorted(self.series):
            digest.update(repr((name, self.series[name])).encode())
        return digest.hexdigest()

    def to_dict(self) -> dict:
        """A JSON-able rendering for exporters and CI artifacts."""
        return {
            "interval": self.interval,
            "times": list(self.times),
            "series": {name: list(values) for name, values in self.series.items()},
            "fingerprint": self.fingerprint(),
        }

    def __repr__(self) -> str:
        return (
            f"MetricsReport(interval={self.interval}, gauges={len(self.series)}, "
            f"samples={len(self.times)})"
        )


class MetricsSampler:
    """Samples registered gauges at a fixed simulated-time interval."""

    def __init__(self, scheduler, interval: float = 0.005, max_samples: int = 4096) -> None:
        if interval <= 0:
            raise ReproError(f"metrics interval must be positive, got {interval}")
        self.scheduler = scheduler
        self.interval = interval
        self.max_samples = max_samples
        self._gauges: dict[str, Callable[[], float]] = {}
        self._times: deque[float] = deque(maxlen=max_samples)
        self._series: dict[str, deque[float]] = {}
        self._event = None
        self._running = False

    def register(self, name: str, gauge: Callable[[], float]) -> None:
        """Register (or replace) a gauge sampled on every tick."""
        self._gauges[name] = gauge
        self._series[name] = deque(maxlen=self.max_samples)

    def start(self) -> None:
        """Begin sampling ``interval`` seconds from now."""
        if self._running:
            return
        self._running = True
        self._event = self.scheduler.schedule(
            self.interval, self._tick, label="obs metrics sample"
        )

    def stop(self) -> None:
        """Stop sampling and cancel the pending tick."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._times.append(self.scheduler.now)
        for name, gauge in self._gauges.items():
            self._series[name].append(float(gauge()))
        self._event = self.scheduler.schedule(
            self.interval, self._tick, label="obs metrics sample"
        )

    @property
    def sample_count(self) -> int:
        """Samples currently retained (bounded by ``max_samples``)."""
        return len(self._times)

    def report(self) -> MetricsReport:
        """Freeze the sampled series into a :class:`MetricsReport`."""
        return MetricsReport(
            interval=self.interval,
            times=tuple(self._times),
            series={name: tuple(values) for name, values in self._series.items()},
        )
