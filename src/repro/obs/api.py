"""The observability front door: configuration, install, and hook targets.

An :class:`Observability` instance owns the three pillars — the span
:class:`~repro.obs.spans.Tracer`, the :class:`~repro.obs.metrics
.MetricsSampler` and the :class:`~repro.obs.recorder.FlightRecorder` —
and is what the hot-path hook sites talk to through
:data:`repro.obs.hooks.ACTIVE`.  Turn it on per run::

    report = scenario.run(obs=True)                  # defaults
    report = scenario.run(obs=ObsConfig(dump_dir="obs-dumps"))

    obs = Observability(ObsConfig(scheduler_trace=True))
    report = scenario.run(obs=obs)
    obs.export_chrome("trace.json")                  # open in Perfetto
    obs.span_fingerprint()                           # byte-deterministic

Determinism rules: span ids come from a sequence counter, timestamps from
the simulated clock, dump file names from a counter — nothing reads wall
clock or process randomness, so two identical runs produce byte-identical
span trees, metrics series and flight dumps.  With observability *off*
every hook site reduces to one ``is not None`` test and wire bytes are
untouched, so existing scenarios' report fingerprints never move.  With it
*on* the simulation honestly models the tracing overhead — in-band
context headers enlarge messages, the sampler's ticks are scheduler
events — so an observed run's report fingerprint differs from an
unobserved one (while staying byte-identical run-to-run);
``report.metrics`` itself stays outside ``ClusterReport.fingerprint()``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ReproError
from repro.obs import hooks
from repro.obs.context import TraceContext
from repro.obs.export import (
    export_chrome_trace,
    export_metrics_json,
    export_spans_jsonl,
)
from repro.obs.metrics import MetricsReport, MetricsSampler
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import (
    KIND_ATTEMPT,
    KIND_CALL,
    KIND_REBIND,
    KIND_SERVER,
    Span,
    Tracer,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.driver import FleetDriver
    from repro.obs.analyze import LatencyProfile
    from repro.obs.slo import SLO, SLOResult

#: Environment variable consulted when ``ObsConfig.dump_dir`` is unset —
#: lets parallel pytest workers / CI jobs redirect flight dumps without
#: threading a config through every fixture.
DUMP_DIR_ENV = "REPRO_OBS_DUMP_DIR"


@dataclass(frozen=True)
class ObsConfig:
    """What to collect and how much memory to grant it."""

    #: Collect causal spans (client call / attempt / server / rebind trees).
    spans: bool = True
    #: Sample time-series gauges onto ``ClusterReport.metrics``.
    metrics: bool = True
    #: Simulated seconds between metric samples.
    sample_interval: float = 0.005
    #: Bound of the finished-span ring (and the scheduler dispatch trace).
    ring_capacity: int = 4096
    #: Bound of each metrics series.
    max_samples: int = 4096
    #: Where flight-recorder dumps are written.  None consults the
    #: ``REPRO_OBS_DUMP_DIR`` environment variable at install time and
    #: falls back to in-memory only.
    dump_dir: "str | Path | None" = None
    #: Maximum flight dumps kept per run.
    max_dumps: int = 8
    #: Consecutive ``NoAliveReplicaError`` selections that count as a storm.
    storm_threshold: int = 8
    #: Also record the scheduler's ``(time, label)`` dispatch trace,
    #: ring-bounded by ``ring_capacity`` (the public face of
    #: ``Scheduler.enable_tracing``).
    scheduler_trace: bool = False
    #: Declarative :class:`~repro.obs.slo.SLO` objectives: each registers a
    #: cumulative good/total gauge pair on the sampler and is evaluated
    #: (compliance + burn-rate alerts) onto ``ClusterReport.slo_results``.
    slos: "tuple[SLO, ...]" = ()


class Observability:
    """One run's observability state and the API the hook sites call."""

    def __init__(self, config: ObsConfig | None = None) -> None:
        self.config = config or ObsConfig()
        self.scheduler = None
        self.tracer: Tracer | None = None
        self.sampler: MetricsSampler | None = None
        self.recorder: FlightRecorder | None = None
        #: ``(service, tier, policy)`` of the most recent registry decision;
        #: the fleet driver reads it into the attempt span's attributes.
        self.last_select: tuple[str, "str | None", str] | None = None
        #: Transport-interceptor event count (client sends + server receives).
        self.transport_events = 0
        self._no_alive_streak = 0
        self._last_server_span: "Span | None" = None
        self._installed = False

    # -- resolution and lifecycle -----------------------------------------

    @staticmethod
    def resolve(obs: "Observability | ObsConfig | bool | None") -> "Observability | None":
        """Normalise a ``Scenario.run(obs=...)`` argument."""
        if obs is None or obs is False:
            return None
        if obs is True:
            return Observability()
        if isinstance(obs, ObsConfig):
            return Observability(obs)
        if isinstance(obs, Observability):
            return obs
        raise ReproError(
            f"obs must be an Observability, ObsConfig, bool or None, got {obs!r}"
        )

    def install(self, scheduler) -> "Observability":
        """Arm the hook sites for one run on ``scheduler``'s world.

        Re-installing (a second run with the same instance) starts fresh
        collectors, so each run's fingerprints describe that run alone.
        """
        config = self.config
        self.scheduler = scheduler
        self.tracer = Tracer(scheduler, config.ring_capacity)
        dump_dir = config.dump_dir
        if dump_dir is None:
            dump_dir = os.environ.get(DUMP_DIR_ENV) or None
        self.recorder = FlightRecorder(self.tracer, dump_dir, config.max_dumps)
        self.sampler = (
            MetricsSampler(scheduler, config.sample_interval, config.max_samples)
            if config.metrics
            else None
        )
        self.last_select = None
        self.transport_events = 0
        self._no_alive_streak = 0
        self._last_server_span = None
        hooks.ACTIVE = self
        from repro.net import transport

        transport.register_interceptor(self._transport_event)
        if config.scheduler_trace:
            scheduler.enable_tracing(limit=config.ring_capacity)
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Disarm the hook sites; collected data stays readable."""
        if not self._installed:
            return
        self._installed = False
        if hooks.ACTIVE is self:
            hooks.ACTIVE = None
        hooks.CONTEXT = None
        hooks.SERVER_WIRE_CONTEXT = None
        from repro.net import transport

        transport.unregister_interceptor(self._transport_event)
        if self.sampler is not None:
            self.sampler.stop()

    # -- run lifecycle (fleet-driver hooks) --------------------------------

    def begin_run(self, driver: "FleetDriver") -> None:
        """Register the world's gauges and start the sampler."""
        sampler = self.sampler
        if sampler is None:
            return
        scheduler = self.scheduler
        seen_nodes: set[int] = set()
        for entry in driver.registry.services:
            replicas = entry.replicas

            def in_flight(replicas=replicas) -> int:
                return sum(replica.in_flight for replica in replicas)

            def stall_depth(replicas=replicas) -> int:
                return sum(
                    replica.call_handler.stall_queue_depth for replica in replicas
                )

            sampler.register(f"service.{entry.name}.in_flight", in_flight)
            sampler.register(f"service.{entry.name}.stall_queue", stall_depth)
            # Recency watermark age: simulated seconds since the service's
            # published version frontier last advanced — the §6 quantity a
            # stalled publication or a partitioned replica makes grow.
            state = {"frontier": -1, "since": scheduler.now}

            def watermark_age(replicas=replicas, state=state) -> float:
                frontier = max(
                    (replica.publisher.version for replica in replicas), default=-1
                )
                if frontier != state["frontier"]:
                    state["frontier"] = frontier
                    state["since"] = scheduler.now
                return scheduler.now - state["since"]

            sampler.register(f"service.{entry.name}.watermark_age", watermark_age)
            for replica in replicas:
                node = replica.node
                if node is None or id(node) in seen_nodes:
                    continue
                seen_nodes.add(id(node))
                core = node.server_core
                if core is not None:

                    def busy_cores(core=core) -> int:
                        return core.busy_cores

                    sampler.register(f"node.{node.name}.busy_cores", busy_cores)
                node_replicas = [
                    r
                    for service in driver.registry.services
                    for r in service.replicas
                    if r.node is node
                ]

                def node_stall(node_replicas=node_replicas) -> int:
                    return sum(
                        r.call_handler.stall_queue_depth for r in node_replicas
                    )

                sampler.register(f"node.{node.name}.stall_queue", node_stall)
        for flow in driver.flows:

            def backlog(flow=flow) -> float:
                return flow.backlog

            sampler.register(f"flow.{flow.name}.backlog", backlog)
        if self.config.slos:
            from repro.obs.slo import register_slo_gauges

            register_slo_gauges(sampler, driver, self.config.slos)
        sampler.start()

    def end_run(self) -> None:
        """Stop the sampler (the run's window closed)."""
        if self.sampler is not None:
            self.sampler.stop()

    # -- client-call spans (fleet-driver hooks) ----------------------------

    def begin_call(self, client, operation: str) -> "Span | None":
        """Root span of one client call (covers every retry attempt)."""
        if not self.config.spans:
            return None
        return self.tracer.begin(
            operation,
            KIND_CALL,
            attrs={
                "client": client.report.name,
                "service": client.plan.service,
                "protocol": client.plan.protocol,
                "probe": client._probe,
            },
        )

    def begin_attempt(self, client, operation: str, replica) -> "Span | None":
        """One attempt span, child of the call span, carrying the registry's
        routing decision (replica, node, version tier, policy)."""
        if not self.config.spans:
            return None
        select = self.last_select
        return self.tracer.begin(
            operation,
            KIND_ATTEMPT,
            parent=client._call_span,
            attrs={
                "attempt": client._attempts,
                "replica": replica.index,
                "node": replica.node.name if replica.node is not None else None,
                "tier": select[1] if select is not None else None,
                "policy": select[2] if select is not None else None,
            },
        )

    def end_attempt(self, client, outcome: str) -> None:
        """Close the in-flight attempt span with its outcome."""
        span = client._attempt_span
        if span is not None:
            client._attempt_span = None
            self.tracer.end(span, {"outcome": outcome})

    def end_call(self, client, outcome: str) -> None:
        """Close the call span; a silent wrong answer trips the recorder."""
        span = client._call_span
        if span is not None:
            client._call_span = None
            self.tracer.end(span, {"outcome": outcome})
        if outcome == "other":
            self.recorder.trip(
                "silent-wrong-answer",
                client=client.report.name,
                service=client.plan.service,
                operation=client._operation,
            )

    def begin_rebind(self, client, replica) -> "Span | None":
        """Span covering a §5.7 stub refresh after a stale fault."""
        if not self.config.spans:
            return None
        return self.tracer.begin(
            "rebind",
            KIND_REBIND,
            attrs={
                "client": client.report.name,
                "service": client.plan.service,
                "replica": replica.index,
            },
        )

    def end_span(self, span: "Span | None", attrs: "dict | None" = None) -> None:
        """Close an optional span (no-op on None)."""
        if span is not None:
            self.tracer.end(span, attrs)

    # -- server-side spans (call-handler hook) -----------------------------

    def server_dispatch(self, handler, operation: str, outcome) -> None:
        """Open a server span for one dispatched call.

        The wire context staged by the protocol endpoint (SOAP Header block
        or GIOP service-context slot) is consumed here — synchronously, in
        the same dispatch frame that staged it — and becomes the span's
        parent, which is how server-side work joins the client's causal
        tree.  The span closes when the handler reports through the
        ``DispatchOutcome`` callbacks, so a §5.7 stall shows up as server
        time, not as transport time.
        """
        wire = hooks.SERVER_WIRE_CONTEXT
        hooks.SERVER_WIRE_CONTEXT = None
        self._last_server_span = None
        if not self.config.spans or wire is None:
            return
        parent = TraceContext.decode(wire)
        if parent is None:
            return
        span = self.tracer.begin(
            f"server.{operation}",
            KIND_SERVER,
            parent=parent,
            attrs={
                "node": handler.manager.host.name,
                "class": handler.dynamic_class.name,
                "queued": handler.stalled,
            },
        )
        on_result, on_fault = outcome.on_result, outcome.on_fault
        tracer = self.tracer
        obs = self

        def traced_result(value, signature):
            tracer.end(span, {"outcome": "result"})
            obs._last_server_span = span
            on_result(value, signature)

        def traced_fault(error):
            tracer.end(span, {"outcome": "fault", "fault": type(error).__name__})
            obs._last_server_span = span
            on_fault(error)

        outcome.on_result = traced_result
        outcome.on_fault = traced_fault

    def note_server_charge(self, cost: float, wait: float) -> None:
        """Stamp the just-closed server span with its CPU-charge window.

        The transport endpoint calls this from the same synchronous frame
        in which the dispatch outcome resolved: ``cost`` is the modeled
        CPU service time and ``wait`` the queueing delay a bounded
        :class:`~repro.sim.servercore.ServerCore` imposed before it.  The
        span gains absolute ``cpu_from`` / ``cpu_until`` boundaries, which
        is what lets :mod:`repro.obs.analyze` split reply latency into
        ``core_wait`` + ``cpu`` instead of folding both into network time.
        A settle that lands in a later frame (or with no traced dispatch,
        e.g. an interface-document fetch) finds no pending span and is a
        no-op — attribution degrades gracefully, the sum invariant holds
        either way.
        """
        span = self._last_server_span
        self._last_server_span = None
        if span is None or span.end != self.scheduler.now:
            return
        span.attrs["cpu_from"] = span.end + wait
        span.attrs["cpu_until"] = span.end + wait + cost

    # -- registry hooks ----------------------------------------------------

    def note_select(self, service: str, tier: "str | None", policy: str) -> None:
        """Record a successful replica selection's routing decision."""
        self.last_select = (service, tier, policy)
        self._no_alive_streak = 0

    def note_no_alive(self, service: str) -> None:
        """Count a ``NoAliveReplicaError``; a streak trips the recorder."""
        self._no_alive_streak += 1
        if self._no_alive_streak == self.config.storm_threshold:
            self.recorder.trip(
                "no-alive-replica-storm",
                service=service,
                consecutive_failures=self._no_alive_streak,
            )

    # -- invariant trips ---------------------------------------------------

    def note_recency_violation(self, span: "Span | None" = None, **detail: Any) -> None:
        """A §6 recency violation: annotate the causal span and dump."""
        if span is not None:
            span.attrs["recency_violation"] = True
            detail.setdefault("trace_id", span.trace_id)
            detail.setdefault("span_id", span.span_id)
        self.recorder.trip("recency-violation", **detail)

    # -- instants (faults, rollouts, cohort flows) -------------------------

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a point event as a zero-duration span."""
        if self.config.spans:
            self.tracer.instant(name, attrs=attrs)

    # -- transport interceptor ---------------------------------------------

    def _transport_event(self, kind: str, address: Any, size: int, description: str) -> None:
        self.transport_events += 1
        if kind != "client_send" or not self.config.spans:
            return
        context = hooks.CONTEXT
        if context is None:
            return
        span = self.tracer._open.get(context.span_id)
        if span is not None:
            span.add_event(
                self.scheduler.now,
                "transport.send",
                {"to": str(address), "bytes": size},
            )

    # -- results -----------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Finished spans (the bounded ring), oldest first."""
        return self.tracer.spans if self.tracer is not None else []

    @property
    def flight_dumps(self) -> list[dict]:
        """Flight-recorder dumps collected so far."""
        return self.recorder.dumps if self.recorder is not None else []

    @property
    def dispatch_trace(self) -> list[tuple[float, str]]:
        """The scheduler's ``(time, label)`` trace (``scheduler_trace``)."""
        return self.scheduler.trace if self.scheduler is not None else []

    def span_fingerprint(self) -> str:
        """Byte-deterministic digest of the finished span tree."""
        if self.tracer is None:
            raise ReproError("observability was never installed")
        return self.tracer.fingerprint()

    def metrics_report(self) -> "MetricsReport | None":
        """The sampled series (None when metrics are disabled)."""
        return self.sampler.report() if self.sampler is not None else None

    def evaluate_slos(self) -> "list[SLOResult]":
        """Evaluate the config's declared SLOs over the sampled series."""
        if not self.config.slos:
            return []
        from repro.obs.slo import evaluate_slos

        return evaluate_slos(self.metrics_report(), self.config.slos)

    def profile(self) -> "LatencyProfile":
        """Critical-path latency attribution over the finished spans."""
        from repro.obs.analyze import build_profile

        return build_profile(self.spans)

    def flush_spans(self, trace_writer) -> None:
        """Append every finished span to a ``repro-trace/1`` writer."""
        for span in self.spans:
            trace_writer.note_span(span.to_dict())

    def export_jsonl(self, path: "str | Path") -> Path:
        """Write finished spans as JSON lines."""
        return export_spans_jsonl(self.spans, path)

    def export_chrome(self, path: "str | Path") -> Path:
        """Write a Perfetto-loadable Chrome ``trace_event`` file."""
        return export_chrome_trace(self.spans, path)

    def export_metrics(self, path: "str | Path") -> Path:
        """Write the metrics series + fingerprint (and any declared SLOs,
        so ``analyze slo`` can re-evaluate them offline) as JSON."""
        report = self.metrics_report()
        if report is None:
            raise ReproError("metrics are disabled in this ObsConfig")
        return export_metrics_json(report, path, slos=self.config.slos)

    def export_profile(self, path: "str | Path") -> Path:
        """Write the latency-attribution profile as JSON."""
        import json

        path = Path(path)
        path.write_text(json.dumps(self.profile().to_dict(), indent=2) + "\n")
        return path

    def __repr__(self) -> str:
        spans = len(self.tracer.finished) if self.tracer is not None else 0
        return f"Observability(spans={spans}, installed={self._installed})"


__all__ = ["ObsConfig", "Observability", "TraceContext"]
