"""Nil-cost observability hook points for the hot paths.

This module is the *only* part of :mod:`repro.obs` the hot layers
(transport, simnet, registry, call handlers, protocol stacks) import, and
it imports nothing in turn — so adding observability to a module can never
create an import cycle and never slows an untraced run beyond one module
attribute load and an ``is not None`` test (the same discipline as
``Scheduler.tracing`` guarding f-string labels).

Three module globals carry all the state:

``ACTIVE``
    The installed :class:`repro.obs.api.Observability` instance, or
    ``None`` while observability is off.  Every hook site guards with
    ``if hooks.ACTIVE is not None``.

``CONTEXT``
    The :class:`~repro.obs.context.TraceContext` of the client attempt
    currently being *issued*.  The fleet driver sets it immediately before
    the synchronous protocol-stack call construction and resets it right
    after, so the SOAP/GIOP encoders and the transport interceptor read it
    without any plumbing through intermediate signatures.  The simulation
    is single-threaded and call construction never yields to the
    scheduler, so a plain module global is race-free by construction.

``SERVER_WIRE_CONTEXT``
    The *encoded* trace context a protocol server decoded from an
    incoming message (SOAP header block / GIOP service context), staged
    for the technology-neutral :class:`~repro.core.sde.call_handler
    .CallHandler` to consume synchronously when ``dispatch`` runs.  The
    consumer clears it, so a message without a context never inherits a
    stale one.
"""

from __future__ import annotations

#: The installed Observability instance (None = observability off).
ACTIVE = None

#: TraceContext of the client attempt currently being issued (or None).
CONTEXT = None

#: Encoded wire context staged by a protocol server for CallHandler.dispatch.
SERVER_WIRE_CONTEXT = None
