"""``python -m repro.obs`` — alias for ``python -m repro.obs.analyze``."""

import sys

from repro.obs.analyze import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
