"""Declarative service-level objectives with multi-window burn-rate alerts.

An :class:`SLO` names an objective over one run's behaviour — "99% of
calls complete under 40ms" (:func:`latency_slo`), "99.9% of calls get an
answer" (:func:`availability_slo`), "no call ever observes a §6 recency
violation" (:func:`recency_slo`).  Declared objectives ride the existing
metrics pipeline: each one registers a cumulative good/total gauge pair
(``slo.<name>.good`` / ``slo.<name>.total``) on the
:class:`~repro.obs.metrics.MetricsSampler`, so the raw counts land in
``report.metrics`` like any other series — byte-deterministic, exportable,
replayable offline.

Evaluation (:func:`evaluate_slos`) is pure post-processing over those
series.  Besides end-of-run compliance it computes **multi-window
burn-rate alerts** in the SRE-workbook style: the *burn rate* over a
window is the fraction of the error budget (``1 - objective``) consumed
per unit of budget, ``bad_fraction / budget``; an alert fires at the
samples where *both* a long window and a short window burn faster than the
window's ``factor`` — the long window proves the breach is sustained, the
short window proves it is still happening.  Window lengths default to
deterministic fractions of the sampled span (25%/5% at 4×, 50%/10% at 2×)
so the same drill always evaluates the same windows; pass explicit
:class:`BurnWindow` tuples to pin real-time-style windows.

Division-by-zero discipline: a perfection objective (``objective == 1.0``)
has zero budget, so any bad event is an infinite burn; to keep results
JSON-clean the budget is floored at ``1e-9`` (one bad call then shows up
as a burn rate around ``1e9``, unmistakably alerting, never ``inf``).

Results surface as :class:`SLOResult` rows on ``ClusterReport.slo_results``
when the run's :class:`~repro.obs.api.ObsConfig` declared objectives, and
are re-derivable offline via ``python -m repro.obs.analyze slo`` from an
exported metrics JSON (the declarations are embedded alongside the
series).  Everything is deterministic: same run, same series, same alerts.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsReport, MetricsSampler

#: The floor applied to ``1 - objective`` so perfection objectives produce
#: huge finite burn rates instead of JSON-hostile infinities.
MIN_ERROR_BUDGET = 1e-9

KIND_LATENCY = "latency"
KIND_AVAILABILITY = "availability"
KIND_RECENCY = "recency"
_KINDS = (KIND_LATENCY, KIND_AVAILABILITY, KIND_RECENCY)


@dataclass(frozen=True)
class BurnWindow:
    """One long/short window pair and the burn factor that trips it."""

    #: Long-window length in simulated seconds (sustained-breach proof).
    long_s: float
    #: Short-window length in simulated seconds (still-happening proof).
    short_s: float
    #: Alert when both windows burn budget at >= this multiple of steady use.
    factor: float

    def to_dict(self) -> dict[str, float]:
        return {"long_s": self.long_s, "short_s": self.short_s, "factor": self.factor}

    @staticmethod
    def from_dict(payload: dict) -> "BurnWindow":
        return BurnWindow(
            long_s=payload["long_s"],
            short_s=payload["short_s"],
            factor=payload["factor"],
        )


@dataclass(frozen=True)
class SLO:
    """One declarative objective, evaluated over ``report.metrics``."""

    #: Unique name; the gauge pair is ``slo.<name>.good`` / ``.total``.
    name: str
    #: ``latency`` / ``availability`` / ``recency``.
    kind: str
    #: Target good/total fraction, e.g. ``0.999``.
    objective: float
    #: Latency threshold in simulated seconds (latency SLOs only).
    threshold_s: "float | None" = None
    #: Restrict to one service's calls (None = the whole fleet).
    service: "str | None" = None
    #: Burn-rate window pairs; empty = deterministic span-fraction defaults.
    windows: tuple[BurnWindow, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ReproError(f"unknown SLO kind {self.kind!r} (expected {_KINDS})")
        if not 0.0 < self.objective <= 1.0:
            raise ReproError(
                f"SLO objective must be in (0, 1], got {self.objective!r}"
            )
        if self.kind == KIND_LATENCY and self.threshold_s is None:
            raise ReproError(f"latency SLO {self.name!r} needs threshold_s")

    @property
    def good_series(self) -> str:
        return f"slo.{self.name}.good"

    @property
    def total_series(self) -> str:
        return f"slo.{self.name}.total"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "threshold_s": self.threshold_s,
            "service": self.service,
            "windows": [window.to_dict() for window in self.windows],
        }

    @staticmethod
    def from_dict(payload: dict) -> "SLO":
        return SLO(
            name=payload["name"],
            kind=payload["kind"],
            objective=payload["objective"],
            threshold_s=payload.get("threshold_s"),
            service=payload.get("service"),
            windows=tuple(
                BurnWindow.from_dict(window) for window in payload.get("windows", [])
            ),
        )


def latency_slo(
    name: str,
    threshold_s: float,
    objective: float = 0.99,
    service: "str | None" = None,
    windows: Iterable[BurnWindow] = (),
) -> SLO:
    """``objective`` of completed calls finish within ``threshold_s``."""
    return SLO(
        name=name,
        kind=KIND_LATENCY,
        objective=objective,
        threshold_s=threshold_s,
        service=service,
        windows=tuple(windows),
    )


def availability_slo(
    name: str,
    objective: float = 0.999,
    service: "str | None" = None,
    windows: Iterable[BurnWindow] = (),
) -> SLO:
    """``objective`` of calls get an answer (explicit §5.7 faults count as
    answers — the paper's point is that stale faults are *protocol*, not
    failure; only silent wrong answers and abandoned calls burn budget)."""
    return SLO(
        name=name,
        kind=KIND_AVAILABILITY,
        objective=objective,
        service=service,
        windows=tuple(windows),
    )


def recency_slo(
    name: str,
    objective: float = 1.0,
    service: "str | None" = None,
    windows: Iterable[BurnWindow] = (),
) -> SLO:
    """``objective`` of completed calls observe no §6 recency violation
    (the default demands perfection — the guarantee the repo asserts)."""
    return SLO(
        name=name,
        kind=KIND_RECENCY,
        objective=objective,
        service=service,
        windows=tuple(windows),
    )


# -- gauge registration (run-time side) ----------------------------------------


def register_slo_gauges(sampler: "MetricsSampler", driver: Any, slos: Sequence[SLO]) -> None:
    """Register each SLO's cumulative good/total gauge pair on ``sampler``.

    The gauges are pure functions of the fleet's client-report state at the
    sampling instant (cumulative counters, never reset), so the series
    inherit the sampler's byte-determinism for free.  Cohort flows
    contribute to recency SLOs (their reports carry the violation counter)
    but not to latency/availability ones — flow latency lives in streaming
    histograms, not per-call lists.
    """
    for slo in slos:
        clients = [
            client
            for client in driver.clients
            if slo.service is None or client.plan.service == slo.service
        ]
        flows = [
            flow
            for flow in driver.flows
            if slo.service is None or getattr(flow, "service", None) == slo.service
        ]
        if slo.kind == KIND_LATENCY:
            threshold = slo.threshold_s

            def good(clients=clients, threshold=threshold) -> int:
                return sum(
                    1
                    for client in clients
                    for rtt in client.report.rtts
                    if rtt <= threshold
                )

            def total(clients=clients) -> int:
                return sum(len(client.report.rtts) for client in clients)

        elif slo.kind == KIND_AVAILABILITY:

            def good(clients=clients) -> int:
                return sum(_answered(client.report) for client in clients)

            def total(clients=clients) -> int:
                return sum(
                    _answered(client.report)
                    + client.report.other_faults
                    + client.report.abandoned_calls
                    for client in clients
                )

        else:  # KIND_RECENCY

            def good(clients=clients, flows=flows) -> int:
                completed = sum(_completed(client.report) for client in clients)
                violations = sum(
                    client.report.recency_violations for client in clients
                ) + sum(flow.report.recency_violations for flow in flows)
                return max(completed - violations, 0)

            def total(clients=clients) -> int:
                return sum(_completed(client.report) for client in clients)

        sampler.register(slo.good_series, good)
        sampler.register(slo.total_series, total)


def _answered(report: Any) -> int:
    """Calls that got an answer (results plus explicit protocol faults)."""
    return report.successes + report.stale_faults + report.not_initialized_faults


def _completed(report: Any) -> int:
    """Calls that ran to completion, right or wrong."""
    return _answered(report) + report.other_faults


# -- evaluation (post-run / offline side) --------------------------------------


@dataclass(frozen=True)
class SLOAlert:
    """One window pair's burn-rate alert over a run."""

    long_s: float
    short_s: float
    factor: float
    #: Simulated time of the first sample where both windows burned hot.
    first_at: float
    #: How many samples alerted.
    samples: int
    #: Peak long-window burn rate observed while alerting.
    peak_burn: float

    def to_dict(self) -> dict[str, float]:
        return {
            "long_s": self.long_s,
            "short_s": self.short_s,
            "factor": self.factor,
            "first_at": self.first_at,
            "samples": self.samples,
            "peak_burn": self.peak_burn,
        }


@dataclass
class SLOResult:
    """One SLO's end-of-run verdict plus its burn-rate alerts."""

    slo: SLO
    good: float = 0.0
    total: float = 0.0
    compliance: float = 1.0
    breached: bool = False
    #: True when the run's metrics carried no series for this SLO (metrics
    #: disabled, or the SLO was declared after the run).
    missing: bool = False
    alerts: tuple[SLOAlert, ...] = field(default_factory=tuple)

    @property
    def name(self) -> str:
        return self.slo.name

    @property
    def ok(self) -> bool:
        return not self.breached

    def to_dict(self) -> dict[str, Any]:
        return {
            "slo": self.slo.to_dict(),
            "good": self.good,
            "total": self.total,
            "compliance": self.compliance,
            "breached": self.breached,
            "missing": self.missing,
            "alerts": [alert.to_dict() for alert in self.alerts],
        }

    def __repr__(self) -> str:
        state = "missing" if self.missing else ("BREACHED" if self.breached else "ok")
        return (
            f"SLOResult({self.slo.name!r} {state}: "
            f"{self.compliance:.6f} vs {self.slo.objective})"
        )


def default_windows(span_s: float) -> tuple[BurnWindow, ...]:
    """Deterministic window pairs derived from the sampled span length."""
    if span_s <= 0:
        return ()
    return (
        BurnWindow(long_s=span_s * 0.25, short_s=span_s * 0.05, factor=4.0),
        BurnWindow(long_s=span_s * 0.50, short_s=span_s * 0.10, factor=2.0),
    )


def _window_bad_fraction(
    times: Sequence[float],
    good: Sequence[float],
    total: Sequence[float],
    index: int,
    window_s: float,
) -> float:
    """Bad fraction of the events that completed in ``(t - window, t]``.

    The series are cumulative counters, so the window's event counts are
    differences against the last sample at or before the window start.
    """
    start = times[index] - window_s
    j = bisect_left(times, start)
    good_base = good[j - 1] if j > 0 else 0.0
    total_base = total[j - 1] if j > 0 else 0.0
    delta_total = total[index] - total_base
    if delta_total <= 0:
        return 0.0
    delta_good = good[index] - good_base
    return (delta_total - delta_good) / delta_total


def evaluate_slo(metrics: "MetricsReport", slo: SLO) -> SLOResult:
    """Evaluate one SLO over a run's sampled series."""
    good_series = metrics.series.get(slo.good_series)
    total_series = metrics.series.get(slo.total_series)
    times = metrics.times
    if good_series is None or total_series is None or not times:
        return SLOResult(slo=slo, missing=True)
    good, total = good_series[-1], total_series[-1]
    compliance = (good / total) if total > 0 else 1.0
    breached = total > 0 and compliance < slo.objective
    budget = max(1.0 - slo.objective, MIN_ERROR_BUDGET)
    span = (times[-1] - times[0]) + metrics.interval
    windows = slo.windows or default_windows(span)
    alerts = []
    for window in windows:
        first_at = None
        alerting = 0
        peak = 0.0
        for index in range(len(times)):
            burn_long = (
                _window_bad_fraction(times, good_series, total_series, index, window.long_s)
                / budget
            )
            if burn_long < window.factor:
                continue
            burn_short = (
                _window_bad_fraction(times, good_series, total_series, index, window.short_s)
                / budget
            )
            if burn_short < window.factor:
                continue
            if first_at is None:
                first_at = times[index]
            alerting += 1
            peak = max(peak, burn_long)
        if first_at is not None:
            alerts.append(
                SLOAlert(
                    long_s=window.long_s,
                    short_s=window.short_s,
                    factor=window.factor,
                    first_at=first_at,
                    samples=alerting,
                    peak_burn=peak,
                )
            )
    return SLOResult(
        slo=slo,
        good=good,
        total=total,
        compliance=compliance,
        breached=breached,
        alerts=tuple(alerts),
    )


def evaluate_slos(
    metrics: "MetricsReport | None", slos: Sequence[SLO]
) -> list[SLOResult]:
    """Evaluate every declared SLO; tolerant of missing metrics/series."""
    if metrics is None:
        return [SLOResult(slo=slo, missing=True) for slo in slos]
    return [evaluate_slo(metrics, slo) for slo in slos]


def format_results(results: Sequence[SLOResult]) -> str:
    """Human-readable SLO verdicts (the CLI's default output)."""
    if not results:
        return "no SLOs declared"
    lines = []
    for result in results:
        if result.missing:
            lines.append(f"{result.name}: no data (metrics missing this SLO's series)")
            continue
        verdict = "BREACHED" if result.breached else "ok"
        lines.append(
            f"{result.name}: {verdict} — compliance {result.compliance:.6f} "
            f"(objective {result.slo.objective}, good {result.good:.0f} / "
            f"total {result.total:.0f})"
        )
        for alert in result.alerts:
            lines.append(
                f"  burn alert: {alert.factor}x over "
                f"{alert.long_s * 1e3:.1f}ms/{alert.short_s * 1e3:.1f}ms windows "
                f"from t={alert.first_at:.3f}s "
                f"({alert.samples} samples, peak {alert.peak_burn:.1f}x)"
            )
    return "\n".join(lines)


__all__ = [
    "SLO",
    "BurnWindow",
    "SLOAlert",
    "SLOResult",
    "latency_slo",
    "availability_slo",
    "recency_slo",
    "register_slo_gauges",
    "evaluate_slo",
    "evaluate_slos",
    "default_windows",
    "format_results",
]
