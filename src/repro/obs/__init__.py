"""``repro.obs`` — deterministic causal tracing and time-series metrics.

Three pillars (see ARCHITECTURE.md "Observability"):

* **Causal spans** (:mod:`repro.obs.spans`) — a Dapper-style span tree per
  client call, propagated in-band over both middleware stacks (a SOAP
  header block, a GIOP service-context slot) and covering replica
  selection, retries, server-side §5.7 stall queueing and rebinds;
* **Time-series metrics** (:mod:`repro.obs.metrics`) — a sampler on the
  simulation scheduler recording per-node/per-service/per-flow gauges at a
  fixed simulated-time interval, attached to ``ClusterReport.metrics``;
* **Flight recorder + exporters** (:mod:`repro.obs.recorder`,
  :mod:`repro.obs.export`) — a bounded span ring auto-dumped when an
  invariant trips, plus JSONL and Chrome ``trace_event`` (Perfetto)
  exporters.

On top sits the analytics layer: :mod:`repro.obs.analyze` decomposes
every call's RTT exactly into named latency components (critical-path
attribution, tail attribution, run-diff) and :mod:`repro.obs.slo`
evaluates declarative latency/availability/recency objectives with
multi-window burn-rate alerts over the sampled series.  Both are pure
post-processing with a CLI front door, ``python -m repro.obs.analyze``.

Everything is off (and nil-cost) unless a run opts in::

    report = scenario.run(obs=True)

This ``__init__`` resolves its exports lazily (PEP 562) so the hot
modules can import :mod:`repro.obs.hooks` — which imports nothing —
without dragging the rest of the package (or an import cycle) into the
fast path.
"""

from __future__ import annotations

_EXPORTS = {
    "ObsConfig": ("repro.obs.api", "ObsConfig"),
    "Observability": ("repro.obs.api", "Observability"),
    "TraceContext": ("repro.obs.context", "TraceContext"),
    "Span": ("repro.obs.spans", "Span"),
    "Tracer": ("repro.obs.spans", "Tracer"),
    "MetricsSampler": ("repro.obs.metrics", "MetricsSampler"),
    "MetricsReport": ("repro.obs.metrics", "MetricsReport"),
    "FlightRecorder": ("repro.obs.recorder", "FlightRecorder"),
    "export_spans_jsonl": ("repro.obs.export", "export_spans_jsonl"),
    "export_chrome_trace": ("repro.obs.export", "export_chrome_trace"),
    "export_metrics_json": ("repro.obs.export", "export_metrics_json"),
    "chrome_trace_events": ("repro.obs.export", "chrome_trace_events"),
    "CallAttribution": ("repro.obs.analyze", "CallAttribution"),
    "LatencyProfile": ("repro.obs.analyze", "LatencyProfile"),
    "ProfileDiff": ("repro.obs.analyze", "ProfileDiff"),
    "attribute_calls": ("repro.obs.analyze", "attribute_calls"),
    "build_profile": ("repro.obs.analyze", "build_profile"),
    "diff_profiles": ("repro.obs.analyze", "diff_profiles"),
    "load_spans": ("repro.obs.analyze", "load_spans"),
    "SLO": ("repro.obs.slo", "SLO"),
    "SLOResult": ("repro.obs.slo", "SLOResult"),
    "BurnWindow": ("repro.obs.slo", "BurnWindow"),
    "latency_slo": ("repro.obs.slo", "latency_slo"),
    "availability_slo": ("repro.obs.slo", "availability_slo"),
    "recency_slo": ("repro.obs.slo", "recency_slo"),
    "evaluate_slos": ("repro.obs.slo", "evaluate_slos"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
