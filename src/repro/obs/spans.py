"""Causal spans over simulated time.

A :class:`Span` is one timed unit of work in a causal tree: a client call,
one attempt against a selected replica, the server-side dispatch covering
§5.7 stall queueing plus execution, a rebind.  Zero-duration *instant*
spans mark point events (faults injected, rollout waves, transport
deliveries).  All timestamps come from the simulation scheduler's clock
and all ids from one sequence counter, so the full span set — and its
:meth:`Tracer.fingerprint` — is byte-deterministic for a given scenario.

The :class:`Tracer` keeps finished spans in a bounded ring
(``collections.deque(maxlen=...)``), the same memory discipline as the
flight recorder: a million-call run retains the most recent window, never
an unbounded log.
"""

from __future__ import annotations

import hashlib
import itertools
from collections import deque
from typing import Any, Iterable

from repro.obs.context import TraceContext

#: Span kinds (the ``cat`` field in Chrome trace exports).
KIND_CALL = "call"
KIND_ATTEMPT = "attempt"
KIND_SERVER = "server"
KIND_REBIND = "rebind"
KIND_INSTANT = "instant"


class Span:
    """One node of a causal trace tree."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "kind",
        "start",
        "end",
        "attrs",
        "events",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        name: str,
        kind: str,
        start: float,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start
        #: Simulated end time (None while the span is open).
        self.end: float | None = None
        self.attrs: dict[str, Any] = {}
        #: Point events inside the span: ``(time, name, attrs)`` triples.
        self.events: list[tuple[float, str, dict[str, Any]]] = []

    @property
    def context(self) -> TraceContext:
        """The propagation context naming this span as the parent."""
        return TraceContext(self.trace_id, self.span_id)

    def add_event(self, time: float, name: str, attrs: dict[str, Any] | None = None) -> None:
        """Attach a point event to this span."""
        self.events.append((time, name, dict(attrs) if attrs else {}))

    def snapshot(self) -> tuple:
        """A hashable, order-stable snapshot of the full span state."""
        return (
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.name,
            self.kind,
            self.start,
            self.end,
            tuple(sorted((key, repr(value)) for key, value in self.attrs.items())),
            tuple(
                (time, name, tuple(sorted((k, repr(v)) for k, v in attrs.items())))
                for time, name, attrs in self.events
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able rendering (exporters and flight-recorder dumps)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "events": [
                {"time": time, "name": name, "attrs": attrs}
                for time, name, attrs in self.events
            ],
        }

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{(self.end - self.start) * 1e3:.3f}ms"
        return f"Span({self.kind}:{self.name!r} #{self.span_id}, {state})"


class Tracer:
    """Mints spans, keeps the bounded ring of finished ones."""

    def __init__(self, scheduler, capacity: int = 4096) -> None:
        self.scheduler = scheduler
        self.capacity = capacity
        self._ids = itertools.count(1)
        #: Finished spans, oldest evicted first once ``capacity`` is hit.
        self.finished: deque[Span] = deque(maxlen=capacity)
        #: Open spans by id (a handful at any instant: in-flight calls).
        self._open: dict[int, Span] = {}
        #: Spans ever finished (the ring may have evicted some).
        self.finished_count = 0

    # -- span lifecycle ---------------------------------------------------

    def begin(
        self,
        name: str,
        kind: str,
        parent: "Span | TraceContext | None" = None,
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Open a span; without a parent it roots a new trace."""
        span_id = next(self._ids)
        if parent is None:
            trace_id, parent_id = span_id, None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        span = Span(trace_id, span_id, parent_id, name, kind, self.scheduler.now)
        if attrs:
            span.attrs.update(attrs)
        self._open[span_id] = span
        return span

    def end(self, span: Span, attrs: dict[str, Any] | None = None) -> Span:
        """Close a span at the current simulated time."""
        if attrs:
            span.attrs.update(attrs)
        if span.end is None:
            span.end = self.scheduler.now
            self._open.pop(span.span_id, None)
            self.finished.append(span)
            self.finished_count += 1
        return span

    def instant(
        self,
        name: str,
        parent: "Span | TraceContext | None" = None,
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Record a zero-duration span marking a point event."""
        span = self.begin(name, KIND_INSTANT, parent, attrs)
        return self.end(span)

    # -- inspection -------------------------------------------------------

    @property
    def open_spans(self) -> list[Span]:
        """Spans begun but not yet ended, in id order."""
        return [self._open[key] for key in sorted(self._open)]

    @property
    def spans(self) -> list[Span]:
        """The finished-span ring as a list (oldest first)."""
        return list(self.finished)

    def trees(self) -> dict[int, list[Span]]:
        """Finished spans grouped by trace id, in finish order."""
        grouped: dict[int, list[Span]] = {}
        for span in self.finished:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def fingerprint(self) -> str:
        """SHA-256 over every finished span's snapshot, in finish order."""
        digest = hashlib.sha256()
        for span in self.finished:
            digest.update(repr(span.snapshot()).encode())
        return digest.hexdigest()


def spans_to_dicts(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """Render an iterable of spans as JSON-able dicts."""
    return [span.to_dict() for span in spans]
