"""Span and metrics exporters: JSONL and Chrome ``trace_event`` JSON.

Two span formats:

* :func:`export_spans_jsonl` — one JSON object per line, mirroring the
  ``repro-trace/1`` channel that :mod:`repro.traffic.trace` embeds, easy
  to grep and to post-process;
* :func:`export_chrome_trace` — the Chrome ``trace_event`` array format
  (``ph: "X"`` complete events for timed spans, ``ph: "i"`` instants for
  zero-duration marks), loadable directly in Perfetto / ``chrome://tracing``.
  Simulated seconds become microseconds; each span's track (``tid``) is
  its node attribute when present, else its kind, so server work groups by
  node and client work by phase.

:func:`export_metrics_json` writes a :class:`~repro.obs.metrics
.MetricsReport` with its fingerprint, the artifact CI uploads.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.metrics import MetricsReport
from repro.obs.spans import KIND_INSTANT, Span


def export_spans_jsonl(spans: Iterable[Span], path: "str | Path") -> Path:
    """Write one JSON object per span; returns the path written."""
    path = Path(path)
    with path.open("w") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), default=repr) + "\n")
    return path


def chrome_trace_events(spans: Iterable[Span]) -> list[dict]:
    """Render spans as Chrome ``trace_event`` dicts (no file I/O)."""
    events = []
    for span in spans:
        tid = span.attrs.get("node") or span.kind
        args = {"trace_id": span.trace_id, "span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update({key: repr(value) for key, value in sorted(span.attrs.items())})
        end = span.end if span.end is not None else span.start
        if span.kind == KIND_INSTANT or end == span.start:
            events.append(
                {
                    "name": span.name,
                    "cat": span.kind,
                    "ph": "i",
                    "s": "g",
                    "ts": span.start * 1e6,
                    "pid": 1,
                    "tid": str(tid),
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": span.name,
                    "cat": span.kind,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": (end - span.start) * 1e6,
                    "pid": 1,
                    "tid": str(tid),
                    "args": args,
                }
            )
        for time, name, attrs in span.events:
            events.append(
                {
                    "name": name,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": time * 1e6,
                    "pid": 1,
                    "tid": str(tid),
                    "args": {
                        "span_id": span.span_id,
                        **{key: repr(value) for key, value in sorted(attrs.items())},
                    },
                }
            )
    return events


def export_chrome_trace(spans: Iterable[Span], path: "str | Path") -> Path:
    """Write a Perfetto-loadable ``trace_event`` JSON file."""
    path = Path(path)
    payload = {"traceEvents": chrome_trace_events(spans), "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def export_metrics_json(
    report: MetricsReport, path: "str | Path", slos: Iterable = ()
) -> Path:
    """Write a metrics report (series + fingerprint) as JSON.

    Declared :class:`~repro.obs.slo.SLO` objectives are embedded under a
    ``"slos"`` key so ``python -m repro.obs.analyze slo`` can re-evaluate
    compliance and burn rates offline from this one artifact.
    """
    path = Path(path)
    payload = report.to_dict()
    slo_specs = [slo.to_dict() for slo in slos]
    if slo_specs:
        payload["slos"] = slo_specs
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
