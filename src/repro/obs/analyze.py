"""Trace analytics: exact critical-path latency attribution and run-diff.

The span trees of :mod:`repro.obs` record *where time was spent*; this
module turns them into *answers*:

* :func:`attribute_calls` walks each client call's span tree and
  decomposes its simulated-time RTT **exactly** into named components —
  ``network`` (transit both ways), ``stall`` (§5.7 stall-queue wait on the
  server), ``core_wait`` (queueing for a bounded
  :class:`~repro.sim.servercore.ServerCore`), ``cpu`` (modeled service
  cost) and ``backoff`` (retry backoff plus failed-attempt gaps between
  attempts).  The per-call invariant is *zero residual*: the five
  components sum to the measured RTT to the nanosecond, by construction
  (see "The attribution algebra" below).  §5.7 rebind/refetch time is
  attributed per call too (``rebind_ns``) but reported separately — the
  fleet driver closes the call span *before* refetching stubs, so rebinds
  are client overhead between calls, not part of any call's RTT.
* :func:`build_profile` aggregates attributions into a
  :class:`LatencyProfile`: per-component p50/p95/p99 overall and grouped
  by service / version tier / protocol, plus a **tail attribution** view —
  the top-decile calls against the median cohort, ranked by which
  component grew.
* :func:`diff_profiles` compares two profiles (two runs, two commits, two
  configs) and attributes the RTT delta to components; the ``run_all.py``
  perf gate uses the same arithmetic (via :func:`dominant_component`) to
  name the regressed layer in ``--strict`` failures.
* :func:`load_spans` accepts every span source the repo produces: a live
  :class:`~repro.obs.api.Observability`, span JSONL exports,
  ``repro-trace/1`` recordings and flight-recorder dumps.

The attribution algebra
-----------------------

Float subtraction does not telescope: naively computing components as
differences of seconds and then asserting they re-sum to the RTT fails
under IEEE rounding.  Instead every absolute boundary timestamp is first
quantised to integer nanoseconds (``round(t * 1e9)``) and the components
are *telescoping differences of a clamped, monotone boundary chain* over
each attempt interval::

    b0 = attempt start          -> network (transit out)  = b1 - b0
    b1 = server span start      -> stall                  = b2 - b1
    b2 = server span end        -> core_wait              = b3 - b2
    b3 = cpu charge start       -> cpu                    = b4 - b3
    b4 = cpu charge end         -> network (transit back) = b5 - b4
    b5 = attempt end

Each boundary is clamped into ``[previous boundary, attempt end]``, so the
chain is monotone, every component is non-negative, and the attempt's
components sum to its duration *exactly*.  Per call, ``backoff`` is the
call duration minus the attempt durations (the gaps between attempts:
retry backoff timers and failed replica selections), again an exact
integer difference.  The CPU boundaries come from the transport layer's
``note_server_charge`` annotation (``cpu_from`` / ``cpu_until`` attrs on
the server span); spans from runs without the annotation degrade
gracefully — the time folds into ``network`` — and the invariant still
holds.

Everything here is pure post-processing: no scheduler, no simulation
state, deterministic output for deterministic input.  A CLI front-end
(``python -m repro.obs.analyze`` or ``python -m repro.obs``) exposes
``profile`` / ``diff`` / ``slo`` subcommands over the exported artifacts.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Any, Iterable, Mapping

#: The components that sum exactly to each call's measured RTT.
RTT_COMPONENTS = ("network", "stall", "core_wait", "cpu", "backoff")
#: All reported components (``rebind`` is per-call but outside the RTT sum).
ALL_COMPONENTS = RTT_COMPONENTS + ("rebind",)

NANOS_PER_SECOND = 1_000_000_000


def _ns(seconds: float) -> int:
    """Quantise an absolute simulated timestamp to integer nanoseconds."""
    return round(seconds * 1e9)


def _percentile(ordered: "list[int]", level: float) -> float:
    """Linear-interpolation percentile of a pre-sorted sample (ns)."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * (level / 100.0)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


# -- span loading --------------------------------------------------------------


def _span_like(obj: Any) -> "dict | None":
    """Return the span dict inside ``obj``, else None.

    Accepts the three on-disk shapes: a bare exported span object, a
    ``repro-trace/1`` record (``{"kind": "span", "span": {...}}``) and
    anything else (workload records, headers) which is skipped.
    """
    if not isinstance(obj, dict):
        return None
    if obj.get("kind") == "span" and isinstance(obj.get("span"), dict):
        return obj["span"]
    if "span_id" in obj and "trace_id" in obj:
        return obj
    return None


def load_spans(source: Any) -> list[dict]:
    """Normalise any span source into a list of span dicts.

    ``source`` may be a live :class:`~repro.obs.api.Observability` (or
    anything with a ``.spans`` list of :class:`~repro.obs.spans.Span`), an
    iterable of spans / span dicts, or a path to a span JSONL export, a
    ``repro-trace/1`` recording, or a flight-recorder dump.
    """
    if isinstance(source, (str, Path)):
        return _load_spans_file(Path(source))
    spans = getattr(source, "spans", None)
    if spans is not None and not isinstance(source, (list, tuple)):
        source = spans
    out: list[dict] = []
    for item in source:
        if hasattr(item, "to_dict"):
            out.append(item.to_dict())
        else:
            span = _span_like(item)
            if span is not None:
                out.append(span)
    return out


def _load_spans_file(path: Path) -> list[dict]:
    text = path.read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and "\n{" not in text.strip():
        # A single JSON object: a flight-recorder dump (closed spans plus
        # the still-open window) or a Chrome trace (not a span source).
        payload = json.loads(text)
        if "spans" in payload:
            return [
                span
                for span in payload.get("spans", [])
                if _span_like(span) is not None
            ]
        raise ValueError(f"{path} is not a span source (no 'spans' key)")
    out = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        span = _span_like(json.loads(line))
        if span is not None:
            out.append(span)
    return out


# -- per-call attribution ------------------------------------------------------


class CallAttribution:
    """One client call's RTT decomposed into exact ns components."""

    __slots__ = (
        "trace_id",
        "client",
        "service",
        "protocol",
        "operation",
        "outcome",
        "tier",
        "attempts",
        "start",
        "end",
        "rtt_ns",
        "components",
        "rebind_ns",
    )

    def __init__(
        self,
        trace_id: int,
        client: str,
        service: str,
        protocol: str,
        operation: str,
        outcome: str,
        tier: "str | None",
        attempts: int,
        start: float,
        end: float,
        rtt_ns: int,
        components: dict[str, int],
        rebind_ns: int = 0,
    ) -> None:
        self.trace_id = trace_id
        self.client = client
        self.service = service
        self.protocol = protocol
        self.operation = operation
        self.outcome = outcome
        self.tier = tier
        self.attempts = attempts
        self.start = start
        self.end = end
        self.rtt_ns = rtt_ns
        self.components = components
        self.rebind_ns = rebind_ns

    @property
    def residual_ns(self) -> int:
        """RTT minus the component sum — zero by construction."""
        return self.rtt_ns - sum(self.components[name] for name in RTT_COMPONENTS)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "client": self.client,
            "service": self.service,
            "protocol": self.protocol,
            "operation": self.operation,
            "outcome": self.outcome,
            "tier": self.tier,
            "attempts": self.attempts,
            "start": self.start,
            "end": self.end,
            "rtt_ns": self.rtt_ns,
            "components_ns": dict(self.components),
            "rebind_ns": self.rebind_ns,
            "residual_ns": self.residual_ns,
        }

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={self.components[name] / 1e6:.3f}ms" for name in RTT_COMPONENTS
        )
        return f"CallAttribution({self.client} {self.operation!r}: {parts})"


def _attempt_components(attempt: dict, servers: list[dict]) -> dict[str, int]:
    """Decompose one attempt interval via the clamped boundary chain."""
    a0 = _ns(attempt["start"])
    a1 = _ns(attempt["end"])
    server = None
    for candidate in servers:
        if candidate.get("end") is not None:
            server = candidate
            break
    if server is None:
        # The request never produced an observed server dispatch (the
        # replica crashed, the reply raced a timeout, the server span was
        # evicted): the whole interval is transit/loss time.
        return {
            "network": a1 - a0,
            "stall": 0,
            "core_wait": 0,
            "cpu": 0,
            "backoff": 0,
        }
    attrs = server.get("attrs", {})
    s_start = _ns(server["start"])
    s_end = _ns(server["end"])
    cpu_from = attrs.get("cpu_from")
    cpu_until = attrs.get("cpu_until")
    c_from = _ns(cpu_from) if isinstance(cpu_from, (int, float)) else s_end
    c_until = _ns(cpu_until) if isinstance(cpu_until, (int, float)) else s_end
    # The monotone, clamped boundary chain: every boundary is forced into
    # [previous boundary, attempt end], so the differences telescope to the
    # attempt duration exactly and never go negative.
    chain = [a0]
    for boundary in (s_start, s_end, c_from, c_until):
        chain.append(min(max(boundary, chain[-1]), a1))
    chain.append(a1)
    return {
        "network": (chain[1] - chain[0]) + (chain[5] - chain[4]),
        "stall": chain[2] - chain[1],
        "core_wait": chain[3] - chain[2],
        "cpu": chain[4] - chain[3],
        "backoff": 0,
    }


def attribute_calls(spans: Any) -> tuple[list[CallAttribution], int]:
    """Decompose every complete call tree; returns (attributions, dropped).

    ``dropped`` counts call trees that could not be attributed — a call
    span evicted from the bounded ring while its attempts survived, or a
    call still open when the run ended.  Rebind spans are paired with the
    stale-faulted call that triggered them (same client, started at the
    exact instant the call span closed).
    """
    spans = load_spans(spans)
    calls: list[dict] = []
    children: dict[int, list[dict]] = {}
    rebinds: list[dict] = []
    orphan_traces: set[int] = set()
    call_traces: set[int] = set()
    for span in spans:
        kind = span.get("kind")
        if kind == "call":
            if span.get("end") is not None:
                calls.append(span)
                call_traces.add(span["trace_id"])
            else:
                orphan_traces.add(span["trace_id"])
        elif kind in ("attempt", "server"):
            parent = span.get("parent_id")
            if parent is not None:
                children.setdefault(parent, []).append(span)
            orphan_traces.add(span["trace_id"])
        elif kind == "rebind" and span.get("end") is not None:
            rebinds.append(span)

    attributions: list[CallAttribution] = []
    by_client_end: dict[tuple[str, int], CallAttribution] = {}
    for call in sorted(calls, key=lambda s: s["span_id"]):
        c0 = _ns(call["start"])
        c1 = _ns(call["end"])
        attrs = call.get("attrs", {})
        components = {name: 0 for name in RTT_COMPONENTS}
        attempts = sorted(
            (
                span
                for span in children.get(call["span_id"], [])
                if span.get("kind") == "attempt" and span.get("end") is not None
            ),
            key=lambda s: s["span_id"],
        )
        tier = None
        attempt_total = 0
        cursor = c0
        for attempt in attempts:
            servers = sorted(
                (
                    span
                    for span in children.get(attempt["span_id"], [])
                    if span.get("kind") == "server"
                ),
                key=lambda s: s["span_id"],
            )
            parts = _attempt_components(attempt, servers)
            # Clamp the attempt into the call window and behind its
            # predecessor so attempt durations telescope within the call.
            a0 = min(max(_ns(attempt["start"]), cursor), c1)
            a1 = min(max(_ns(attempt["end"]), a0), c1)
            cursor = a1
            duration = a1 - a0
            attempt_total += duration
            # The attempt's own chain summed to its unclamped duration; a
            # clamped attempt (a timeout racing the call close) keeps the
            # proportions but must re-telescope, so scale the excess off
            # the network share (the residual-absorbing component).
            excess = sum(parts.values()) - duration
            parts["network"] -= excess
            for name in RTT_COMPONENTS:
                components[name] += parts[name]
            attempt_tier = attempt.get("attrs", {}).get("tier")
            if attempt_tier is not None:
                tier = attempt_tier
        rtt_ns = c1 - c0
        components["backoff"] = rtt_ns - attempt_total
        attribution = CallAttribution(
            trace_id=call["trace_id"],
            client=attrs.get("client", ""),
            service=attrs.get("service", ""),
            protocol=attrs.get("protocol", ""),
            operation=call.get("name", ""),
            outcome=attrs.get("outcome", ""),
            tier=tier,
            attempts=len(attempts),
            start=call["start"],
            end=call["end"],
            rtt_ns=rtt_ns,
            components=components,
        )
        attributions.append(attribution)
        by_client_end[(attribution.client, c1)] = attribution

    for rebind in rebinds:
        key = (rebind.get("attrs", {}).get("client", ""), _ns(rebind["start"]))
        owner = by_client_end.get(key)
        if owner is not None:
            owner.rebind_ns += _ns(rebind["end"]) - _ns(rebind["start"])

    dropped = len(orphan_traces - call_traces)
    return attributions, dropped


# -- profiles ------------------------------------------------------------------


def _stats(values_ns: list[int], rtt_total_ns: int = 0) -> dict[str, Any]:
    """Count/mean/percentiles of one component sample, in seconds."""
    ordered = sorted(values_ns)
    total = sum(ordered)
    count = len(ordered)
    stats = {
        "count": count,
        "total_s": total / 1e9,
        "mean_s": (total / count) / 1e9 if count else 0.0,
        "p50_s": _percentile(ordered, 50.0) / 1e9,
        "p95_s": _percentile(ordered, 95.0) / 1e9,
        "p99_s": _percentile(ordered, 99.0) / 1e9,
        "max_s": (ordered[-1] / 1e9) if ordered else 0.0,
    }
    if rtt_total_ns:
        stats["share"] = round(total / rtt_total_ns, 6)
    return stats


def _component_table(attributions: list[CallAttribution]) -> dict[str, dict]:
    rtt_total = sum(a.rtt_ns for a in attributions)
    table = {
        name: _stats([a.components[name] for a in attributions], rtt_total)
        for name in RTT_COMPONENTS
    }
    table["rebind"] = _stats([a.rebind_ns for a in attributions])
    table["rtt"] = _stats([a.rtt_ns for a in attributions])
    return table


def _tail_view(attributions: list[CallAttribution]) -> dict[str, Any]:
    """Top-decile calls vs the median cohort, ranked by component growth."""
    if not attributions:
        return {"tail_calls": 0, "median_calls": 0, "ranked": []}
    ordered = sorted(attributions, key=lambda a: (a.rtt_ns, a.trace_id))
    n = len(ordered)
    tail = ordered[max(0, n - max(1, n // 10)):]
    mid_lo = (n * 2) // 5
    mid_hi = max(mid_lo + 1, (n * 3) // 5)
    median = ordered[mid_lo:mid_hi]

    def mean(group: list[CallAttribution], name: str) -> float:
        return sum(a.components[name] for a in group) / len(group) / 1e9

    ranked = sorted(
        (
            {
                "component": name,
                "tail_mean_s": mean(tail, name),
                "median_mean_s": mean(median, name),
                "growth_s": mean(tail, name) - mean(median, name),
            }
            for name in RTT_COMPONENTS
        ),
        key=lambda row: (-row["growth_s"], row["component"]),
    )
    return {"tail_calls": len(tail), "median_calls": len(median), "ranked": ranked}


class LatencyProfile:
    """Aggregated attribution: where a run's latency went, and for whom."""

    def __init__(self, attributions: list[CallAttribution], dropped: int = 0) -> None:
        self.attributions = attributions
        self.dropped = dropped
        self.overall = _component_table(attributions)
        self.by_service = self._grouped(lambda a: a.service)
        self.by_tier = self._grouped(lambda a: a.tier or "direct")
        self.by_protocol = self._grouped(lambda a: a.protocol)
        self.tail = _tail_view(attributions)

    def _grouped(self, key) -> dict[str, dict]:
        groups: dict[str, list[CallAttribution]] = {}
        for attribution in self.attributions:
            groups.setdefault(key(attribution), []).append(attribution)
        return {name: _component_table(groups[name]) for name in sorted(groups)}

    @property
    def call_count(self) -> int:
        """Calls attributed into this profile."""
        return len(self.attributions)

    @property
    def max_residual_ns(self) -> int:
        """Worst |RTT − Σ components| over every call — zero by construction."""
        return max((abs(a.residual_ns) for a in self.attributions), default=0)

    def component_means(self) -> dict[str, float]:
        """Compact per-component mean seconds — the bench ``obs_profile`` blob."""
        means = {
            name: round(self.overall[name]["mean_s"], 9) for name in ALL_COMPONENTS
        }
        means["rtt"] = round(self.overall["rtt"]["mean_s"], 9)
        return means

    def to_dict(self) -> dict[str, Any]:
        return {
            "calls": self.call_count,
            "dropped": self.dropped,
            "max_residual_ns": self.max_residual_ns,
            "overall": self.overall,
            "by_service": self.by_service,
            "by_tier": self.by_tier,
            "by_protocol": self.by_protocol,
            "tail": self.tail,
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical profile rendering (determinism asserts)."""
        digest = hashlib.sha256()
        digest.update(json.dumps(self.to_dict(), sort_keys=True).encode())
        return digest.hexdigest()

    def __repr__(self) -> str:
        return (
            f"LatencyProfile(calls={self.call_count}, dropped={self.dropped}, "
            f"services={sorted(self.by_service)})"
        )


def build_profile(source: Any) -> LatencyProfile:
    """Attribute every complete call in ``source`` and aggregate."""
    attributions, dropped = attribute_calls(source)
    return LatencyProfile(attributions, dropped)


def format_profile(profile: LatencyProfile) -> str:
    """Human-readable profile rendering (the CLI's default output)."""
    lines = [
        f"calls attributed: {profile.call_count} "
        f"(dropped {profile.dropped} incomplete trees, "
        f"max residual {profile.max_residual_ns} ns)"
    ]
    lines.append("component      mean        p50        p95        p99      share")
    for name in ALL_COMPONENTS + ("rtt",):
        stats = profile.overall[name]
        share = stats.get("share")
        lines.append(
            f"  {name:<11} {stats['mean_s'] * 1e3:8.3f}ms "
            f"{stats['p50_s'] * 1e3:8.3f}ms {stats['p95_s'] * 1e3:8.3f}ms "
            f"{stats['p99_s'] * 1e3:8.3f}ms"
            + (f"   {share * 100:5.1f}%" if share is not None else "")
        )
    tail = profile.tail
    if tail["ranked"]:
        top = tail["ranked"][0]
        lines.append(
            f"tail attribution (top {tail['tail_calls']} calls vs median "
            f"{tail['median_calls']}): "
            + ", ".join(
                f"{row['component']} {row['growth_s'] * 1e3:+.3f}ms"
                for row in tail["ranked"]
                if row["growth_s"] != 0.0
            )
        )
        lines.append(
            f"dominant tail component: {top['component']} "
            f"(+{top['growth_s'] * 1e3:.3f}ms over the median cohort)"
        )
    return "\n".join(lines)


# -- run-diff ------------------------------------------------------------------


def dominant_component(
    before: "Mapping[str, Any] | None", now: "Mapping[str, Any] | None"
) -> "tuple[str, float, float] | None":
    """The component whose mean grew most between two ``component_means``.

    Returns ``(name, before_mean_s, now_mean_s)``, or None when either blob
    is missing or nothing regressed.  Shared with ``benchmarks/run_all.py``
    (which re-implements it locally to stay importable without the
    package): keep the two in sync.
    """
    if not isinstance(before, Mapping) or not isinstance(now, Mapping):
        return None
    deltas = {}
    for name in RTT_COMPONENTS + ("rebind",):
        a, b = before.get(name), now.get(name)
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            deltas[name] = b - a
    if not deltas:
        return None
    worst = max(sorted(deltas), key=lambda name: deltas[name])
    if deltas[worst] <= 0:
        return None
    return worst, float(before[worst]), float(now[worst])


class ProfileDiff:
    """Component-attributed delta between two profiles."""

    def __init__(self, before: LatencyProfile, after: LatencyProfile) -> None:
        self.before = before
        self.after = after
        self.components: dict[str, dict[str, float]] = {}
        for name in ALL_COMPONENTS + ("rtt",):
            b, a = before.overall[name], after.overall[name]
            self.components[name] = {
                "before_mean_s": b["mean_s"],
                "after_mean_s": a["mean_s"],
                "delta_mean_s": a["mean_s"] - b["mean_s"],
                "before_p99_s": b["p99_s"],
                "after_p99_s": a["p99_s"],
                "delta_p99_s": a["p99_s"] - b["p99_s"],
            }
        dominant = dominant_component(
            before.component_means(), after.component_means()
        )
        self.dominant: "str | None" = dominant[0] if dominant else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "before_calls": self.before.call_count,
            "after_calls": self.after.call_count,
            "dominant_component": self.dominant,
            "components": self.components,
        }

    def __repr__(self) -> str:
        return f"ProfileDiff(dominant={self.dominant!r})"


def diff_profiles(before: Any, after: Any) -> ProfileDiff:
    """Diff two profiles (or anything :func:`load_spans` accepts)."""
    if not isinstance(before, LatencyProfile):
        before = build_profile(before)
    if not isinstance(after, LatencyProfile):
        after = build_profile(after)
    return ProfileDiff(before, after)


def format_diff(diff: ProfileDiff) -> str:
    lines = [
        f"calls: {diff.before.call_count} -> {diff.after.call_count}",
        "component      mean before   mean after        delta   p99 delta",
    ]
    for name in ALL_COMPONENTS + ("rtt",):
        row = diff.components[name]
        lines.append(
            f"  {name:<11} {row['before_mean_s'] * 1e3:10.3f}ms "
            f"{row['after_mean_s'] * 1e3:10.3f}ms "
            f"{row['delta_mean_s'] * 1e3:+10.3f}ms "
            f"{row['delta_p99_s'] * 1e3:+9.3f}ms"
        )
    if diff.dominant is not None:
        lines.append(f"dominant regressed component: {diff.dominant}")
    else:
        lines.append("no component regressed")
    return "\n".join(lines)


# -- bench-trajectory diff (the CI wiring) -------------------------------------


def bench_profile_diff(trajectory: Mapping[str, Any], quick: bool) -> dict[str, Any]:
    """Diff the last two comparable ``obs_profile`` blobs per benchmark.

    ``trajectory`` is the parsed ``BENCH_results.json``.  Only benchmarks
    that recorded an ``obs_profile`` (component means) in ``extra_info``
    participate; only runs with the same quick/full mode are comparable.
    """
    appearances: dict[str, list[dict]] = {}
    for run in trajectory.get("runs", []):
        if bool(run.get("quick")) != quick:
            continue
        for bench in run.get("benchmarks", []):
            profile = (bench.get("extra_info") or {}).get("obs_profile")
            if isinstance(profile, Mapping):
                appearances.setdefault(bench["name"], []).append(dict(profile))
    diffs: dict[str, Any] = {}
    for name in sorted(appearances):
        blobs = appearances[name]
        if len(blobs) < 2:
            diffs[name] = {"status": "first-appearance", "current": blobs[-1]}
            continue
        before, now = blobs[-2], blobs[-1]
        dominant = dominant_component(before, now)
        diffs[name] = {
            "status": "compared",
            "previous": before,
            "current": now,
            "deltas": {
                key: round(now[key] - before[key], 9)
                for key in sorted(set(before) & set(now))
            },
            "dominant_component": dominant[0] if dominant else None,
        }
    return diffs


# -- CLI -----------------------------------------------------------------------


def main(argv: "list[str] | None" = None) -> int:
    """``python -m repro.obs.analyze`` — profile / diff / slo subcommands."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.analyze",
        description="Trace analytics over repro.obs artifacts",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_profile = sub.add_parser(
        "profile", help="attribute latency components from a span source"
    )
    p_profile.add_argument("source", help="span JSONL / trace JSONL / flight dump")
    p_profile.add_argument("--json", dest="json_out", help="also write the profile JSON")

    p_diff = sub.add_parser("diff", help="attribute the delta between two runs")
    p_diff.add_argument("sources", nargs="*", help="two span sources (before, after)")
    p_diff.add_argument(
        "--bench",
        help="diff the last two obs_profile blobs per benchmark in BENCH_results.json",
    )
    p_diff.add_argument(
        "--quick", action="store_true", help="compare quick-grid bench runs (--bench)"
    )
    p_diff.add_argument("--json", dest="json_out", help="also write the diff JSON")

    p_slo = sub.add_parser(
        "slo", help="re-evaluate embedded SLOs from an exported metrics JSON"
    )
    p_slo.add_argument("metrics", help="metrics JSON written by export_metrics")
    p_slo.add_argument("--json", dest="json_out", help="also write the results JSON")
    p_slo.add_argument(
        "--check", action="store_true", help="exit nonzero when any SLO is breached"
    )

    args = parser.parse_args(argv)

    if args.command == "profile":
        profile = build_profile(args.source)
        print(format_profile(profile))
        if args.json_out:
            Path(args.json_out).write_text(
                json.dumps(profile.to_dict(), indent=2) + "\n"
            )
            print(f"wrote {args.json_out}")
        return 0

    if args.command == "diff":
        if args.bench:
            trajectory = json.loads(Path(args.bench).read_text())
            diffs = bench_profile_diff(trajectory, quick=args.quick)
            if not diffs:
                print("no benchmarks with obs_profile blobs in the trajectory")
            for name, entry in diffs.items():
                if entry["status"] != "compared":
                    print(f"{name}: first profiled appearance (nothing to diff)")
                    continue
                dominant = entry["dominant_component"]
                rtt_delta = entry["deltas"].get("rtt", 0.0)
                print(
                    f"{name}: simulated rtt mean {rtt_delta * 1e3:+.3f}ms; "
                    + (
                        f"dominant regressed component: {dominant}"
                        if dominant
                        else "no component regressed"
                    )
                )
            if args.json_out:
                Path(args.json_out).write_text(json.dumps(diffs, indent=2) + "\n")
                print(f"wrote {args.json_out}")
            return 0
        if len(args.sources) != 2:
            parser.error("diff needs two span sources (or --bench)")
        diff = diff_profiles(args.sources[0], args.sources[1])
        print(format_diff(diff))
        if args.json_out:
            Path(args.json_out).write_text(json.dumps(diff.to_dict(), indent=2) + "\n")
            print(f"wrote {args.json_out}")
        return 0

    if args.command == "slo":
        from repro.obs.metrics import MetricsReport
        from repro.obs.slo import SLO, evaluate_slos, format_results

        payload = json.loads(Path(args.metrics).read_text())
        slos = [SLO.from_dict(spec) for spec in payload.get("slos", [])]
        if not slos:
            print(
                f"{args.metrics} embeds no SLO declarations "
                "(run with ObsConfig(slos=...) before exporting)"
            )
            return 0 if not args.check else 2
        report = MetricsReport(
            interval=payload["interval"],
            times=tuple(payload["times"]),
            series={
                name: tuple(values) for name, values in payload["series"].items()
            },
        )
        results = evaluate_slos(report, slos)
        print(format_results(results))
        if args.json_out:
            Path(args.json_out).write_text(
                json.dumps([result.to_dict() for result in results], indent=2) + "\n"
            )
            print(f"wrote {args.json_out}")
        if args.check and any(result.breached for result in results):
            return 1
        return 0

    return 2  # pragma: no cover - argparse enforces the subcommands


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    import sys

    sys.exit(main(sys.argv[1:]))
