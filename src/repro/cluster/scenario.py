"""The declarative Scenario API: describe a whole simulated world, run it.

One :class:`Scenario` describes an N-server × M-client live-development
world — machines, services with replicas and routing policies, client
fleets with protocol mixes, and a timeline of developer actions — then
``run()`` builds it, drives it deterministically on the discrete-event
scheduler, and returns a :class:`~repro.cluster.report.ClusterReport`::

    report = (
        Scenario()
        .servers(4, cores=2)
        .service("Echo", [op("echo", [("m", STRING)], STRING, body=lambda s, m: m)],
                 replicas=4)
        .clients(64, protocol_mix={"soap": 0.5, "corba": 0.5},
                 calls=5, operation="echo", arguments=("hi",))
        .at(0.5, edit("Echo", op("added_later")))
        .at(0.6, publish("Echo"))
        .run()
    )

``build()`` returns the underlying :class:`ScenarioRuntime` instead, for
interactive use (connect a CDE binding, edit classes, publish, inspect) —
the workflow the examples walk through.

The API is protocol-agnostic end to end: ``technology()`` registers a
third :class:`~repro.core.sde.api.Technology` on every server node and a
matching client-side stack, after which services and clients can use it
exactly like the SOAP and CORBA built-ins (the §5.3 extensibility claim,
lifted to the scenario layer).

Fault timeline actions (``crash`` / ``restart`` / ``partition`` /
``heal`` / ``drop_link`` / ``restore_link`` from :mod:`repro.faults`)
compose in ``at(...)`` exactly like the developer actions, and
``clients(..., retry=RetryPolicy(...))`` makes a fleet fail over through
them — see ARCHITECTURE.md "Fault model".
"""

from __future__ import annotations

import inspect
from array import array
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Sequence

from repro.cluster.cohort import CohortFlow, CohortModel
from repro.cluster.driver import ClientPlan, FleetDriver
from repro.cluster.protocols import ProtocolClientFactory
from repro.cluster.registry import (
    POLICY_ROUND_ROBIN,
    Replica,
    ServiceEntry,
    ServiceRegistry,
    make_policy,
)
from repro.cluster.report import ClusterReport
from repro.cluster.topology import ClusterWorld, ServerNode
from repro.core.cde import ClientDevelopmentEnvironment, DynamicClientBinding
from repro.core.sde import SDEConfig, Technology
from repro.errors import ClusterError, HostNotFoundError
from repro.faults import FaultInjector, RetryPolicy
from repro.interface import Parameter
from repro.jpie import DynamicClass
from repro.net import LatencyModel
from repro.net.simnet import Host
from repro.rmitypes import RmiType, VOID
from repro.traffic.arrivals import resolve_offsets

#: Default protocol for services that do not name a technology.
DEFAULT_TECHNOLOGY = "soap"


@dataclass
class OperationSpec:
    """A compact way to describe a distributed method."""

    name: str
    parameters: tuple[tuple[str, RmiType], ...]
    return_type: RmiType = VOID
    body: Callable[..., Any] | None = None

    def parameter_objects(self) -> tuple[Parameter, ...]:
        """Convert the ``(name, type)`` pairs into Parameter objects."""
        return tuple(Parameter(name, rmi_type) for name, rmi_type in self.parameters)


def op(
    name: str,
    parameters: Iterable[tuple[str, RmiType]] = (),
    returns: RmiType = VOID,
    body: Callable[..., Any] | None = None,
) -> OperationSpec:
    """Describe one distributed operation (`op/edit` helper)."""
    return OperationSpec(name, tuple(parameters), returns, body)


# -- timeline action helpers ---------------------------------------------------


def edit(service: str, *operations: OperationSpec):
    """Timeline action: add distributed methods to every replica of a service."""

    def action(runtime: "ScenarioRuntime") -> None:
        for replica in runtime.replicas(service):
            for spec in operations:
                replica.managed.dynamic_class.add_method(
                    spec.name,
                    spec.parameter_objects(),
                    spec.return_type,
                    body=spec.body,
                    distributed=True,
                )

    action.__trace_event__ = {
        "kind": "edit",
        "service": service,
        "operations": operations,
    }
    return action


def publish(service: str):
    """Timeline action: force publication on every replica of a service."""

    def action(runtime: "ScenarioRuntime") -> None:
        for replica in runtime.replicas(service):
            replica.node.manager_interface.force_publication(replica.class_name)

    action.__trace_event__ = {"kind": "publish", "service": service}
    return action


def churn(service: str, rounds: int = 3, period: float = 1.0, prefix: str = "churned_op_"):
    """Timeline action: repeated edit+publish rounds (interface churn).

    Every ``period`` virtual seconds, for ``rounds`` rounds, one new
    distributed method is added to every replica of ``service`` and a
    publication is forced — sustained interface churn under load.
    """

    def action(runtime: "ScenarioRuntime") -> None:
        state = {"round": 0}
        epoch = runtime.run_epoch

        def one_round() -> None:
            if runtime.run_epoch != epoch:
                # A later run() started: this churn sequence belongs to a
                # finished window and must not leak edits into the new one.
                return
            index = state["round"]
            state["round"] += 1
            for replica in runtime.replicas(service):
                replica.managed.dynamic_class.add_method(
                    f"{prefix}{index}", (), VOID, body=lambda _self: None, distributed=True
                )
                replica.node.manager_interface.force_publication(replica.class_name)
            if state["round"] < rounds:
                runtime.world.scheduler.schedule(period, one_round, label="interface churn")

        one_round()

    action.__trace_event__ = {
        "kind": "churn",
        "service": service,
        "rounds": rounds,
        "period": period,
        "prefix": prefix,
    }
    return action


# -- declarative specs ---------------------------------------------------------


@dataclass(frozen=True)
class _ServiceSpec:
    name: str
    operations: tuple[OperationSpec, ...]
    technology: str | None
    replicas: int
    policy: Any
    version_routing: bool = False


@dataclass(frozen=True)
class _ClientGroupSpec:
    count: int
    protocol_mix: tuple[tuple[str, float], ...] | None
    service: str | None
    calls: int
    operation: str | None
    arguments: tuple[Any, ...]
    think_time: float
    arrival: Any
    stale_every: int | None
    stale_operation: str
    retry: RetryPolicy | None
    cohort: CohortModel | None = None


class Scenario:
    """Declarative description of an N-server × M-client simulated world."""

    def __init__(
        self,
        name: str = "scenario",
        latency: LatencyModel | None = None,
        sde_config: SDEConfig | None = None,
    ) -> None:
        self.name = name
        self._latency = latency
        self._base_config = sde_config
        self._server_count = 1
        self._server_cores: int | None = None
        self._default_technology: str | None = None
        self._technologies: list[tuple[Technology, ProtocolClientFactory | None]] = []
        self._services: list[_ServiceSpec] = []
        self._client_groups: list[_ClientGroupSpec] = []
        self._timeline: list[tuple[float, Callable[..., None]]] = []
        self._slos: list[Any] = []

    # -- machines -----------------------------------------------------------

    def servers(
        self,
        count: int = 1,
        *,
        cores: int | None = None,
        technology: str | None = None,
        config: SDEConfig | None = None,
    ) -> "Scenario":
        """Declare the server fleet: ``count`` machines, each its own SDE.

        ``cores`` bounds every machine's CPU concurrency; ``technology``
        sets the default technology for services that do not name one;
        ``config`` overrides the scenario-wide :class:`SDEConfig` template.
        """
        if count < 1:
            raise ClusterError("a scenario needs at least one server")
        self._server_count = count
        self._server_cores = cores
        if technology is not None:
            self._default_technology = technology
        if config is not None:
            self._base_config = config
        return self

    def technology(
        self, technology: Technology, *, client: ProtocolClientFactory | None = None
    ) -> "Scenario":
        """Register a third :class:`Technology` on every server node.

        ``client`` supplies the matching client-side stack factory; without
        it the technology must already have a globally registered client
        protocol (see :func:`repro.cluster.protocols.register_client_protocol`).
        """
        self._technologies.append((technology, client))
        return self

    # -- services -----------------------------------------------------------

    def service(
        self,
        name: str,
        operations: Iterable[OperationSpec] = (),
        *,
        technology: str | None = None,
        replicas: int = 1,
        policy: Any = POLICY_ROUND_ROBIN,
        version_routing: bool = False,
    ) -> "Scenario":
        """Declare a service: replicas spread round-robin over the servers.

        ``version_routing`` arms version-aware replica selection from the
        start (clients stay on replicas fresh w.r.t. their §6 watermark and
        compatible with their bound stubs); a ``rolling`` / ``canary``
        rollout arms it automatically when it starts, so the flag is only
        needed for scenarios that diverge replica versions by hand.
        """
        if replicas < 1:
            raise ClusterError(f"service {name!r} needs at least one replica")
        self._services.append(
            _ServiceSpec(
                name, tuple(operations), technology, replicas, policy, version_routing
            )
        )
        return self

    # -- clients ------------------------------------------------------------

    def clients(
        self,
        count: int,
        *,
        protocol_mix: dict[str, float] | None = None,
        service: str | None = None,
        calls: int = 10,
        operation: str | None = None,
        arguments: tuple[Any, ...] = (),
        think_time: float = 0.0,
        arrival: Any = 0.0,
        stale_every: int | None = None,
        stale_operation: str = "no_such_operation",
        retry: RetryPolicy | None = None,
        cohort: CohortModel | None = None,
    ) -> "Scenario":
        """Declare a fleet of ``count`` clients.

        Each client targets either the named ``service`` or — under a
        ``protocol_mix`` like ``{"soap": 0.5, "corba": 0.5}`` — the first
        declared service of its assigned protocol; protocols are assigned by
        a deterministic weighted interleave.  ``arrival`` staggers start
        times: a float ``s`` starts client *i* at ``i * s``, a callable maps
        the client index to its offset, and an
        :class:`~repro.traffic.arrivals.ArrivalProcess` (``Poisson``,
        ``ParetoHeavyTail``, ``Diurnal``, ``FlashCrowd``, ``ClientChurn``)
        draws the whole group's offsets from one seeded stream — open-loop
        load shapes, identical for discrete clients and cohort flow mass
        (see :mod:`repro.traffic`).  ``operation`` defaults to the first
        operation declared for the target service.  ``retry`` makes the
        group failover-aware: a :class:`repro.faults.RetryPolicy` reissues
        transport-failed or timed-out calls against whatever replicas the
        routing policy still considers alive.

        ``cohort`` scales the group past the discrete fleet's practical
        ceiling: the group's first ``cohort.representatives`` clients stay
        fully discrete while the remaining mass runs as aggregate
        :class:`~repro.cluster.cohort.CohortFlow` arrival processes through
        the same routing policies and server-core model (see
        :mod:`repro.cluster.cohort`).  ``clients(1_000_000,
        cohort=CohortModel(representatives=32), ...)`` is the
        million-client form.
        """
        if count < 1:
            raise ClusterError("a client group needs at least one client")
        if service is not None and protocol_mix is not None:
            raise ClusterError("give a client group either a service or a protocol_mix")
        if cohort is not None and not isinstance(cohort, CohortModel):
            raise ClusterError(
                f"cohort must be a CohortModel, got {type(cohort).__name__}"
            )
        self._client_groups.append(
            _ClientGroupSpec(
                count=count,
                protocol_mix=tuple(protocol_mix.items()) if protocol_mix else None,
                service=service,
                calls=calls,
                operation=operation,
                arguments=tuple(arguments),
                think_time=think_time,
                arrival=arrival,
                stale_every=stale_every,
                stale_operation=stale_operation,
                retry=retry,
                cohort=cohort,
            )
        )
        return self

    # -- objectives ---------------------------------------------------------

    def slo(self, *objectives: Any) -> "Scenario":
        """Declare service-level objectives evaluated after every run.

        ``objectives`` are :class:`repro.obs.slo.SLO` declarations (see
        :func:`~repro.obs.slo.latency_slo` and friends).  Declaring any
        arms observability metrics automatically if ``run(obs=...)`` does
        not: good/total series land in ``report.metrics`` and verdicts
        (compliance plus multi-window burn-rate alerts) on
        ``report.slo_results``.
        """
        self._slos.extend(objectives)
        return self

    # -- timeline -----------------------------------------------------------

    def at(self, time: float, action: Callable[..., None]) -> "Scenario":
        """Schedule a developer action at a run-relative virtual time.

        ``action`` is either one of the :func:`edit` / :func:`publish` /
        :func:`churn` helpers (called with the runtime) or any zero-argument
        callable.
        """
        self._timeline.append((time, action))
        return self

    # -- execution ----------------------------------------------------------

    def build(self) -> "ScenarioRuntime":
        """Build the world (servers, services, registry) without running it."""
        return ScenarioRuntime(self)

    def run(
        self,
        until: float | None = None,
        trace: Any | None = None,
        obs: Any | None = None,
    ) -> ClusterReport:
        """Build the world, publish every service, drive the fleet, report.

        ``trace`` is an optional :class:`repro.traffic.trace.TraceWriter`;
        use :func:`repro.traffic.record` for the full record protocol.
        ``obs`` arms observability for the run: ``True`` for defaults, an
        :class:`repro.obs.ObsConfig`, or a prepared
        :class:`repro.obs.Observability` instance (pass the instance to read
        spans/metrics/flight dumps back after the run).
        """
        return self.build().run(until=until, trace=trace, obs=obs)

    def __repr__(self) -> str:
        return (
            f"Scenario({self.name!r}, servers={self._server_count}, "
            f"services={[s.name for s in self._services]}, "
            f"client_groups={len(self._client_groups)})"
        )


def _weighted_interleave(mix: Sequence[tuple[str, float]], count: int) -> list[str]:
    """Deterministically spread ``count`` slots over weighted protocol names."""
    names = [name for name, weight in mix if weight > 0]
    if not names:
        raise ClusterError("protocol_mix needs at least one positive weight")
    weights = dict(mix)
    total = sum(weights[name] for name in names)
    assigned = {name: 0 for name in names}
    sequence = []
    for slot in range(1, count + 1):
        # The protocol furthest behind its target share wins the slot
        # (ties: declaration order), so mixes interleave instead of blocking.
        name = max(names, key=lambda n: (weights[n] / total) * slot - assigned[n])
        assigned[name] += 1
        sequence.append(name)
    return sequence


class ScenarioRuntime:
    """A built scenario world: servers up, services deployed and registered."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        self.world = ClusterWorld(latency=scenario._latency)
        base_config = scenario._base_config if scenario._base_config is not None else SDEConfig()
        self.nodes: list[ServerNode] = []
        for index in range(scenario._server_count):
            config = replace(base_config)
            if scenario._server_cores is not None and config.server_cores is None:
                config.server_cores = scenario._server_cores
            # A single-machine scenario keeps the seed's host name (message
            # sizes embed URLs, so the name feeds size-dependent delays —
            # this keeps one-server runs byte-comparable with the seed).
            name = "server" if scenario._server_count == 1 else f"server-{index + 1}"
            node = self.world.add_server(name, config)
            for technology, _client in scenario._technologies:
                node.sde.register_technology(technology)
            self.nodes.append(node)
        self._protocol_factories = {
            technology.name: client
            for technology, client in scenario._technologies
            if client is not None
        }
        self.registry = ServiceRegistry()
        self._service_specs: dict[str, _ServiceSpec] = {}
        self._placement_cursor = 0
        self._deploy_services()
        self._cde: ClientDevelopmentEnvironment | None = None
        self._published_services: set[str] = set()
        #: The world's fault injector — the ``crash`` / ``restart`` /
        #: ``partition`` / ``heal`` / ``drop_link`` timeline actions act
        #: through it, and the fleet driver reads its outage log for the
        #: report's availability metrics.  Created eagerly (it is inert
        #: until a fault is injected) so mid-run timeline actions and the
        #: driver share one instance.
        self.fault_injector = FaultInjector(self.world)
        #: Bumped by every run(); self-rescheduling timeline actions (churn)
        #: compare against it so a finished window's rounds go quiet.
        self.run_epoch = 0

    # -- deployment ---------------------------------------------------------

    def _default_technology(self) -> str:
        return self.scenario._default_technology or DEFAULT_TECHNOLOGY

    def _deploy_services(self) -> None:
        for spec in self.scenario._services:
            technology_name = spec.technology or self._default_technology()
            entry = ServiceEntry(spec.name, technology_name, make_policy(spec.policy))
            entry.version_routing = spec.version_routing
            suffixed = spec.replicas > len(self.nodes)
            for index in range(spec.replicas):
                # The placement cursor advances across services, so a later
                # service fills the machines an earlier one left idle.
                node = self.nodes[self._placement_cursor % len(self.nodes)]
                self._placement_cursor += 1
                # Underscore, not dash: the class name must stay a valid
                # identifier (the dashed variant failed class creation).
                class_name = f"{spec.name}_{index + 1}" if suffixed else spec.name
                gateway = node.sde.gateway_class(technology_name)
                dynamic_class = node.environment.create_class(class_name, superclass=gateway)
                for op_spec in spec.operations:
                    dynamic_class.add_method(
                        op_spec.name,
                        op_spec.parameter_objects(),
                        op_spec.return_type,
                        body=op_spec.body,
                        distributed=True,
                    )
                dynamic_class.new_instance()
                replica = entry.add_replica(node, node.sde.managed_server(class_name))
                self._watch_publications(entry, replica)
            self.registry.register(entry)
            self._service_specs[spec.name] = spec

    @staticmethod
    def _watch_publications(entry: ServiceEntry, replica: Replica) -> None:
        """Feed the service's version graph from this replica's publisher.

        The minimal deployment-time publication already happened before the
        replica joined the registry, so the publisher's history is
        backfilled first and the listener keeps the graph current from here
        on (pure bookkeeping — no scheduler events, determinism preserved).
        """
        graph = entry.version_graph
        publisher = replica.publisher
        for record in publisher.publication_history:
            graph.record(replica.index, record.version, record.description, record.time)
        publisher.publication_listeners.append(
            lambda record, index=replica.index: graph.record(
                index, record.version, record.description, record.time
            )
        )

    # -- inspection ---------------------------------------------------------

    def replicas(self, service: str) -> list[Replica]:
        """The deployed replicas of ``service``, in index order."""
        return self.registry.lookup(service).replicas

    def dynamic_class(self, service: str, replica: int = 0) -> DynamicClass:
        """The dynamic class backing one replica of ``service``."""
        return self.replicas(service)[replica].managed.dynamic_class

    def node_of(self, service: str, replica: int = 0) -> ServerNode:
        """The server node hosting one replica of ``service``."""
        return self.replicas(service)[replica].node

    # -- interactive developer actions --------------------------------------

    def publish(self, service: str | None = None) -> None:
        """Force publication (all services by default) and let it complete."""
        entries: Iterable[ServiceEntry] = (
            (self.registry.lookup(service),) if service is not None else self.registry.services
        )
        self._force_and_settle(entries)

    def _force_and_settle(self, entries: Iterable[ServiceEntry]) -> None:
        generation_cost = 0.0
        for entry in entries:
            for replica in entry.replicas:
                replica.node.manager_interface.force_publication(replica.class_name)
                generation_cost = max(generation_cost, replica.node.sde.config.generation_cost)
            self._published_services.add(entry.name)
        self.world.run_for(generation_cost * 2)

    def settle(self) -> None:
        """Let pending stability timers expire and publications complete."""
        margin = max(
            node.sde.config.publication_timeout + node.sde.config.generation_cost * 2
            for node in self.nodes
        )
        self.world.run_for(margin + 0.001)

    @property
    def cde(self) -> ClientDevelopmentEnvironment:
        """A lazily created CDE session on its own client machine."""
        if self._cde is None:
            self._cde = ClientDevelopmentEnvironment(self.world.add_client("cde"))
        return self._cde

    def connect(
        self, service: str, replica: int = 0, reactive_updates: bool = True
    ) -> DynamicClientBinding:
        """Connect a CDE binding to one replica of a managed service."""
        entry = self.registry.lookup(service)
        publisher = entry.replicas[replica].publisher
        if entry.technology == "soap":
            return self.cde.connect_soap(publisher.document_url, reactive_updates=reactive_updates)
        if entry.technology == "corba":
            return self.cde.connect_corba(
                publisher.document_url,
                publisher.ior_url,  # type: ignore[attr-defined]
                reactive_updates=reactive_updates,
            )
        raise ClusterError(f"no CDE binding for technology {entry.technology!r}")

    # -- the measured run ---------------------------------------------------

    def run(
        self,
        until: float | None = None,
        trace: Any | None = None,
        obs: Any | None = None,
    ) -> ClusterReport:
        """Publish where still needed, drive the declared fleet, and report.

        Client fleets need current interface documents, so services not yet
        force-published (manually or by an earlier run) are published first;
        a client-less timeline run keeps the organic publication behaviour
        (stability timers, polling) intact.  ``until`` is a run-relative
        horizon: the run covers ``until`` virtual seconds from the measured
        window's start, whatever the world's clock already reads.  The
        timeline is part of the world's history, so it is armed exactly
        once — by the first run; an action cut off by that run's deadline
        never fires (developer actions are not replayed by later runs).
        """
        self.run_epoch += 1
        if self.scenario._client_groups:
            pending = [
                entry
                for entry in self.registry.services
                if entry.name not in self._published_services
            ]
            if pending:
                self._force_and_settle(pending)
        plans, flows = self._build_plans()
        if not plans and not flows and until is None and self.scenario._timeline:
            raise ClusterError(
                "a scenario with timeline actions but no clients needs run(until=...)"
            )
        scripted = (
            [(time, self._bind_action(action)) for time, action in self.scenario._timeline]
            if self.run_epoch == 1
            else []
        )
        from repro.obs.api import Observability

        observability = Observability.resolve(obs)
        slos = tuple(self.scenario._slos)
        if slos:
            # Declared objectives arm metrics on their own; an explicit
            # obs argument keeps its config and merely gains the SLOs
            # (unless it already declares its own set, which wins).
            from repro.obs.api import ObsConfig

            if observability is None:
                observability = Observability(ObsConfig(slos=slos))
            elif not observability.config.slos:
                observability.config = replace(observability.config, slos=slos)
        if observability is not None:
            observability.install(self.world.scheduler)
        driver = FleetDriver(
            self.world.scheduler,
            self.registry,
            plans,
            scripted_events=scripted,
            protocol_factories=self._protocol_factories,
            description=f"scenario {self.scenario.name}",
            until=until,
            faults=self.fault_injector,
            cohorts=flows,
            trace=trace,
            obs=observability,
        )
        try:
            return driver.run()
        finally:
            if observability is not None:
                observability.uninstall()

    # -- plan building ------------------------------------------------------

    def _service_for_protocol(self, protocol: str) -> ServiceEntry:
        for entry in self.registry.services:
            if entry.technology == protocol:
                return entry
        raise ClusterError(f"no declared service uses technology {protocol!r}")

    def _default_operation(self, service: str) -> str:
        spec = self._service_specs[service]
        if not spec.operations:
            raise ClusterError(
                f"service {service!r} declares no operations; name one in clients()"
            )
        return spec.operations[0].name

    def _build_plans(self) -> tuple[list[ClientPlan], list[CohortFlow]]:
        plans: list[ClientPlan] = []
        flows: list[CohortFlow] = []
        discrete_counts = [
            group.count
            if group.cohort is None
            else min(group.count, group.cohort.representatives)
            for group in self.scenario._client_groups
        ]
        # A prefix distinct from add_client's auto-names ("client-{n}"), so
        # an ad-hoc machine can never alias a fleet client's host.
        hosts = self.world.client_fleet(sum(discrete_counts), prefix="fleet-client-")
        index = 0
        for group, discrete_count in zip(self.scenario._client_groups, discrete_counts):
            # One resolution covers the FULL group (scalar spacing, callable,
            # or seeded ArrivalProcess — see repro.traffic.arrivals), so the
            # discrete representatives and the flow mass draw their offsets
            # from the same stream: cohort aggregation never shifts when
            # anyone arrives.
            group_offsets = resolve_offsets(group.arrival, group.count)
            # The protocol interleave covers the FULL group, so the
            # representatives' assignments are exactly what positions
            # 0..reps-1 would get in the all-discrete group and the flow
            # mass inherits the rest — cohort aggregation never shifts who
            # speaks which protocol.
            if group.service is not None:
                entry = self.registry.lookup(group.service)
                targets = [(entry.technology, entry.name)] * group.count
            else:
                mix = group.protocol_mix or ((self._default_technology(), 1.0),)
                protocols = _weighted_interleave(mix, group.count)
                targets = [
                    (protocol, self._service_for_protocol(protocol).name)
                    for protocol in protocols
                ]
            for position in range(discrete_count):
                protocol, service = targets[position]
                operation = group.operation or self._default_operation(service)
                plans.append(
                    ClientPlan(
                        index=index,
                        host=hosts[index],
                        protocol=protocol,
                        service=service,
                        calls=group.calls,
                        operation=operation,
                        arguments=group.arguments,
                        think_time=group.think_time,
                        start_offset=group_offsets[position],
                        stale_every=group.stale_every,
                        stale_operation=group.stale_operation,
                        retry=group.retry,
                    )
                )
                index += 1
            if group.cohort is None or group.count <= discrete_count:
                continue
            members: dict[tuple[str, str], list[int]] = {}
            for position in range(discrete_count, group.count):
                members.setdefault(targets[position], []).append(position)
            for (protocol, service), positions in members.items():
                flow_number = len(flows) + 1
                host = self._cohort_host(flow_number)
                flows.append(
                    CohortFlow(
                        index=flow_number,
                        name=f"cohort-{flow_number}",
                        protocol=protocol,
                        service=service,
                        operation=group.operation or self._default_operation(service),
                        arguments=group.arguments,
                        calls=group.calls,
                        think_time=group.think_time,
                        offsets=array(
                            "d", sorted(group_offsets[p] for p in positions)
                        ),
                        model=group.cohort,
                        host=host,
                        world=self.world,
                        registry=self.registry,
                    )
                )
        return plans, flows

    def _cohort_host(self, number: int) -> Host:
        """The reusable client machine carrying one cohort flow's stack."""
        name = f"cohort-client-{number}"
        try:
            return self.world.network.host(name)
        except HostNotFoundError:
            return self.world.add_client(name)

    def _bind_action(self, action: Callable[..., None]) -> Callable[[], None]:
        try:
            parameter_count = len(inspect.signature(action).parameters)
        except (TypeError, ValueError):
            parameter_count = 1
        if parameter_count == 0:
            return action
        bound = lambda: action(self)  # noqa: E731 - metadata is attached below
        meta = getattr(action, "__trace_event__", None)
        if meta is not None:
            # Keep the trace metadata visible on the bound callable, so the
            # driver's scripted-event guard can record the firing.
            bound.__trace_event__ = meta  # type: ignore[attr-defined]
        return bound

    def __repr__(self) -> str:
        return (
            f"ScenarioRuntime({self.scenario.name!r}, "
            f"nodes={[n.name for n in self.nodes]}, "
            f"services={[s.name for s in self.registry.services]})"
        )
