"""``repro.cluster`` — the declarative, protocol-agnostic Scenario API.

One composable front door for N-server × M-client simulated worlds: a
:class:`Scenario` describes machines, replicated services with routing
policies, client fleets with protocol mixes, and a timeline of developer
actions; ``run()`` drives it deterministically and returns a
:class:`ClusterReport` with unified per-service / per-client RTT,
stall-queue and publication metrics.

Layering (see ARCHITECTURE.md "Scenario API"):

* :mod:`repro.cluster.topology` — :class:`ClusterWorld` /
  :class:`ServerNode`: generalised host creation (any number of SDE server
  machines and client machines on one scheduler/network);
* :mod:`repro.cluster.registry` — :class:`ServiceRegistry` and the
  replica-selection policies (round-robin / sticky / least-loaded) on top
  of the transport layer's :class:`~repro.net.transport.RouteTable`;
* :mod:`repro.cluster.protocols` — pluggable client-side protocol stacks
  (SOAP, CORBA, and any registered third technology);
* :mod:`repro.cluster.driver` — the deterministic callback-driven fleet
  driver;
* :mod:`repro.cluster.cohort` — million-client scale: cohort/flow-level
  aggregation of the modeled client mass (:class:`CohortModel` /
  :class:`CohortFlow`) over the same policies and server cores;
* :mod:`repro.cluster.histogram` — the streaming fixed-bin
  :class:`LatencyHistogram` behind cohort RTT accounting;
* :mod:`repro.cluster.report` — the unified result objects;
* :mod:`repro.cluster.scenario` — the :class:`Scenario` builder plus the
  ``op`` / ``edit`` / ``publish`` / ``churn`` helpers.

The fault-injection subsystem (:mod:`repro.faults`) plugs in underneath:
its timeline actions (``crash`` / ``restart`` / ``partition`` / ``heal`` /
``drop_link`` / ``restore_link``) and the client-side
:class:`~repro.faults.RetryPolicy` are re-exported here so resilience
scenarios read as one vocabulary (see ARCHITECTURE.md "Fault model").

Likewise the interface-evolution subsystem (:mod:`repro.evolve`): its
rollout timeline actions (``rolling`` / ``canary`` / ``abort_rollout``)
and the ``upgrade`` helper are re-exported, and every
:class:`~repro.cluster.registry.ServiceEntry` carries the subsystem's
per-service version graph and version-aware routing switches (see
ARCHITECTURE.md "Interface evolution").

The legacy two-host :class:`repro.testbed.LiveDevelopmentTestbed` and the
single-service :mod:`repro.workload` driver are thin adapters over this
package.
"""

from repro.cluster.cohort import CohortFlow, CohortModel
from repro.cluster.driver import ClientPlan, FleetDriver
from repro.cluster.histogram import LatencyHistogram
from repro.cluster.protocols import (
    CorbaProtocolClient,
    ProtocolClient,
    SoapProtocolClient,
    client_protocol_factory,
    register_client_protocol,
    registered_client_protocols,
)
from repro.cluster.registry import (
    POLICY_LEAST_LOADED,
    POLICY_ROUND_ROBIN,
    POLICY_STICKY,
    LeastLoadedPolicy,
    Replica,
    ReplicaPolicy,
    RoundRobinPolicy,
    ServiceEntry,
    ServiceRegistry,
    StickyPolicy,
    make_policy,
)
from repro.cluster.presets import fault_drill_scenario
from repro.cluster.report import (
    ClientReport,
    ClusterReport,
    CohortReport,
    NodeReport,
    ReplicaReport,
    ServiceReport,
)
from repro.cluster.scenario import (
    OperationSpec,
    Scenario,
    ScenarioRuntime,
    churn,
    edit,
    op,
    publish,
)
from repro.cluster.topology import ClusterWorld, ServerNode
from repro.evolve import (
    InterfaceUpgrade,
    RolloutReport,
    WaveReport,
    abort_rollout,
    canary,
    rolling,
    upgrade,
)
from repro.faults import (
    FaultInjector,
    LinkFaultProfile,
    RetryPolicy,
    crash,
    drop_link,
    heal,
    partition,
    restart,
    restore_link,
)

__all__ = [
    "Scenario",
    "ScenarioRuntime",
    "fault_drill_scenario",
    "OperationSpec",
    "op",
    "edit",
    "publish",
    "churn",
    "rolling",
    "canary",
    "abort_rollout",
    "upgrade",
    "InterfaceUpgrade",
    "RolloutReport",
    "WaveReport",
    "crash",
    "restart",
    "partition",
    "heal",
    "drop_link",
    "restore_link",
    "FaultInjector",
    "LinkFaultProfile",
    "RetryPolicy",
    "ClusterReport",
    "ClientReport",
    "ServiceReport",
    "ReplicaReport",
    "NodeReport",
    "CohortReport",
    "CohortModel",
    "CohortFlow",
    "LatencyHistogram",
    "ClusterWorld",
    "ServerNode",
    "ServiceRegistry",
    "ServiceEntry",
    "Replica",
    "ReplicaPolicy",
    "RoundRobinPolicy",
    "StickyPolicy",
    "LeastLoadedPolicy",
    "make_policy",
    "POLICY_ROUND_ROBIN",
    "POLICY_STICKY",
    "POLICY_LEAST_LOADED",
    "FleetDriver",
    "ClientPlan",
    "ProtocolClient",
    "SoapProtocolClient",
    "CorbaProtocolClient",
    "register_client_protocol",
    "client_protocol_factory",
    "registered_client_protocols",
]
