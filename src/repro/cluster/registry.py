"""Service registry and replica-selection policies.

A scenario's services are N-replica entities: one logical name backed by
managed server classes spread across the world's server nodes.  The
registry resolves a service name to a :class:`ServiceEntry` through the
transport layer's :class:`~repro.net.transport.RouteTable` (O(1) exact
match, registration-order prefix aliases), and each entry picks a replica
per call through a pluggable policy:

* **round-robin** — a global cyclic counter, so consecutive calls (in
  deterministic event order) rotate through the replicas;
* **sticky** — the first call of each client pins it to a replica
  (spread round-robin); every later call of that client lands on the same
  replica, surviving mid-run publications and edits;
* **least-loaded** — the replica with the fewest in-flight calls at
  selection time, ties broken by replica index.

All three policies are **failover-aware**: a replica whose server node is
crashed (``node.is_alive`` false, see :mod:`repro.faults`) is skipped —
round-robin rotates past it, least-loaded excludes it, and a sticky session
pinned to it deterministically re-pins to the next alive replica in cyclic
index order (and stays there).  Replicas can also be removed outright
(:meth:`ServiceEntry.remove_replica`, e.g. replica churn); sticky pins
reference replicas by their immutable index, so removal re-pins exactly
like a crash instead of silently shifting every pin.  When every replica of
a service is dead, selection raises :class:`NoAliveReplicaError`, which
clients with a retry policy treat as retryable.

All three are deterministic: selection depends only on the (deterministic)
order in which calls are issued and the (deterministic) fault timeline.

Since the interface-evolution subsystem (:mod:`repro.evolve`) every entry
also carries a per-service **version graph** (each replica's publication
history) and can route **version-aware**: when ``version_routing`` is armed
(a rollout does this automatically) and the caller supplies its
:class:`~repro.evolve.graph.ClientBinding`, selection narrows the policy's
candidate list in two tiers —

1. replicas that are alive, *fresh* (publish at least the client's §6
   recency watermark) and *compatible* with the stubs the client bound;
2. replicas that are alive and fresh (the client will observe an explicit
   §5.7 stale fault there and rebind — never a silently wrong answer);

and when not even a fresh replica is alive, raises
:class:`NoAliveReplicaError` (retryable, exactly like the all-dead case):
serving from an alive-but-older replica would silently violate §6.

Freshness is what preserves the §6 recency guarantee *across* a rollout's
deliberately-divergent replica versions: once a client has observed v+1 it
is never routed back to a replica still publishing v.

Bulk selection for cohort flows
-------------------------------

The cohort-flow layer (:mod:`repro.cluster.cohort`) routes a whole tick's
worth of modeled calls at once.  :meth:`ServiceEntry.select_many` mirrors
:meth:`ServiceEntry.select` — same failover skipping, same version tiers —
but returns ``[(replica, call_count), ...]`` computed in closed form, so a
million modeled calls cost O(replicas), not O(calls).  Each built-in
policy's bulk result equals what ``count`` repeated single selections
would have produced (round-robin: exact cursor arithmetic; sticky:
aggregate mass pinning; least-loaded: deterministic water-fill), which is
what the cohort-vs-discrete Hypothesis property pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Hashable

from repro.errors import ClusterError, NoAliveReplicaError, ServiceNotFoundError
from repro.evolve.graph import VersionGraph
from repro.net.transport import RouteTable
from repro.obs import hooks as _obs_hooks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sde.manager import ManagedServer
    from repro.cluster.topology import ServerNode
    from repro.evolve.graph import ClientBinding
    from repro.evolve.rollout import RolloutController, RolloutReport

POLICY_ROUND_ROBIN = "round-robin"
POLICY_STICKY = "sticky"
POLICY_LEAST_LOADED = "least-loaded"

#: Prefix-route scope used for service-name aliases in the route table.
_ALIAS_SCOPE = "service-alias"


@dataclass
class Replica:
    """One deployed copy of a service: a managed server on some node."""

    service: str
    index: int
    node: "ServerNode"
    managed: "ManagedServer"
    #: Calls currently awaiting a reply from this replica.
    in_flight: int = 0
    #: Calls ever routed to this replica.
    calls_routed: int = 0

    @property
    def alive(self) -> bool:
        """True while the hosting node is up (always true off-cluster)."""
        node = self.node
        return node is None or getattr(node, "is_alive", True)

    @property
    def class_name(self) -> str:
        """The dynamic-class name backing this replica."""
        return self.managed.name

    @property
    def publisher(self):
        """The replica's interface publisher."""
        return self.managed.publisher

    @property
    def call_handler(self):
        """The replica's RMI call handler."""
        return self.managed.call_handler

    def __repr__(self) -> str:
        return (
            f"Replica({self.service}#{self.index} on {self.node.name}, "
            f"in_flight={self.in_flight})"
        )


class ReplicaPolicy:
    """Base class for replica-selection policies.

    Policies receive the full replica list (dead ones included) and must
    skip replicas whose node is down, raising :class:`NoAliveReplicaError`
    when none survive — :func:`_require_alive` implements the common case.
    """

    name = "abstract"

    def select(self, replicas: list[Replica], client_key: Hashable) -> Replica:
        """Pick the replica that should serve ``client_key``'s next call."""
        raise NotImplementedError

    def select_many(
        self,
        replicas: list[Replica],
        client_key: Hashable,
        count: int,
        usable: "Callable[[Replica], bool] | None" = None,
    ) -> list[tuple[Replica, int]]:
        """Distribute ``count`` calls from one flow; ``[(replica, n), ...]``.

        Built-in policies override this with closed-form O(replicas)
        implementations equivalent to ``count`` repeated :meth:`select`
        calls.  This default keeps third-party policies working by looping
        ``select`` over the usable subset — O(count), correct but slow for
        large flows (positional policies that override :meth:`select` only
        see the filtered list here, matching the tiered-candidate narrowing
        :class:`ServiceEntry` already performs).
        """
        if count <= 0:
            return []
        pool = replicas if usable is None else [r for r in replicas if usable(r)]
        if not pool:
            service = replicas[0].service if replicas else "?"
            raise NoAliveReplicaError(f"every replica of {service!r} is down")
        shares: dict[int, int] = {}
        order: list[Replica] = []
        for _ in range(count):
            replica = self.select(pool, client_key)
            key = id(replica)
            if key in shares:
                shares[key] += 1
            else:
                shares[key] = 1
                order.append(replica)
        return [(replica, shares[id(replica)]) for replica in order]


def _usable_positions(
    replicas: list[Replica], usable: "Callable[[Replica], bool] | None"
) -> list[int]:
    """Positions of the selectable replicas (alive, or the caller's test)."""
    if usable is None:
        return [i for i, replica in enumerate(replicas) if replica.alive]
    return [i for i, replica in enumerate(replicas) if usable(replica)]


def _raise_none_usable(replicas: list[Replica]) -> None:
    service = replicas[0].service if replicas else "?"
    raise NoAliveReplicaError(f"every replica of {service!r} is down")


def _require_alive(replicas: list[Replica]) -> list[Replica]:
    """The alive subset of ``replicas``; raises when it is empty."""
    alive = [replica for replica in replicas if replica.alive]
    if not alive:
        service = replicas[0].service if replicas else "?"
        raise NoAliveReplicaError(f"every replica of {service!r} is down")
    return alive


class RoundRobinPolicy(ReplicaPolicy):
    """Cycle through the replicas in index order, one call at a time.

    Dead replicas are rotated past (the cursor still advances over them, so
    a restarted replica resumes its original slot in the cycle).
    """

    name = POLICY_ROUND_ROBIN

    def __init__(self) -> None:
        self._next = 0

    def select(self, replicas: list[Replica], client_key: Hashable) -> Replica:
        count = len(replicas)
        for _ in range(count):
            replica = replicas[self._next % count]
            self._next += 1
            if replica.alive:
                return replica
        service = replicas[0].service if replicas else "?"
        raise NoAliveReplicaError(f"every replica of {service!r} is down")

    def select_many(
        self,
        replicas: list[Replica],
        client_key: Hashable,
        count: int,
        usable: "Callable[[Replica], bool] | None" = None,
    ) -> list[tuple[Replica, int]]:
        """Closed-form rotation: exactly ``count`` repeated :meth:`select`\\ s.

        The usable positions, taken cyclically from the cursor, each receive
        ``count // usable`` calls plus one extra for the first
        ``count % usable`` of them; the cursor ends just past the last
        position selected (mod the replica count — the observable part of
        the raw counter).
        """
        if count <= 0:
            return []
        total = len(replicas)
        positions = _usable_positions(replicas, usable)
        if not positions:
            _raise_none_usable(replicas)
        start = self._next % total
        ordered = [p for p in positions if p >= start] + [p for p in positions if p < start]
        base, extra = divmod(count, len(ordered))
        picks = []
        for rank, position in enumerate(ordered):
            share = base + (1 if rank < extra else 0)
            if share:
                picks.append((replicas[position], share))
        last = ordered[extra - 1] if extra else ordered[-1]
        self._next = (last + 1) % total
        return picks


class StickyPolicy(ReplicaPolicy):
    """Pin each client to one replica; first contact assigns round-robin.

    Pins reference a replica's immutable ``index``, not its list position,
    so removing a replica never silently shifts another client's pin.  When
    the pinned replica is dead or removed, the session deterministically
    re-pins to the next alive replica in cyclic index order — and stays
    there (no flap-back when the old replica restarts).
    """

    name = POLICY_STICKY

    def __init__(self) -> None:
        self._pins: dict[Hashable, int] = {}
        self._next = 0
        #: Aggregate pins for cohort flows: flow key -> {replica index: the
        #: share of the flow's modeled clients pinned there}.
        self._mass: dict[Hashable, dict[int, int]] = {}

    def select(self, replicas: list[Replica], client_key: Hashable) -> Replica:
        pin = self._pins.get(client_key)
        if pin is not None:
            for replica in replicas:
                if replica.index == pin:
                    if replica.alive:
                        return replica
                    break
            replica = self._repin(replicas, pin)
            self._pins[client_key] = replica.index
            return replica
        # First contact: spread pins round-robin over the *positions*,
        # skipping dead replicas the same way round-robin routing does.
        count = len(replicas)
        if count == 0:
            raise ClusterError("cannot pin a session: service has no replicas")
        for _ in range(count):
            replica = replicas[self._next % count]
            self._next += 1
            if replica.alive:
                self._pins[client_key] = replica.index
                return replica
        raise NoAliveReplicaError(f"every replica of {replicas[0].service!r} is down")

    @staticmethod
    def _repin(replicas: list[Replica], pin: int) -> Replica:
        """The next alive replica in cyclic index order after ``pin``."""
        alive = _require_alive(replicas)
        return min(alive, key=lambda r: (0 if r.index > pin else 1, r.index))

    def select_many(
        self,
        replicas: list[Replica],
        client_key: Hashable,
        count: int,
        usable: "Callable[[Replica], bool] | None" = None,
    ) -> list[tuple[Replica, int]]:
        """Aggregate sticky: pin the flow's *mass*, not individual clients.

        First contact spreads the flow's modeled clients round-robin across
        the usable replicas (exactly how ``count`` individual first contacts
        would pin) and remembers the split by immutable replica index.
        Later calls distribute proportionally to the remembered split —
        largest-remainder rounding, ties to the lowest index — and the share
        pinned to a replica that is now dead, removed or unreachable re-pins
        to the next usable replica in cyclic index order, persistently, just
        like an individual sticky session.
        """
        if count <= 0:
            return []
        positions = _usable_positions(replicas, usable)
        if not positions:
            _raise_none_usable(replicas)
        by_index = {replicas[p].index: replicas[p] for p in positions}
        weights = self._mass.get(client_key)
        if weights is None:
            # First contact: round-robin spread over usable positions from
            # the shared first-contact cursor.
            total = len(replicas)
            start = self._next % total
            ordered = [p for p in positions if p >= start] + [
                p for p in positions if p < start
            ]
            base, extra = divmod(count, len(ordered))
            weights = {}
            for rank, position in enumerate(ordered):
                share = base + (1 if rank < extra else 0)
                if share:
                    weights[replicas[position].index] = share
            last = ordered[extra - 1] if extra else ordered[-1]
            self._next = (last + 1) % total
            self._mass[client_key] = weights
            return [(by_index[index], share) for index, share in weights.items()]
        # Re-pin the share of departed/unreachable replicas, persistently.
        usable_indexes = sorted(by_index)
        repinned: dict[int, int] = {}
        for index in sorted(weights):
            weight = weights[index]
            if index in by_index:
                target = index
            else:
                target = min(
                    usable_indexes, key=lambda i: (0 if i > index else 1, i)
                )
            repinned[target] = repinned.get(target, 0) + weight
        self._mass[client_key] = repinned
        # Distribute ``count`` proportionally (largest remainder, ties to
        # the lowest replica index).
        total_weight = sum(repinned.values())
        shares: dict[int, int] = {}
        remainders: list[tuple[float, int]] = []
        assigned = 0
        for index in sorted(repinned):
            exact = count * repinned[index] / total_weight
            share = int(count * repinned[index] // total_weight)
            shares[index] = share
            assigned += share
            remainders.append((exact - share, -index))
        remainders.sort(reverse=True)
        for _, neg_index in remainders[: count - assigned]:
            shares[-neg_index] += 1
        return [
            (by_index[index], shares[index])
            for index in sorted(shares)
            if shares[index]
        ]


class LeastLoadedPolicy(ReplicaPolicy):
    """Pick the replica with the fewest in-flight calls (ties: lowest index).

    Crashed replicas are excluded outright — their in-flight counter may be
    frozen at zero, which must not make a dead node look attractive.
    """

    name = POLICY_LEAST_LOADED

    def select(self, replicas: list[Replica], client_key: Hashable) -> Replica:
        alive = _require_alive(replicas)
        return min(alive, key=lambda replica: (replica.in_flight, replica.index))

    def select_many(
        self,
        replicas: list[Replica],
        client_key: Hashable,
        count: int,
        usable: "Callable[[Replica], bool] | None" = None,
    ) -> list[tuple[Replica, int]]:
        """Deterministic water-fill over the in-flight gauges.

        Equivalent to assigning each of the ``count`` calls greedily to the
        currently least-loaded usable replica (ties to the lowest index) if
        each assignment bumped that replica's notional load by one — the
        classic water-fill, computed in closed form.  The real ``in_flight``
        gauges are *not* mutated: flow calls settle within their tick, so
        the modeled load does not linger into the next selection.
        """
        if count <= 0:
            return []
        positions = _usable_positions(replicas, usable)
        if not positions:
            _raise_none_usable(replicas)
        order = sorted(
            (replicas[p] for p in positions),
            key=lambda replica: (replica.in_flight, replica.index),
        )
        loads = [replica.in_flight for replica in order]
        # Smallest pool of lowest-loaded replicas whose common water line
        # stays at or below the next replica's load.
        prefix = 0
        used = len(order)
        for m in range(1, len(order)):
            prefix += loads[m - 1]
            if count + prefix <= m * loads[m]:
                used = m
                break
        level, spill = divmod(count + sum(loads[:used]), used)
        # Pool minimality guarantees every pooled load sits at or below the
        # line, so shares are non-negative and the ``spill`` replicas ending
        # one above it are simply the lowest indexes (the greedy tie-break).
        shares = {
            replica.index: level - loads[rank]
            for rank, replica in enumerate(order[:used])
        }
        for index in sorted(shares)[:spill]:
            shares[index] += 1
        by_index = {replica.index: replica for replica in order[:used]}
        return [
            (by_index[index], shares[index])
            for index in sorted(shares)
            if shares[index]
        ]


_POLICY_FACTORIES = {
    POLICY_ROUND_ROBIN: RoundRobinPolicy,
    POLICY_STICKY: StickyPolicy,
    POLICY_LEAST_LOADED: LeastLoadedPolicy,
}


def make_policy(policy: "str | ReplicaPolicy") -> ReplicaPolicy:
    """Resolve a policy name (or pass through a policy instance)."""
    if isinstance(policy, ReplicaPolicy):
        return policy
    factory = _POLICY_FACTORIES.get(policy)
    if factory is None:
        raise ClusterError(
            f"unknown replica policy {policy!r}; known: {sorted(_POLICY_FACTORIES)}"
        )
    return factory()


@dataclass
class ServiceEntry:
    """One logical service: a name, a technology, a policy, its replicas."""

    name: str
    technology: str
    policy: ReplicaPolicy = field(default_factory=RoundRobinPolicy)
    replicas: list[Replica] = field(default_factory=list)
    #: High-water mark of indexes ever assigned (survives removals).
    next_replica_index: int = field(default=0, repr=False, compare=False)
    #: Per-replica publication history (fed by the publishers' hooks when
    #: the service is deployed through a Scenario).
    version_graph: VersionGraph = field(
        default_factory=VersionGraph, repr=False, compare=False
    )
    #: When True, :meth:`select` honours the caller's ClientBinding (armed
    #: automatically by a rollout, or per-service in the Scenario API).
    version_routing: bool = field(default=False, compare=False)
    #: Retired operation -> replacement, for clients rebinding across a
    #: breaking upgrade (installed by the upgrade's ``successors``).
    operation_successors: dict[str, str] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: The rollout currently driving this service's replicas, if any.
    active_rollout: "RolloutController | None" = field(
        default=None, repr=False, compare=False
    )
    #: Every rollout ever run against this service, in start order.
    rollout_history: "list[RolloutReport]" = field(
        default_factory=list, repr=False, compare=False
    )

    def add_replica(self, node: "ServerNode", managed: "ManagedServer") -> Replica:
        """Attach one more deployed copy of this service.

        Indexes grow monotonically (never below the high-water mark), so a
        replica added after a removal can never reuse a departed replica's
        index and inherit its sticky pins.
        """
        index = max(
            self.next_replica_index,
            1 + max((replica.index for replica in self.replicas), default=-1),
        )
        self.next_replica_index = index + 1
        replica = Replica(service=self.name, index=index, node=node, managed=managed)
        self.replicas.append(replica)
        return replica

    def remove_replica(self, replica: "Replica | int") -> Replica:
        """Detach one deployed copy (by object or immutable index).

        Sticky sessions pinned to the removed replica are *not* touched
        here: the pin re-resolves on the session's next call and re-pins
        deterministically to the next alive replica in cyclic index order
        (see :class:`StickyPolicy`).
        """
        if isinstance(replica, int):
            matches = [r for r in self.replicas if r.index == replica]
            if not matches:
                raise ClusterError(
                    f"service {self.name!r} has no replica with index {replica}"
                )
            replica = matches[0]
        try:
            self.replicas.remove(replica)
        except ValueError:
            raise ClusterError(
                f"replica {replica!r} is not deployed for service {self.name!r}"
            ) from None
        # The departed index is burnt whatever way the replica list was
        # built, so a later add_replica can never resurrect it.
        self.next_replica_index = max(self.next_replica_index, replica.index + 1)
        return replica

    def select(self, client_key: Hashable, binding: "ClientBinding | None" = None) -> Replica:
        """Pick the replica for ``client_key``'s next call.

        With version routing armed and a ``binding`` supplied, the policy
        chooses among the compatible-and-fresh replicas first, then the
        merely fresh ones (stale-fault + rebind territory) — see the module
        docstring for the invariants each tier preserves.  When *no* alive
        replica is fresh, serving the call at all would hand the client an
        interface older than one it already observed, so selection raises
        :class:`NoAliveReplicaError` (retryable, like the all-dead case)
        rather than silently violating §6.

        Narrowing interacts with sticky sessions deliberately: a pinned
        replica excluded by a wave's incompatibility re-pins exactly like a
        dead one — deterministically, with no flap-back — so a session that
        crosses replicas during an upgrade stays migrated.
        """
        if not self.replicas:
            raise ClusterError(f"service {self.name!r} has no replicas")
        candidates = self.replicas
        tier = None
        if self.version_routing and binding is not None:
            fresh = [
                replica
                for replica in self.replicas
                if replica.alive and binding.fresh(replica)
            ]
            compatible = [
                replica for replica in fresh if binding.compatible_with(replica)
            ]
            if compatible:
                candidates = compatible
                tier = "compatible"
            elif fresh:
                candidates = fresh
                tier = "fresh"
            else:
                if _obs_hooks.ACTIVE is not None:
                    _obs_hooks.ACTIVE.note_no_alive(self.name)
                raise NoAliveReplicaError(
                    f"every replica of {self.name!r} is down or publishes an "
                    f"interface older than the client already observed "
                    f"(watermark v{binding.seen_version})"
                )
        try:
            replica = self.policy.select(candidates, client_key)
        except NoAliveReplicaError:
            if _obs_hooks.ACTIVE is not None:
                _obs_hooks.ACTIVE.note_no_alive(self.name)
            raise
        if _obs_hooks.ACTIVE is not None:
            _obs_hooks.ACTIVE.note_select(self.name, tier, self.policy.name)
        return replica

    def select_many(
        self,
        client_key: Hashable,
        count: int,
        binding: "ClientBinding | None" = None,
        reachable: "Callable[[Replica], bool] | None" = None,
    ) -> list[tuple[Replica, int]]:
        """Bulk variant of :meth:`select` for cohort flows.

        Distributes ``count`` calls in one policy decision and returns
        ``[(replica, calls), ...]``.  ``reachable`` lets the caller exclude
        replicas it cannot currently reach (a partitioned cohort host skips
        them exactly as a discrete client's timeout-and-retry would settle
        on reachable ones, minus the wasted attempts).  Version tiers,
        freshness and the §6 refusal behave exactly as in :meth:`select`.
        """
        if count <= 0:
            return []
        if not self.replicas:
            raise ClusterError(f"service {self.name!r} has no replicas")
        if reachable is None:
            usable = None
        else:
            test = reachable
            usable = lambda replica: replica.alive and test(replica)  # noqa: E731
        if self.version_routing and binding is not None:
            fresh = [
                replica
                for replica in self.replicas
                if replica.alive
                and (reachable is None or reachable(replica))
                and binding.fresh(replica)
            ]
            compatible = [
                replica for replica in fresh if binding.compatible_with(replica)
            ]
            if compatible:
                candidates = compatible
                tier = "compatible"
            elif fresh:
                candidates = fresh
                tier = "fresh"
            else:
                if _obs_hooks.ACTIVE is not None:
                    _obs_hooks.ACTIVE.note_no_alive(self.name)
                raise NoAliveReplicaError(
                    f"every replica of {self.name!r} is down or publishes an "
                    f"interface older than the client already observed "
                    f"(watermark v{binding.seen_version})"
                )
            # The tier lists are pre-filtered, so the policy's default
            # alive-check suffices below.
            picks = self.policy.select_many(candidates, client_key, count)
            if _obs_hooks.ACTIVE is not None:
                _obs_hooks.ACTIVE.note_select(self.name, tier, self.policy.name)
            return picks
        try:
            picks = self.policy.select_many(self.replicas, client_key, count, usable)
        except NoAliveReplicaError:
            if _obs_hooks.ACTIVE is not None:
                _obs_hooks.ACTIVE.note_no_alive(self.name)
            raise
        if _obs_hooks.ACTIVE is not None:
            _obs_hooks.ACTIVE.note_select(self.name, None, self.policy.name)
        return picks

    def __repr__(self) -> str:
        return (
            f"ServiceEntry({self.name!r}, {self.technology}, "
            f"policy={self.policy.name}, replicas={len(self.replicas)})"
        )


class ServiceRegistry:
    """Name → service resolution on top of the transport route table."""

    def __init__(self) -> None:
        self._routes: RouteTable[ServiceEntry] = RouteTable()
        self._services: list[ServiceEntry] = []

    def register(self, entry: ServiceEntry) -> ServiceEntry:
        """Register a service under its exact name."""
        if any(existing.name == entry.name for existing in self._services):
            raise ClusterError(f"service {entry.name!r} is already registered")
        if not entry.version_graph.service:
            entry.version_graph.service = entry.name
        self._routes.add_exact(entry.name, entry)
        self._services.append(entry)
        return entry

    def add_alias(self, prefix: str, service_name: str) -> None:
        """Route every name starting with ``prefix`` to ``service_name``."""
        self._routes.add_prefix(_ALIAS_SCOPE, prefix, self.lookup(service_name))

    def lookup(self, name: str) -> ServiceEntry:
        """Resolve a service name (exact, then registered prefix aliases)."""
        entry = self._routes.lookup(name, prefix_scope=_ALIAS_SCOPE, path=name)
        if entry is None:
            raise ServiceNotFoundError(
                f"no service {name!r}; registered: {[s.name for s in self._services]}"
            )
        return entry

    def select(
        self,
        name: str,
        client_key: Hashable,
        binding: "ClientBinding | None" = None,
    ) -> Replica:
        """Pick (and account) the replica for ``client_key``'s next call."""
        replica = self.lookup(name).select(client_key, binding)
        replica.calls_routed += 1
        return replica

    def select_many(
        self,
        name: str,
        client_key: Hashable,
        count: int,
        binding: "ClientBinding | None" = None,
        reachable: "Callable[[Replica], bool] | None" = None,
    ) -> list[tuple[Replica, int]]:
        """Bulk-pick (and account) replicas for ``count`` calls of one flow."""
        picks = self.lookup(name).select_many(client_key, count, binding, reachable)
        for replica, share in picks:
            replica.calls_routed += share
        return picks

    def remove_replica(self, name: str, replica: "Replica | int") -> Replica:
        """Detach one replica of the named service (replica churn)."""
        return self.lookup(name).remove_replica(replica)

    @staticmethod
    def begin_call(replica: Replica) -> None:
        """Note a call in flight to ``replica`` (least-loaded accounting)."""
        replica.in_flight += 1

    @staticmethod
    def end_call(replica: Replica) -> None:
        """Note a call to ``replica`` completed."""
        replica.in_flight -= 1

    @property
    def services(self) -> tuple[ServiceEntry, ...]:
        """Every registered service, in registration order."""
        return tuple(self._services)

    def __repr__(self) -> str:
        return f"ServiceRegistry({[s.name for s in self._services]})"
