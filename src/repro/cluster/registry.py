"""Service registry and replica-selection policies.

A scenario's services are N-replica entities: one logical name backed by
managed server classes spread across the world's server nodes.  The
registry resolves a service name to a :class:`ServiceEntry` through the
transport layer's :class:`~repro.net.transport.RouteTable` (O(1) exact
match, registration-order prefix aliases), and each entry picks a replica
per call through a pluggable policy:

* **round-robin** — a global cyclic counter, so consecutive calls (in
  deterministic event order) rotate through the replicas;
* **sticky** — the first call of each client pins it to a replica
  (spread round-robin); every later call of that client lands on the same
  replica, surviving mid-run publications and edits;
* **least-loaded** — the replica with the fewest in-flight calls at
  selection time, ties broken by replica index.

All three policies are **failover-aware**: a replica whose server node is
crashed (``node.is_alive`` false, see :mod:`repro.faults`) is skipped —
round-robin rotates past it, least-loaded excludes it, and a sticky session
pinned to it deterministically re-pins to the next alive replica in cyclic
index order (and stays there).  Replicas can also be removed outright
(:meth:`ServiceEntry.remove_replica`, e.g. replica churn); sticky pins
reference replicas by their immutable index, so removal re-pins exactly
like a crash instead of silently shifting every pin.  When every replica of
a service is dead, selection raises :class:`NoAliveReplicaError`, which
clients with a retry policy treat as retryable.

All three are deterministic: selection depends only on the (deterministic)
order in which calls are issued and the (deterministic) fault timeline.

Since the interface-evolution subsystem (:mod:`repro.evolve`) every entry
also carries a per-service **version graph** (each replica's publication
history) and can route **version-aware**: when ``version_routing`` is armed
(a rollout does this automatically) and the caller supplies its
:class:`~repro.evolve.graph.ClientBinding`, selection narrows the policy's
candidate list in two tiers —

1. replicas that are alive, *fresh* (publish at least the client's §6
   recency watermark) and *compatible* with the stubs the client bound;
2. replicas that are alive and fresh (the client will observe an explicit
   §5.7 stale fault there and rebind — never a silently wrong answer);

and when not even a fresh replica is alive, raises
:class:`NoAliveReplicaError` (retryable, exactly like the all-dead case):
serving from an alive-but-older replica would silently violate §6.

Freshness is what preserves the §6 recency guarantee *across* a rollout's
deliberately-divergent replica versions: once a client has observed v+1 it
is never routed back to a replica still publishing v.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

from repro.errors import ClusterError, NoAliveReplicaError, ServiceNotFoundError
from repro.evolve.graph import VersionGraph
from repro.net.transport import RouteTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sde.manager import ManagedServer
    from repro.cluster.topology import ServerNode
    from repro.evolve.graph import ClientBinding
    from repro.evolve.rollout import RolloutController, RolloutReport

POLICY_ROUND_ROBIN = "round-robin"
POLICY_STICKY = "sticky"
POLICY_LEAST_LOADED = "least-loaded"

#: Prefix-route scope used for service-name aliases in the route table.
_ALIAS_SCOPE = "service-alias"


@dataclass
class Replica:
    """One deployed copy of a service: a managed server on some node."""

    service: str
    index: int
    node: "ServerNode"
    managed: "ManagedServer"
    #: Calls currently awaiting a reply from this replica.
    in_flight: int = 0
    #: Calls ever routed to this replica.
    calls_routed: int = 0

    @property
    def alive(self) -> bool:
        """True while the hosting node is up (always true off-cluster)."""
        node = self.node
        return node is None or getattr(node, "is_alive", True)

    @property
    def class_name(self) -> str:
        """The dynamic-class name backing this replica."""
        return self.managed.name

    @property
    def publisher(self):
        """The replica's interface publisher."""
        return self.managed.publisher

    @property
    def call_handler(self):
        """The replica's RMI call handler."""
        return self.managed.call_handler

    def __repr__(self) -> str:
        return (
            f"Replica({self.service}#{self.index} on {self.node.name}, "
            f"in_flight={self.in_flight})"
        )


class ReplicaPolicy:
    """Base class for replica-selection policies.

    Policies receive the full replica list (dead ones included) and must
    skip replicas whose node is down, raising :class:`NoAliveReplicaError`
    when none survive — :func:`_require_alive` implements the common case.
    """

    name = "abstract"

    def select(self, replicas: list[Replica], client_key: Hashable) -> Replica:
        """Pick the replica that should serve ``client_key``'s next call."""
        raise NotImplementedError


def _require_alive(replicas: list[Replica]) -> list[Replica]:
    """The alive subset of ``replicas``; raises when it is empty."""
    alive = [replica for replica in replicas if replica.alive]
    if not alive:
        service = replicas[0].service if replicas else "?"
        raise NoAliveReplicaError(f"every replica of {service!r} is down")
    return alive


class RoundRobinPolicy(ReplicaPolicy):
    """Cycle through the replicas in index order, one call at a time.

    Dead replicas are rotated past (the cursor still advances over them, so
    a restarted replica resumes its original slot in the cycle).
    """

    name = POLICY_ROUND_ROBIN

    def __init__(self) -> None:
        self._next = 0

    def select(self, replicas: list[Replica], client_key: Hashable) -> Replica:
        count = len(replicas)
        for _ in range(count):
            replica = replicas[self._next % count]
            self._next += 1
            if replica.alive:
                return replica
        service = replicas[0].service if replicas else "?"
        raise NoAliveReplicaError(f"every replica of {service!r} is down")


class StickyPolicy(ReplicaPolicy):
    """Pin each client to one replica; first contact assigns round-robin.

    Pins reference a replica's immutable ``index``, not its list position,
    so removing a replica never silently shifts another client's pin.  When
    the pinned replica is dead or removed, the session deterministically
    re-pins to the next alive replica in cyclic index order — and stays
    there (no flap-back when the old replica restarts).
    """

    name = POLICY_STICKY

    def __init__(self) -> None:
        self._pins: dict[Hashable, int] = {}
        self._next = 0

    def select(self, replicas: list[Replica], client_key: Hashable) -> Replica:
        pin = self._pins.get(client_key)
        if pin is not None:
            for replica in replicas:
                if replica.index == pin:
                    if replica.alive:
                        return replica
                    break
            replica = self._repin(replicas, pin)
            self._pins[client_key] = replica.index
            return replica
        # First contact: spread pins round-robin over the *positions*,
        # skipping dead replicas the same way round-robin routing does.
        count = len(replicas)
        if count == 0:
            raise ClusterError("cannot pin a session: service has no replicas")
        for _ in range(count):
            replica = replicas[self._next % count]
            self._next += 1
            if replica.alive:
                self._pins[client_key] = replica.index
                return replica
        raise NoAliveReplicaError(f"every replica of {replicas[0].service!r} is down")

    @staticmethod
    def _repin(replicas: list[Replica], pin: int) -> Replica:
        """The next alive replica in cyclic index order after ``pin``."""
        alive = _require_alive(replicas)
        return min(alive, key=lambda r: (0 if r.index > pin else 1, r.index))


class LeastLoadedPolicy(ReplicaPolicy):
    """Pick the replica with the fewest in-flight calls (ties: lowest index).

    Crashed replicas are excluded outright — their in-flight counter may be
    frozen at zero, which must not make a dead node look attractive.
    """

    name = POLICY_LEAST_LOADED

    def select(self, replicas: list[Replica], client_key: Hashable) -> Replica:
        alive = _require_alive(replicas)
        return min(alive, key=lambda replica: (replica.in_flight, replica.index))


_POLICY_FACTORIES = {
    POLICY_ROUND_ROBIN: RoundRobinPolicy,
    POLICY_STICKY: StickyPolicy,
    POLICY_LEAST_LOADED: LeastLoadedPolicy,
}


def make_policy(policy: "str | ReplicaPolicy") -> ReplicaPolicy:
    """Resolve a policy name (or pass through a policy instance)."""
    if isinstance(policy, ReplicaPolicy):
        return policy
    factory = _POLICY_FACTORIES.get(policy)
    if factory is None:
        raise ClusterError(
            f"unknown replica policy {policy!r}; known: {sorted(_POLICY_FACTORIES)}"
        )
    return factory()


@dataclass
class ServiceEntry:
    """One logical service: a name, a technology, a policy, its replicas."""

    name: str
    technology: str
    policy: ReplicaPolicy = field(default_factory=RoundRobinPolicy)
    replicas: list[Replica] = field(default_factory=list)
    #: High-water mark of indexes ever assigned (survives removals).
    next_replica_index: int = field(default=0, repr=False, compare=False)
    #: Per-replica publication history (fed by the publishers' hooks when
    #: the service is deployed through a Scenario).
    version_graph: VersionGraph = field(
        default_factory=VersionGraph, repr=False, compare=False
    )
    #: When True, :meth:`select` honours the caller's ClientBinding (armed
    #: automatically by a rollout, or per-service in the Scenario API).
    version_routing: bool = field(default=False, compare=False)
    #: Retired operation -> replacement, for clients rebinding across a
    #: breaking upgrade (installed by the upgrade's ``successors``).
    operation_successors: dict[str, str] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: The rollout currently driving this service's replicas, if any.
    active_rollout: "RolloutController | None" = field(
        default=None, repr=False, compare=False
    )
    #: Every rollout ever run against this service, in start order.
    rollout_history: "list[RolloutReport]" = field(
        default_factory=list, repr=False, compare=False
    )

    def add_replica(self, node: "ServerNode", managed: "ManagedServer") -> Replica:
        """Attach one more deployed copy of this service.

        Indexes grow monotonically (never below the high-water mark), so a
        replica added after a removal can never reuse a departed replica's
        index and inherit its sticky pins.
        """
        index = max(
            self.next_replica_index,
            1 + max((replica.index for replica in self.replicas), default=-1),
        )
        self.next_replica_index = index + 1
        replica = Replica(service=self.name, index=index, node=node, managed=managed)
        self.replicas.append(replica)
        return replica

    def remove_replica(self, replica: "Replica | int") -> Replica:
        """Detach one deployed copy (by object or immutable index).

        Sticky sessions pinned to the removed replica are *not* touched
        here: the pin re-resolves on the session's next call and re-pins
        deterministically to the next alive replica in cyclic index order
        (see :class:`StickyPolicy`).
        """
        if isinstance(replica, int):
            matches = [r for r in self.replicas if r.index == replica]
            if not matches:
                raise ClusterError(
                    f"service {self.name!r} has no replica with index {replica}"
                )
            replica = matches[0]
        try:
            self.replicas.remove(replica)
        except ValueError:
            raise ClusterError(
                f"replica {replica!r} is not deployed for service {self.name!r}"
            ) from None
        # The departed index is burnt whatever way the replica list was
        # built, so a later add_replica can never resurrect it.
        self.next_replica_index = max(self.next_replica_index, replica.index + 1)
        return replica

    def select(self, client_key: Hashable, binding: "ClientBinding | None" = None) -> Replica:
        """Pick the replica for ``client_key``'s next call.

        With version routing armed and a ``binding`` supplied, the policy
        chooses among the compatible-and-fresh replicas first, then the
        merely fresh ones (stale-fault + rebind territory) — see the module
        docstring for the invariants each tier preserves.  When *no* alive
        replica is fresh, serving the call at all would hand the client an
        interface older than one it already observed, so selection raises
        :class:`NoAliveReplicaError` (retryable, like the all-dead case)
        rather than silently violating §6.

        Narrowing interacts with sticky sessions deliberately: a pinned
        replica excluded by a wave's incompatibility re-pins exactly like a
        dead one — deterministically, with no flap-back — so a session that
        crosses replicas during an upgrade stays migrated.
        """
        if not self.replicas:
            raise ClusterError(f"service {self.name!r} has no replicas")
        candidates = self.replicas
        if self.version_routing and binding is not None:
            fresh = [
                replica
                for replica in self.replicas
                if replica.alive and binding.fresh(replica)
            ]
            compatible = [
                replica for replica in fresh if binding.compatible_with(replica)
            ]
            if compatible:
                candidates = compatible
            elif fresh:
                candidates = fresh
            else:
                raise NoAliveReplicaError(
                    f"every replica of {self.name!r} is down or publishes an "
                    f"interface older than the client already observed "
                    f"(watermark v{binding.seen_version})"
                )
        return self.policy.select(candidates, client_key)

    def __repr__(self) -> str:
        return (
            f"ServiceEntry({self.name!r}, {self.technology}, "
            f"policy={self.policy.name}, replicas={len(self.replicas)})"
        )


class ServiceRegistry:
    """Name → service resolution on top of the transport route table."""

    def __init__(self) -> None:
        self._routes: RouteTable[ServiceEntry] = RouteTable()
        self._services: list[ServiceEntry] = []

    def register(self, entry: ServiceEntry) -> ServiceEntry:
        """Register a service under its exact name."""
        if any(existing.name == entry.name for existing in self._services):
            raise ClusterError(f"service {entry.name!r} is already registered")
        if not entry.version_graph.service:
            entry.version_graph.service = entry.name
        self._routes.add_exact(entry.name, entry)
        self._services.append(entry)
        return entry

    def add_alias(self, prefix: str, service_name: str) -> None:
        """Route every name starting with ``prefix`` to ``service_name``."""
        self._routes.add_prefix(_ALIAS_SCOPE, prefix, self.lookup(service_name))

    def lookup(self, name: str) -> ServiceEntry:
        """Resolve a service name (exact, then registered prefix aliases)."""
        entry = self._routes.lookup(name, prefix_scope=_ALIAS_SCOPE, path=name)
        if entry is None:
            raise ServiceNotFoundError(
                f"no service {name!r}; registered: {[s.name for s in self._services]}"
            )
        return entry

    def select(
        self,
        name: str,
        client_key: Hashable,
        binding: "ClientBinding | None" = None,
    ) -> Replica:
        """Pick (and account) the replica for ``client_key``'s next call."""
        replica = self.lookup(name).select(client_key, binding)
        replica.calls_routed += 1
        return replica

    def remove_replica(self, name: str, replica: "Replica | int") -> Replica:
        """Detach one replica of the named service (replica churn)."""
        return self.lookup(name).remove_replica(replica)

    @staticmethod
    def begin_call(replica: Replica) -> None:
        """Note a call in flight to ``replica`` (least-loaded accounting)."""
        replica.in_flight += 1

    @staticmethod
    def end_call(replica: Replica) -> None:
        """Note a call to ``replica`` completed."""
        replica.in_flight -= 1

    @property
    def services(self) -> tuple[ServiceEntry, ...]:
        """Every registered service, in registration order."""
        return tuple(self._services)

    def __repr__(self) -> str:
        return f"ServiceRegistry({[s.name for s in self._services]})"
