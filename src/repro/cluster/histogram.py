"""Fixed-bin deterministic latency histogram.

Million-client cohort runs cannot retain one float per modeled call the way
the discrete report path does — a 1M-client scenario would hold millions of
RTT samples just to answer three percentile questions.
:class:`LatencyHistogram` keeps sparse fixed-width bins instead: adding a
sample is one dict bump, ``add_many`` folds a whole flow batch in at once,
and percentiles walk the sorted bins — exact to within half a bin width,
byte-deterministic (no sampling, no randomness), and mergeable across
cohorts.

The discrete report path keeps its exact per-sample percentiles below
:data:`repro.cluster.report.EXACT_PERCENTILE_SAMPLE_LIMIT`; the histogram
takes over only above it, so every pre-existing scenario's numbers stay
byte-identical.
"""

from __future__ import annotations

from repro.errors import ClusterError

#: Default bin width in seconds (0.1 ms): RTTs in these worlds sit in the
#: 1–100 ms range, so percentile error is bounded well under 5%.
DEFAULT_BIN_WIDTH = 1e-4


class LatencyHistogram:
    """Sparse fixed-bin histogram over non-negative latency samples."""

    __slots__ = ("bin_width", "count", "total", "min_value", "max_value", "_bins")

    def __init__(self, bin_width: float = DEFAULT_BIN_WIDTH) -> None:
        if bin_width <= 0:
            raise ClusterError(f"bin width must be positive, got {bin_width}")
        self.bin_width = bin_width
        self.count = 0
        self.total = 0.0
        self.min_value = 0.0
        self.max_value = 0.0
        self._bins: dict[int, int] = {}

    def add(self, value: float) -> None:
        """Record one sample."""
        self.add_many(value, 1)

    def add_many(self, value: float, count: int) -> None:
        """Record ``count`` samples of the same ``value`` in O(1).

        Cohort flows settle a whole tick's calls at one modeled RTT; folding
        them in as a batch keeps accounting O(ticks), not O(calls).
        """
        if count <= 0:
            return
        if value < 0:
            raise ClusterError(f"latency samples must be non-negative, got {value}")
        if self.count == 0 or value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        self.count += count
        self.total += value * count
        bin_index = int(value / self.bin_width)
        bins = self._bins
        bins[bin_index] = bins.get(bin_index, 0) + count

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram (same bin width)."""
        if other.bin_width != self.bin_width:
            raise ClusterError(
                f"cannot merge histograms with bin widths "
                f"{self.bin_width} and {other.bin_width}"
            )
        if other.count == 0:
            return
        if self.count == 0 or other.min_value < self.min_value:
            self.min_value = other.min_value
        if other.max_value > self.max_value:
            self.max_value = other.max_value
        self.count += other.count
        self.total += other.total
        bins = self._bins
        for bin_index, count in other._bins.items():
            bins[bin_index] = bins.get(bin_index, 0) + count

    @property
    def mean(self) -> float:
        """Arithmetic mean of the recorded samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, level: float) -> float:
        """The ``level``-th percentile, exact to within half a bin width.

        Uses the same nearest-rank convention as the exact path's
        ``rank = (count - 1) * level / 100`` and answers with the owning
        bin's midpoint, clamped to the observed ``[min, max]`` range so the
        tails never report a value outside what was actually seen.
        """
        if not 0 <= level <= 100:
            raise ClusterError(f"percentile level must be in [0, 100], got {level}")
        if self.count == 0:
            return 0.0
        rank = (self.count - 1) * level / 100.0
        cumulative = 0
        midpoint = self.max_value
        for bin_index in sorted(self._bins):
            cumulative += self._bins[bin_index]
            if cumulative > rank:
                midpoint = (bin_index + 0.5) * self.bin_width
                break
        return min(max(midpoint, self.min_value), self.max_value)

    def percentiles(self) -> dict[str, float]:
        """The standard p50/p95/p99 triple."""
        return {
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }

    def fingerprint(self) -> tuple:
        """A hashable snapshot of the full state, for determinism asserts."""
        return (
            self.bin_width,
            self.count,
            self.total,
            self.min_value,
            self.max_value,
            tuple(sorted(self._bins.items())),
        )

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self.count}, bins={len(self._bins)}, "
            f"mean={self.mean:.6f}s)"
        )
