"""Unified result objects for cluster scenario runs.

One :class:`ClusterReport` describes everything a scenario run observed,
across every protocol in play:

* per-client call outcomes (:class:`ClientReport`) — RTT sequences, fault
  classification, and the replica each call was routed to;
* per-service / per-replica server-side accounting
  (:class:`ServiceReport` / :class:`ReplicaReport`) — §5.7 stall-queue
  numbers, transport connection and reply counters, and publication
  metrics (versions published during the run, forced and stale-call
  publications);
* per-server-machine CPU accounting (:class:`NodeReport`) when the node
  runs with a bounded core count.

All counters are *per run*: the fleet driver snapshots the underlying
lifetime statistics before the measured window and reports deltas, so
repeated runs against one world do not bleed into each other.  The legacy
:class:`repro.workload.WorkloadReport` is a single-service projection of
this report.

Cohort scenarios (``clients(1_000_000, cohort=...)``) additionally carry
one :class:`CohortReport` per flow: aggregate counters plus a streaming
:class:`~repro.cluster.histogram.LatencyHistogram` instead of per-call
floats, so a million modeled clients cost kilobytes of report, not
gigabytes.  Discrete RTT percentiles stay exact (per-sample, linear
interpolation) below :data:`EXACT_PERCENTILE_SAMPLE_LIMIT` samples —
keeping every pre-existing scenario byte-identical — and switch to the
histogram above it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.cluster.histogram import LatencyHistogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evolve.rollout import RolloutReport

#: The percentile levels every per-service / fleet-wide summary reports.
PERCENTILE_LEVELS = (50.0, 95.0, 99.0)

#: Sample-count ceiling for the exact per-sample percentile path; larger
#: samples answer from a fixed-bin histogram (still deterministic, exact to
#: within half a bin width).  Every pre-cohort scenario sits far below this.
EXACT_PERCENTILE_SAMPLE_LIMIT = 65536


def percentile(values: Sequence[float], level: float) -> float:
    """The ``level``-th percentile of ``values`` (linear interpolation).

    Deterministic and dependency-free.  An empty sample returns 0.0 —
    matching the mean/max conventions of the report objects — so a
    scenario that completed zero calls (a deadline cut the run before the
    first reply, every call abandoned, ...) reports cleanly instead of
    raising; ``tests/cluster/test_report.py`` pins this down.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (level / 100.0)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def rtt_percentiles(values: Sequence[float]) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` for one RTT sample.

    Like :func:`percentile`, safe on an empty sample (all levels 0.0).
    """
    return {
        f"p{level:g}": percentile(values, level) for level in PERCENTILE_LEVELS
    }


@dataclass
class ClientReport:
    """What one fleet client observed.

    The first six fields are the legacy ``repro.workload.ClientResult``
    layout (kept positionally compatible); the cluster layer adds the
    client's protocol, target service and per-call replica routing.
    """

    name: str
    rtts: list[float] = field(default_factory=list)
    successes: int = 0
    stale_faults: int = 0
    not_initialized_faults: int = 0
    other_faults: int = 0
    protocol: str = ""
    service: str = ""
    #: Replica index (within the service) each call was routed to, in call order.
    replica_sequence: list[int] = field(default_factory=list)
    #: Attempts that failed at the transport level (connection aborted by a
    #: crash, no alive replica, per-attempt timeout) — §faults availability.
    failed_attempts: int = 0
    #: Calls reissued after a failed attempt (failover retries).
    retried_calls: int = 0
    #: Calls given up after the retry budget was exhausted (no RTT recorded).
    abandoned_calls: int = 0
    #: §6 recency violations: successful replies whose serving replica's
    #: published interface version (sampled at reply time — a simulation
    #: probe of server state, not a wire field) is *older* than one this
    #: client already observed for the service.  The counter measures
    #: cross-replica published-version monotonicity per client: with
    #: publication coordinated across replicas (the ``edit``/``publish``/
    #: ``churn`` timeline actions publish every replica at the same virtual
    #: instant) the stall protocol keeps it at 0 across crashes, restarts
    #: and failover; *uncoordinated* per-replica publication is a genuine
    #: recency hazard and is deliberately flagged (see the
    #: engineered-violation test in ``tests/faults``).  Rollouts publish
    #: per replica *by design*; there the version-aware routing layer
    #: enforces per-client monotonicity instead (ARCHITECTURE.md
    #: "Interface evolution").
    recency_violations: int = 0
    #: Stub refreshes after a §5.7 stale fault under version-aware routing
    #: (the client re-fetched a replica's interface document and re-bound —
    #: the observable signature of a breaking upgrade reaching this client).
    rebinds: int = 0

    @property
    def calls(self) -> int:
        """Calls this client completed (successes plus faults)."""
        return len(self.rtts)

    def fingerprint(self) -> tuple:
        """Hashable snapshot of everything this client observed.

        Per-call RTTs and the routing sequence are included verbatim, so
        two fingerprints compare equal only when the runs were
        byte-identical for this client.
        """
        return (
            self.name,
            self.protocol,
            self.service,
            tuple(self.rtts),
            self.successes,
            self.stale_faults,
            self.not_initialized_faults,
            self.other_faults,
            tuple(self.replica_sequence),
            self.failed_attempts,
            self.retried_calls,
            self.abandoned_calls,
            self.recency_violations,
            self.rebinds,
        )

    @property
    def mean_rtt(self) -> float:
        """Mean round-trip time over this client's calls."""
        return sum(self.rtts) / len(self.rtts) if self.rtts else 0.0

    @property
    def max_rtt(self) -> float:
        """Worst round-trip time this client saw."""
        return max(self.rtts) if self.rtts else 0.0


@dataclass
class CohortReport:
    """Aggregate accounting for one cohort flow (the modeled client mass).

    Mirrors :class:`ClientReport`'s outcome taxonomy at flow granularity:
    the counters are *client-call* counts (a flow call models one client's
    call), RTTs live in a streaming histogram plus exact sum/max, and
    routing is recorded per replica index.  Everything here is
    byte-deterministic — two runs of the same scenario produce identical
    :meth:`fingerprint` values.
    """

    name: str
    protocol: str
    service: str
    #: Clients modeled analytically by this flow (excludes representatives).
    modeled_clients: int
    #: Calls each modeled client issues over the run.
    calls_per_client: int = 0
    #: Modeled calls that completed successfully.
    successes: int = 0
    #: Modeled §5.7 stale faults (breaking upgrade reached the flow).
    stale_faults: int = 0
    failed_attempts: int = 0
    retried_calls: int = 0
    abandoned_calls: int = 0
    #: §6 recency violations at flow granularity (see :class:`ClientReport`).
    recency_violations: int = 0
    rebinds: int = 0
    #: Flow ticks executed (arrival batches injected).
    ticks: int = 0
    #: Modeled calls routed per replica index.
    replica_calls: dict[int, int] = field(default_factory=dict)
    #: Streaming RTT accounting for the modeled calls.
    rtt: LatencyHistogram = field(default_factory=LatencyHistogram)
    rtt_sum: float = 0.0
    rtt_max: float = 0.0
    #: Per-call baseline measured by the calibration probe (uncontended
    #: RTT and server CPU cost of one real call through the full stack).
    calibrated_rtt_s: float = 0.0
    calibrated_cpu_cost_s: float = 0.0

    @property
    def calls(self) -> int:
        """Modeled calls that completed (successes plus stale faults)."""
        return self.successes + self.stale_faults

    @property
    def mean_rtt(self) -> float:
        """Mean modeled round-trip time."""
        return self.rtt_sum / self.rtt.count if self.rtt.count else 0.0

    def rtt_percentiles(self) -> dict[str, float]:
        """p50/p95/p99 of the modeled calls (histogram resolution)."""
        return self.rtt.percentiles()

    def fingerprint(self) -> tuple:
        """Hashable snapshot of every counter, for determinism asserts."""
        return (
            self.name,
            self.protocol,
            self.service,
            self.modeled_clients,
            self.calls_per_client,
            self.successes,
            self.stale_faults,
            self.failed_attempts,
            self.retried_calls,
            self.abandoned_calls,
            self.recency_violations,
            self.rebinds,
            self.ticks,
            tuple(sorted(self.replica_calls.items())),
            self.rtt.fingerprint(),
            self.rtt_sum,
            self.rtt_max,
        )


@dataclass
class ReplicaReport:
    """Server-side accounting for one replica of a service, for one run."""

    service: str
    index: int
    #: Name of the server host this replica runs on.
    node: str
    #: The managed dynamic-class name backing this replica.
    class_name: str
    #: Calls the routing policy sent to this replica during the run.
    calls_routed: int = 0
    stalled_calls: int = 0
    queued_while_stalled: int = 0
    max_stall_queue_depth: int = 0
    #: Transport connections this run's fleet opened to the replica.
    connections: int = 0
    replies_sent: int = 0
    #: Interface publications that happened during the run (any cause).
    publications: int = 0
    forced_publications: int = 0
    stale_call_publications: int = 0
    #: Published interface version when the run finished.
    interface_version: int = 0
    #: Seconds of the measured window this replica's node was crashed.
    downtime_s: float = 0.0
    #: Completed calls keyed by the interface version this replica was
    #: publishing when each reply was classified — during a rollout the
    #: mixed-version traffic shows up here, per replica.
    calls_by_version: dict[int, int] = field(default_factory=dict)


@dataclass
class ServiceReport:
    """Aggregate server-side view of one service across its replicas."""

    name: str
    technology: str
    policy: str
    replicas: list[ReplicaReport] = field(default_factory=list)

    @property
    def replica_count(self) -> int:
        """Number of replicas serving this service."""
        return len(self.replicas)

    @property
    def calls_routed(self) -> int:
        """Calls routed to this service across all replicas."""
        return sum(replica.calls_routed for replica in self.replicas)

    @property
    def stalled_calls(self) -> int:
        """§5.7 stalled calls across all replicas."""
        return sum(replica.stalled_calls for replica in self.replicas)

    @property
    def queued_while_stalled(self) -> int:
        """Calls that queued behind a stall across all replicas."""
        return sum(replica.queued_while_stalled for replica in self.replicas)

    @property
    def max_stall_queue_depth(self) -> int:
        """Deepest stall queue any replica saw during the run."""
        return max(
            (replica.max_stall_queue_depth for replica in self.replicas), default=0
        )

    @property
    def connections(self) -> int:
        """Transport connections opened to this service during the run."""
        return sum(replica.connections for replica in self.replicas)

    @property
    def replies_sent(self) -> int:
        """Replies this service's endpoints sent during the run."""
        return sum(replica.replies_sent for replica in self.replicas)

    @property
    def publications(self) -> int:
        """Interface publications across all replicas during the run."""
        return sum(replica.publications for replica in self.replicas)

    @property
    def interface_version(self) -> int:
        """Highest published interface version across the replicas."""
        return max((replica.interface_version for replica in self.replicas), default=0)

    @property
    def calls_by_version(self) -> dict[int, int]:
        """Completed calls per published interface version, service-wide."""
        merged: dict[int, int] = {}
        for replica in self.replicas:
            for version, calls in replica.calls_by_version.items():
                merged[version] = merged.get(version, 0) + calls
        return dict(sorted(merged.items()))


@dataclass
class NodeReport:
    """Bounded-CPU accounting for one server machine, for one run."""

    name: str
    #: Configured core count (``None`` = unbounded, the seed model).
    cores: int | None = None
    busy_seconds: float = 0.0
    waited_seconds: float = 0.0
    max_core_wait: float = 0.0
    #: Crash→restart episodes that overlapped the measured window.
    outages: int = 0
    #: Seconds of the measured window this machine was crashed.
    downtime_s: float = 0.0
    #: Restore → first-successful-reply latency of the latest completed
    #: outage (``None`` when the node never recovered inside the window).
    recovery_latency_s: float | None = None


@dataclass
class ClusterReport:
    """Everything one scenario run observed, across services and protocols."""

    started_at: float
    finished_at: float
    clients: list[ClientReport] = field(default_factory=list)
    services: list[ServiceReport] = field(default_factory=list)
    nodes: list[NodeReport] = field(default_factory=list)
    #: Rollouts (:class:`~repro.evolve.rollout.RolloutReport`) that started
    #: inside the measured window, with wave durations, per-window call /
    #: stale-fault / rebind counters and the diff engine's classification.
    rollouts: "list[RolloutReport]" = field(default_factory=list)
    #: Scheduler events dispatched inside the measured window — a fully
    #: deterministic proxy for how much simulated work the run performed.
    events_dispatched: int = 0
    #: One :class:`CohortReport` per cohort flow (empty for discrete-only
    #: scenarios).  Discrete aggregates (``total_calls``, ``all_rtts``, ...)
    #: deliberately exclude these; the ``total_modeled_*`` /
    #: ``simulated_clients`` aggregates fold them in.
    cohorts: list[CohortReport] = field(default_factory=list)
    #: Sampled time-series gauges (:class:`repro.obs.MetricsReport`) when the
    #: run had observability metrics on, else ``None``.  Deliberately *not*
    #: part of :meth:`fingerprint`, so arming observability can never change
    #: a scenario's report fingerprint; the series carry their own
    #: :meth:`~repro.obs.MetricsReport.fingerprint`.
    metrics: "Any | None" = field(default=None, compare=False)
    #: Declarative SLO verdicts (:class:`repro.obs.slo.SLOResult`) when the
    #: run's :class:`~repro.obs.ObsConfig` declared objectives, else empty.
    #: Derived entirely from ``metrics``, so — like it — excluded from
    #: :meth:`fingerprint`.
    slo_results: "list[Any]" = field(default_factory=list, compare=False)

    # -- lookups ------------------------------------------------------------

    def metrics_fingerprint(self) -> "str | None":
        """Digest of the sampled metrics series, or None without metrics.

        ``metrics`` is deliberately outside :meth:`fingerprint`; this is
        the direct handle for asserting the series themselves are
        byte-deterministic run-to-run.
        """
        return self.metrics.fingerprint() if self.metrics is not None else None

    def slo(self, name: str) -> Any:
        """The :class:`~repro.obs.slo.SLOResult` for the named objective."""
        for result in self.slo_results:
            if result.name == name:
                return result
        raise KeyError(f"no SLO {name!r} in this report")

    def service(self, name: str) -> ServiceReport:
        """The report for the named service."""
        for entry in self.services:
            if entry.name == name:
                return entry
        raise KeyError(f"no service {name!r} in this report")

    def rollouts_for(self, service: str) -> "list[RolloutReport]":
        """The window's rollouts that targeted ``service``, in start order."""
        return [rollout for rollout in self.rollouts if rollout.service == service]

    def clients_for(self, service: str) -> list[ClientReport]:
        """The clients that targeted ``service``, in start order."""
        return [client for client in self.clients if client.service == service]

    def rtts_for(self, service: str) -> list[float]:
        """Every RTT observed against ``service``, grouped by client."""
        return [rtt for client in self.clients_for(service) for rtt in client.rtts]

    def rtt_percentiles_for(self, service: str) -> dict[str, float]:
        """p50/p95/p99 RTT of the named service's calls during the run."""
        return rtt_percentiles(self.rtts_for(service))

    # -- fleet-wide aggregates ---------------------------------------------

    @property
    def duration(self) -> float:
        """Virtual seconds from first call issued to last reply received."""
        return self.finished_at - self.started_at

    @property
    def total_calls(self) -> int:
        """Calls completed across the whole fleet."""
        return sum(client.calls for client in self.clients)

    @property
    def total_successes(self) -> int:
        """Successful calls across the whole fleet."""
        return sum(client.successes for client in self.clients)

    @property
    def total_stale_faults(self) -> int:
        """Stale-method ("Non existent Method") faults across the fleet."""
        return sum(client.stale_faults for client in self.clients)

    @property
    def total_not_initialized_faults(self) -> int:
        """"Server Not Initialized" faults across the fleet."""
        return sum(client.not_initialized_faults for client in self.clients)

    @property
    def total_other_faults(self) -> int:
        """Unclassified faults across the fleet."""
        return sum(client.other_faults for client in self.clients)

    @property
    def all_rtts(self) -> list[float]:
        """Every observed RTT, grouped by client in start order."""
        return [rtt for client in self.clients for rtt in client.rtts]

    @property
    def mean_rtt(self) -> float:
        """Fleet-wide mean round-trip time."""
        rtts = self.all_rtts
        return sum(rtts) / len(rtts) if rtts else 0.0

    @property
    def max_rtt(self) -> float:
        """Fleet-wide worst round-trip time."""
        rtts = self.all_rtts
        return max(rtts) if rtts else 0.0

    @property
    def rtt_percentiles(self) -> dict[str, float]:
        """Fleet-wide p50/p95/p99 round-trip times (discrete clients).

        Exact (per-sample, linear interpolation) up to
        :data:`EXACT_PERCENTILE_SAMPLE_LIMIT` samples — which covers every
        discrete-only scenario byte-identically — then histogram-backed
        (deterministic, half-bin-width resolution) beyond it.
        """
        rtts = self.all_rtts
        if len(rtts) <= EXACT_PERCENTILE_SAMPLE_LIMIT:
            return rtt_percentiles(rtts)
        histogram = LatencyHistogram()
        for rtt in rtts:
            histogram.add(rtt)
        return histogram.percentiles()

    @property
    def throughput(self) -> float:
        """Completed calls per virtual second."""
        return self.total_calls / self.duration if self.duration > 0 else 0.0

    # -- availability aggregates (fault drills) ------------------------------

    @property
    def total_failed_attempts(self) -> int:
        """Transport-level attempt failures (aborts, timeouts) fleet-wide.

        Includes cohort flows: a flow tick that found no routable replica
        counts one failed attempt per modeled call, like a discrete
        client's timed-out attempt.
        """
        return sum(client.failed_attempts for client in self.clients) + sum(
            cohort.failed_attempts for cohort in self.cohorts
        )

    @property
    def total_retried_calls(self) -> int:
        """Failover retries issued across the whole fleet (cohorts included)."""
        return sum(client.retried_calls for client in self.clients) + sum(
            cohort.retried_calls for cohort in self.cohorts
        )

    @property
    def total_abandoned_calls(self) -> int:
        """Calls abandoned after exhausting their retry budget, fleet-wide
        (cohorts included)."""
        return sum(client.abandoned_calls for client in self.clients) + sum(
            cohort.abandoned_calls for cohort in self.cohorts
        )

    @property
    def total_recency_violations(self) -> int:
        """§6 recency violations fleet-wide (the protocol keeps this at 0).

        Covers discrete clients *and* cohort flows: the million-client
        acceptance drill asserts this exact counter stays 0.
        """
        return sum(client.recency_violations for client in self.clients) + sum(
            cohort.recency_violations for cohort in self.cohorts
        )

    @property
    def total_rebinds(self) -> int:
        """Stub rebinds after stale faults fleet-wide (cohorts included)."""
        return sum(client.rebinds for client in self.clients) + sum(
            cohort.rebinds for cohort in self.cohorts
        )

    @property
    def total_downtime_s(self) -> float:
        """Crashed machine-seconds within the window, over all nodes."""
        return sum(node.downtime_s for node in self.nodes)

    # -- cohort aggregates (flow-modeled client mass) ------------------------

    @property
    def modeled_clients(self) -> int:
        """Clients modeled analytically by cohort flows (0 when discrete-only)."""
        return sum(cohort.modeled_clients for cohort in self.cohorts)

    @property
    def simulated_clients(self) -> int:
        """Total clients this run stands for: discrete plus flow-modeled."""
        return len(self.clients) + self.modeled_clients

    @property
    def total_modeled_calls(self) -> int:
        """Modeled calls completed across every cohort flow."""
        return sum(cohort.calls for cohort in self.cohorts)

    @property
    def total_modeled_successes(self) -> int:
        """Modeled calls that succeeded across every cohort flow."""
        return sum(cohort.successes for cohort in self.cohorts)

    @property
    def total_stale_faults_modeled(self) -> int:
        """Modeled §5.7 stale faults across every cohort flow."""
        return sum(cohort.stale_faults for cohort in self.cohorts)

    @property
    def modeled_rtt_histogram(self) -> LatencyHistogram:
        """Every cohort flow's RTT histogram merged into one."""
        merged = LatencyHistogram()
        for cohort in self.cohorts:
            merged.merge(cohort.rtt)
        return merged

    @property
    def modeled_rtt_percentiles(self) -> dict[str, float]:
        """p50/p95/p99 over the modeled calls (histogram resolution)."""
        return self.modeled_rtt_histogram.percentiles()

    @property
    def modeled_mean_rtt(self) -> float:
        """Mean modeled round-trip time across every cohort flow."""
        total = sum(cohort.rtt_sum for cohort in self.cohorts)
        count = sum(cohort.rtt.count for cohort in self.cohorts)
        return total / count if count else 0.0

    def cohort_fingerprint(self) -> tuple:
        """Hashable snapshot of every cohort's counters (determinism asserts)."""
        return tuple(cohort.fingerprint() for cohort in self.cohorts)

    def fingerprint(self) -> tuple:
        """Hashable snapshot of the whole run, for byte-identity asserts.

        Covers the window bounds, every client's per-call RTT and routing
        sequence, every replica's and node's server-side counters, the
        window's rollouts, the event count, and the cohort fingerprints —
        two runs with equal fingerprints performed identical simulated
        work.  Trace replay (:mod:`repro.traffic.trace`) and the scenario
        fuzzer assert equality on exactly this value.
        """
        services = tuple(
            (
                service.name,
                service.technology,
                service.policy,
                tuple(
                    (
                        replica.index,
                        replica.node,
                        replica.class_name,
                        replica.calls_routed,
                        replica.stalled_calls,
                        replica.queued_while_stalled,
                        replica.max_stall_queue_depth,
                        replica.connections,
                        replica.replies_sent,
                        replica.publications,
                        replica.forced_publications,
                        replica.stale_call_publications,
                        replica.interface_version,
                        replica.downtime_s,
                        tuple(sorted(replica.calls_by_version.items())),
                    )
                    for replica in service.replicas
                ),
            )
            for service in self.services
        )
        nodes = tuple(
            (
                node.name,
                node.cores,
                node.busy_seconds,
                node.waited_seconds,
                node.max_core_wait,
                node.outages,
                node.downtime_s,
                node.recovery_latency_s,
            )
            for node in self.nodes
        )
        rollouts = tuple(
            (
                rollout.service,
                rollout.strategy,
                rollout.started_at,
                rollout.finished_at,
                rollout.aborted,
                rollout.rolled_back,
                rollout.deferred_resumes,
                rollout.calls_during,
                rollout.stale_faults_during,
                rollout.rebinds_during,
                tuple(
                    (wave.index, wave.replicas, wave.started_at, wave.published_at)
                    for wave in rollout.waves
                ),
            )
            for rollout in self.rollouts
        )
        return (
            self.started_at,
            self.finished_at,
            tuple(client.fingerprint() for client in self.clients),
            services,
            nodes,
            rollouts,
            self.events_dispatched,
            self.cohort_fingerprint(),
        )

    # -- server-side aggregates (single-service workload compatibility) -----

    @property
    def stalled_calls(self) -> int:
        """§5.7 stalled calls across every service."""
        return sum(service.stalled_calls for service in self.services)

    @property
    def queued_while_stalled(self) -> int:
        """Calls queued behind a stall across every service."""
        return sum(service.queued_while_stalled for service in self.services)

    @property
    def max_stall_queue_depth(self) -> int:
        """Deepest stall queue any replica of any service saw."""
        return max(
            (service.max_stall_queue_depth for service in self.services), default=0
        )

    @property
    def server_connections(self) -> int:
        """Transport connections this run's fleet opened, fleet-wide."""
        return sum(service.connections for service in self.services)

    @property
    def server_replies_sent(self) -> int:
        """Replies sent by every service endpoint during the run."""
        return sum(service.replies_sent for service in self.services)

    @property
    def publications(self) -> int:
        """Interface publications across every service during the run."""
        return sum(service.publications for service in self.services)

    def __repr__(self) -> str:
        return (
            f"ClusterReport(clients={len(self.clients)}, "
            f"services={[s.name for s in self.services]}, "
            f"calls={self.total_calls}, duration={self.duration:.4f})"
        )
