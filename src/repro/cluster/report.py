"""Unified result objects for cluster scenario runs.

One :class:`ClusterReport` describes everything a scenario run observed,
across every protocol in play:

* per-client call outcomes (:class:`ClientReport`) — RTT sequences, fault
  classification, and the replica each call was routed to;
* per-service / per-replica server-side accounting
  (:class:`ServiceReport` / :class:`ReplicaReport`) — §5.7 stall-queue
  numbers, transport connection and reply counters, and publication
  metrics (versions published during the run, forced and stale-call
  publications);
* per-server-machine CPU accounting (:class:`NodeReport`) when the node
  runs with a bounded core count.

All counters are *per run*: the fleet driver snapshots the underlying
lifetime statistics before the measured window and reports deltas, so
repeated runs against one world do not bleed into each other.  The legacy
:class:`repro.workload.WorkloadReport` is a single-service projection of
this report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evolve.rollout import RolloutReport

#: The percentile levels every per-service / fleet-wide summary reports.
PERCENTILE_LEVELS = (50.0, 95.0, 99.0)


def percentile(values: Sequence[float], level: float) -> float:
    """The ``level``-th percentile of ``values`` (linear interpolation).

    Deterministic and dependency-free.  An empty sample returns 0.0 —
    matching the mean/max conventions of the report objects — so a
    scenario that completed zero calls (a deadline cut the run before the
    first reply, every call abandoned, ...) reports cleanly instead of
    raising; ``tests/cluster/test_report.py`` pins this down.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (level / 100.0)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def rtt_percentiles(values: Sequence[float]) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` for one RTT sample.

    Like :func:`percentile`, safe on an empty sample (all levels 0.0).
    """
    return {
        f"p{level:g}": percentile(values, level) for level in PERCENTILE_LEVELS
    }


@dataclass
class ClientReport:
    """What one fleet client observed.

    The first six fields are the legacy ``repro.workload.ClientResult``
    layout (kept positionally compatible); the cluster layer adds the
    client's protocol, target service and per-call replica routing.
    """

    name: str
    rtts: list[float] = field(default_factory=list)
    successes: int = 0
    stale_faults: int = 0
    not_initialized_faults: int = 0
    other_faults: int = 0
    protocol: str = ""
    service: str = ""
    #: Replica index (within the service) each call was routed to, in call order.
    replica_sequence: list[int] = field(default_factory=list)
    #: Attempts that failed at the transport level (connection aborted by a
    #: crash, no alive replica, per-attempt timeout) — §faults availability.
    failed_attempts: int = 0
    #: Calls reissued after a failed attempt (failover retries).
    retried_calls: int = 0
    #: Calls given up after the retry budget was exhausted (no RTT recorded).
    abandoned_calls: int = 0
    #: §6 recency violations: successful replies whose serving replica's
    #: published interface version (sampled at reply time — a simulation
    #: probe of server state, not a wire field) is *older* than one this
    #: client already observed for the service.  The counter measures
    #: cross-replica published-version monotonicity per client: with
    #: publication coordinated across replicas (the ``edit``/``publish``/
    #: ``churn`` timeline actions publish every replica at the same virtual
    #: instant) the stall protocol keeps it at 0 across crashes, restarts
    #: and failover; *uncoordinated* per-replica publication is a genuine
    #: recency hazard and is deliberately flagged (see the
    #: engineered-violation test in ``tests/faults``).  Rollouts publish
    #: per replica *by design*; there the version-aware routing layer
    #: enforces per-client monotonicity instead (ARCHITECTURE.md
    #: "Interface evolution").
    recency_violations: int = 0
    #: Stub refreshes after a §5.7 stale fault under version-aware routing
    #: (the client re-fetched a replica's interface document and re-bound —
    #: the observable signature of a breaking upgrade reaching this client).
    rebinds: int = 0

    @property
    def calls(self) -> int:
        """Calls this client completed (successes plus faults)."""
        return len(self.rtts)

    @property
    def mean_rtt(self) -> float:
        """Mean round-trip time over this client's calls."""
        return sum(self.rtts) / len(self.rtts) if self.rtts else 0.0

    @property
    def max_rtt(self) -> float:
        """Worst round-trip time this client saw."""
        return max(self.rtts) if self.rtts else 0.0


@dataclass
class ReplicaReport:
    """Server-side accounting for one replica of a service, for one run."""

    service: str
    index: int
    #: Name of the server host this replica runs on.
    node: str
    #: The managed dynamic-class name backing this replica.
    class_name: str
    #: Calls the routing policy sent to this replica during the run.
    calls_routed: int = 0
    stalled_calls: int = 0
    queued_while_stalled: int = 0
    max_stall_queue_depth: int = 0
    #: Transport connections this run's fleet opened to the replica.
    connections: int = 0
    replies_sent: int = 0
    #: Interface publications that happened during the run (any cause).
    publications: int = 0
    forced_publications: int = 0
    stale_call_publications: int = 0
    #: Published interface version when the run finished.
    interface_version: int = 0
    #: Seconds of the measured window this replica's node was crashed.
    downtime_s: float = 0.0
    #: Completed calls keyed by the interface version this replica was
    #: publishing when each reply was classified — during a rollout the
    #: mixed-version traffic shows up here, per replica.
    calls_by_version: dict[int, int] = field(default_factory=dict)


@dataclass
class ServiceReport:
    """Aggregate server-side view of one service across its replicas."""

    name: str
    technology: str
    policy: str
    replicas: list[ReplicaReport] = field(default_factory=list)

    @property
    def replica_count(self) -> int:
        """Number of replicas serving this service."""
        return len(self.replicas)

    @property
    def calls_routed(self) -> int:
        """Calls routed to this service across all replicas."""
        return sum(replica.calls_routed for replica in self.replicas)

    @property
    def stalled_calls(self) -> int:
        """§5.7 stalled calls across all replicas."""
        return sum(replica.stalled_calls for replica in self.replicas)

    @property
    def queued_while_stalled(self) -> int:
        """Calls that queued behind a stall across all replicas."""
        return sum(replica.queued_while_stalled for replica in self.replicas)

    @property
    def max_stall_queue_depth(self) -> int:
        """Deepest stall queue any replica saw during the run."""
        return max(
            (replica.max_stall_queue_depth for replica in self.replicas), default=0
        )

    @property
    def connections(self) -> int:
        """Transport connections opened to this service during the run."""
        return sum(replica.connections for replica in self.replicas)

    @property
    def replies_sent(self) -> int:
        """Replies this service's endpoints sent during the run."""
        return sum(replica.replies_sent for replica in self.replicas)

    @property
    def publications(self) -> int:
        """Interface publications across all replicas during the run."""
        return sum(replica.publications for replica in self.replicas)

    @property
    def interface_version(self) -> int:
        """Highest published interface version across the replicas."""
        return max((replica.interface_version for replica in self.replicas), default=0)

    @property
    def calls_by_version(self) -> dict[int, int]:
        """Completed calls per published interface version, service-wide."""
        merged: dict[int, int] = {}
        for replica in self.replicas:
            for version, calls in replica.calls_by_version.items():
                merged[version] = merged.get(version, 0) + calls
        return dict(sorted(merged.items()))


@dataclass
class NodeReport:
    """Bounded-CPU accounting for one server machine, for one run."""

    name: str
    #: Configured core count (``None`` = unbounded, the seed model).
    cores: int | None = None
    busy_seconds: float = 0.0
    waited_seconds: float = 0.0
    max_core_wait: float = 0.0
    #: Crash→restart episodes that overlapped the measured window.
    outages: int = 0
    #: Seconds of the measured window this machine was crashed.
    downtime_s: float = 0.0
    #: Restore → first-successful-reply latency of the latest completed
    #: outage (``None`` when the node never recovered inside the window).
    recovery_latency_s: float | None = None


@dataclass
class ClusterReport:
    """Everything one scenario run observed, across services and protocols."""

    started_at: float
    finished_at: float
    clients: list[ClientReport] = field(default_factory=list)
    services: list[ServiceReport] = field(default_factory=list)
    nodes: list[NodeReport] = field(default_factory=list)
    #: Rollouts (:class:`~repro.evolve.rollout.RolloutReport`) that started
    #: inside the measured window, with wave durations, per-window call /
    #: stale-fault / rebind counters and the diff engine's classification.
    rollouts: "list[RolloutReport]" = field(default_factory=list)
    #: Scheduler events dispatched inside the measured window — a fully
    #: deterministic proxy for how much simulated work the run performed.
    events_dispatched: int = 0

    # -- lookups ------------------------------------------------------------

    def service(self, name: str) -> ServiceReport:
        """The report for the named service."""
        for entry in self.services:
            if entry.name == name:
                return entry
        raise KeyError(f"no service {name!r} in this report")

    def rollouts_for(self, service: str) -> "list[RolloutReport]":
        """The window's rollouts that targeted ``service``, in start order."""
        return [rollout for rollout in self.rollouts if rollout.service == service]

    def clients_for(self, service: str) -> list[ClientReport]:
        """The clients that targeted ``service``, in start order."""
        return [client for client in self.clients if client.service == service]

    def rtts_for(self, service: str) -> list[float]:
        """Every RTT observed against ``service``, grouped by client."""
        return [rtt for client in self.clients_for(service) for rtt in client.rtts]

    def rtt_percentiles_for(self, service: str) -> dict[str, float]:
        """p50/p95/p99 RTT of the named service's calls during the run."""
        return rtt_percentiles(self.rtts_for(service))

    # -- fleet-wide aggregates ---------------------------------------------

    @property
    def duration(self) -> float:
        """Virtual seconds from first call issued to last reply received."""
        return self.finished_at - self.started_at

    @property
    def total_calls(self) -> int:
        """Calls completed across the whole fleet."""
        return sum(client.calls for client in self.clients)

    @property
    def total_successes(self) -> int:
        """Successful calls across the whole fleet."""
        return sum(client.successes for client in self.clients)

    @property
    def total_stale_faults(self) -> int:
        """Stale-method ("Non existent Method") faults across the fleet."""
        return sum(client.stale_faults for client in self.clients)

    @property
    def total_not_initialized_faults(self) -> int:
        """"Server Not Initialized" faults across the fleet."""
        return sum(client.not_initialized_faults for client in self.clients)

    @property
    def total_other_faults(self) -> int:
        """Unclassified faults across the fleet."""
        return sum(client.other_faults for client in self.clients)

    @property
    def all_rtts(self) -> list[float]:
        """Every observed RTT, grouped by client in start order."""
        return [rtt for client in self.clients for rtt in client.rtts]

    @property
    def mean_rtt(self) -> float:
        """Fleet-wide mean round-trip time."""
        rtts = self.all_rtts
        return sum(rtts) / len(rtts) if rtts else 0.0

    @property
    def max_rtt(self) -> float:
        """Fleet-wide worst round-trip time."""
        rtts = self.all_rtts
        return max(rtts) if rtts else 0.0

    @property
    def rtt_percentiles(self) -> dict[str, float]:
        """Fleet-wide p50/p95/p99 round-trip times."""
        return rtt_percentiles(self.all_rtts)

    @property
    def throughput(self) -> float:
        """Completed calls per virtual second."""
        return self.total_calls / self.duration if self.duration > 0 else 0.0

    # -- availability aggregates (fault drills) ------------------------------

    @property
    def total_failed_attempts(self) -> int:
        """Transport-level attempt failures (aborts, timeouts) fleet-wide."""
        return sum(client.failed_attempts for client in self.clients)

    @property
    def total_retried_calls(self) -> int:
        """Failover retries issued across the whole fleet."""
        return sum(client.retried_calls for client in self.clients)

    @property
    def total_abandoned_calls(self) -> int:
        """Calls abandoned after exhausting their retry budget, fleet-wide."""
        return sum(client.abandoned_calls for client in self.clients)

    @property
    def total_recency_violations(self) -> int:
        """§6 recency violations fleet-wide (the protocol keeps this at 0)."""
        return sum(client.recency_violations for client in self.clients)

    @property
    def total_rebinds(self) -> int:
        """Stub rebinds after stale faults fleet-wide (breaking upgrades)."""
        return sum(client.rebinds for client in self.clients)

    @property
    def total_downtime_s(self) -> float:
        """Crashed machine-seconds within the window, over all nodes."""
        return sum(node.downtime_s for node in self.nodes)

    # -- server-side aggregates (single-service workload compatibility) -----

    @property
    def stalled_calls(self) -> int:
        """§5.7 stalled calls across every service."""
        return sum(service.stalled_calls for service in self.services)

    @property
    def queued_while_stalled(self) -> int:
        """Calls queued behind a stall across every service."""
        return sum(service.queued_while_stalled for service in self.services)

    @property
    def max_stall_queue_depth(self) -> int:
        """Deepest stall queue any replica of any service saw."""
        return max(
            (service.max_stall_queue_depth for service in self.services), default=0
        )

    @property
    def server_connections(self) -> int:
        """Transport connections this run's fleet opened, fleet-wide."""
        return sum(service.connections for service in self.services)

    @property
    def server_replies_sent(self) -> int:
        """Replies sent by every service endpoint during the run."""
        return sum(service.replies_sent for service in self.services)

    @property
    def publications(self) -> int:
        """Interface publications across every service during the run."""
        return sum(service.publications for service in self.services)

    def __repr__(self) -> str:
        return (
            f"ClusterReport(clients={len(self.clients)}, "
            f"services={[s.name for s in self.services]}, "
            f"calls={self.total_calls}, duration={self.duration:.4f})"
        )
