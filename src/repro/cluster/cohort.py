"""Cohort/flow-level client aggregation: the million-client scale model.

The discrete fleet simulates every client's full protocol stack — WSDL/IDL
parsing, per-message transport, retries, §6 recency tracking.  That fidelity
costs hundreds of scheduler events per client, which caps practical fleets
around the paper's 512 clients.  This module lets one :class:`Scenario`
client group carry *a million* clients by splitting it:

* the first ``representatives`` clients stay **discrete** — full stacks,
  real messages, real timeouts — preserving every protocol-level behaviour
  the reproduction measures; and
* the remaining mass becomes a :class:`CohortFlow` — a deterministic
  arrival process that injects the same per-client call schedule as
  aggregate batches through the *same* :class:`~repro.cluster.registry`
  routing policies (round-robin / sticky / least-loaded via
  ``select_many``), the *same* version tiers and §6 freshness rules (one
  flow-level :class:`~repro.evolve.graph.ClientBinding`), and the *same*
  bounded :class:`~repro.sim.servercore.ServerCore` CPU model
  (``charge_batch``), at O(ticks × replicas) events instead of O(calls).

Where the discrete/analytic boundary sits
-----------------------------------------

A flow is calibrated, not synthesised: at prepare time it builds one real
protocol stack on its cohort host, fetches and parses the service's
published documents, and issues one real blocking probe call.  The probe's
measured uncontended RTT becomes the flow's per-call baseline and the
probe's server-CPU delta becomes the per-call processing cost charged for
every modeled call, so the aggregate load and the modeled latencies are
anchored to the same wire-level behaviour the discrete path exhibits.

What flows model analytically (and therefore cheaply): queueing delay via
``charge_batch``'s closed-form even spread, partition awareness via the
network's partition table instead of per-call timeouts (a partitioned flow
skips unreachable replicas exactly where a discrete client would time out
and fail over — minus the wasted timeout events), and §5.7 stale faults at
flow granularity (the first modeled call into an incompatible replica
faults, the flow rebinds its stubs from the replica's current published
description, and the rest of the batch proceeds on the fresh binding).

Determinism
-----------

Everything here is a pure function of the scenario spec and the virtual
clock: arrival offsets are precomputed, ticks fire on the scheduler,
settlement events go through per-server-node
:class:`~repro.sim.scheduler.EventStream` partitions whose merged dispatch
order is provably the single-queue order, and all accounting is integer
counters plus a fixed-bin histogram.  Two runs of the same scenario produce
byte-identical :meth:`CohortReport.fingerprint` values.

§6 recency at flow granularity: the flow keeps a watermark of the highest
interface version it has observed.  A settlement that observes a version
*below* the watermark the flow held when the batch was routed counts as a
recency violation — the flow-level analogue of a discrete client seeing an
older interface than one it already saw.  Version-aware routing keeps the
counter at zero, exactly as on the discrete path.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.cluster.histogram import DEFAULT_BIN_WIDTH, LatencyHistogram
from repro.cluster.report import CohortReport
from repro.errors import ClusterError, NoAliveReplicaError
from repro.evolve.graph import ClientBinding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.driver import FleetDriver
    from repro.cluster.registry import Replica, ServiceEntry, ServiceRegistry
    from repro.cluster.topology import ClusterWorld
    from repro.net.simnet import Host


@dataclass(frozen=True)
class CohortModel:
    """How a client group splits into representatives and modeled mass.

    Parameters
    ----------
    representatives:
        Clients simulated discretely (full protocol stacks); the group's
        first ``representatives`` positions.  The rest become flow mass.
    tick:
        Flow batching quantum in virtual seconds: arrivals due within one
        tick settle together.  Smaller ticks trade events for resolution.
    period:
        Per-client inter-call period.  ``None`` (the default) calibrates it
        as the probe's measured RTT plus the group's think time — the same
        cycle a discrete client of the group would exhibit.
    cpu_cost:
        Server CPU seconds charged per modeled call.  ``None`` calibrates
        it from the probe call's measured ``busy_seconds`` delta.
    max_attempts:
        Routing attempts per modeled call batch before the calls count as
        abandoned (a failed attempt is retried on the next tick, mirroring
        the discrete retry policies' backoff-and-reissue loop).
    bin_width:
        RTT histogram resolution in seconds.
    """

    representatives: int = 32
    tick: float = 0.005
    period: float | None = None
    cpu_cost: float | None = None
    max_attempts: int = 4
    bin_width: float = DEFAULT_BIN_WIDTH

    def __post_init__(self) -> None:
        if self.representatives < 0:
            raise ClusterError(
                f"cohort representatives must be non-negative, got {self.representatives}"
            )
        if self.tick <= 0:
            raise ClusterError(f"cohort tick must be positive, got {self.tick}")
        if self.period is not None and self.period < 0:
            raise ClusterError(f"cohort period must be non-negative, got {self.period}")
        if self.cpu_cost is not None and self.cpu_cost < 0:
            raise ClusterError(
                f"cohort cpu_cost must be non-negative, got {self.cpu_cost}"
            )
        if self.max_attempts < 1:
            raise ClusterError(
                f"cohort max_attempts must be at least 1, got {self.max_attempts}"
            )


class CohortFlow:
    """One client group's modeled mass: an arrival process over the registry.

    Created by the scenario's plan builder — one flow per (group, protocol,
    service) with ``mass = count - representatives`` modeled clients, each
    issuing ``calls`` calls spaced ``period`` apart starting at its own
    arrival offset.
    """

    def __init__(
        self,
        *,
        index: int,
        name: str,
        protocol: str,
        service: str,
        operation: str,
        arguments: tuple[Any, ...],
        calls: int,
        think_time: float,
        offsets: "array[float]",
        model: CohortModel,
        host: "Host",
        world: "ClusterWorld",
        registry: "ServiceRegistry",
    ) -> None:
        self.index = index
        self.name = name
        self.protocol = protocol
        self.service = service
        self.operation = operation
        self.arguments = arguments
        self.calls = calls
        self.think_time = think_time
        #: Sorted per-client arrival offsets (seconds after flow start).
        self.offsets = offsets
        self.model = model
        self.host = host
        self.world = world
        self.registry = registry
        self.mass = len(offsets)
        self.report = CohortReport(
            name=name,
            protocol=protocol,
            service=service,
            modeled_clients=self.mass,
            calls_per_client=calls,
            rtt=LatencyHistogram(model.bin_width),
        )
        self.binding = ClientBinding()
        self.finished = False
        self.driver: "FleetDriver | None" = None
        self.entry: "ServiceEntry | None" = None
        self.stack = None
        #: Per-call-rank pointer into ``offsets``: ``_ptrs[k]`` counts the
        #: modeled clients whose (k+1)-th call has already been injected.
        self._ptrs = [0] * calls
        #: Routed-but-failed batches carried to the next tick: (count, attempt).
        self._carry: list[tuple[int, int]] = []
        #: Settlement events scheduled but not yet dispatched — the flow
        #: only finishes once these drain, so a run never stops between a
        #: final tick and its settlements.
        self._outstanding = 0
        #: §6 watermark — highest interface version observed by any settle.
        self._seen_version = -1
        self._origin = 0.0
        self._period = 0.0
        self._base_rtt = 0.0
        self._cpu_cost = 0.0

    @property
    def backlog(self) -> int:
        """Modeled calls awaiting a retry tick plus settlements in flight.

        The observability sampler's per-flow gauge: it spikes while replicas
        are unreachable (carried batches pile up) and drains to zero as the
        flow completes.
        """
        return sum(count for count, _attempt in self._carry) + self._outstanding

    # -- preparation ---------------------------------------------------------

    def prepare(self, driver: "FleetDriver") -> None:
        """Build the flow's real protocol stack and calibrate the model.

        Runs before the driver snapshots its counters, so the document
        fetches and the probe call — real traffic through the full stack —
        stay outside the measured window, exactly like the discrete
        clients' own ``prepare`` fetches.
        """
        self.driver = driver
        self.entry = self.registry.lookup(self.service)
        factory = driver.protocol_factory(self.protocol)
        # Stack indexes must not collide with discrete clients' replica
        # bookkeeping; flows get a distinct high range.
        self.stack = factory(self.host, 1_000_000 + self.index, self.entry.replicas)
        self.stack.prepare()
        for replica in self.entry.replicas:
            description = self.stack.bound_description(replica.index)
            if description is not None:
                self.binding.bind(replica.index, description)
        self._calibrate()

    def _calibrate(self) -> None:
        """Measure the per-call baseline with one real probe call."""
        model = self.model
        need_probe = model.period is None or model.cpu_cost is None
        base_rtt = 0.0
        probe_cpu = 0.0
        if need_probe and self.mass > 0:
            assert self.entry is not None and self.driver is not None
            replica = self.entry.replicas[0]
            core = replica.node.server_core
            busy_before = core.busy_seconds if core is not None else 0.0
            scheduler = self.driver.scheduler
            probe_started = scheduler.now
            outcome: dict[str, Any] = {}

            def resolved(value: Any, error: BaseException | None, _delay: float = 0.0) -> None:
                outcome["done"] = (value, error)

            self.stack.call(replica, self.operation, self.arguments).subscribe(resolved)
            scheduler.run_until(
                lambda: "done" in outcome,
                description=f"{self.name} calibration probe",
            )
            _value, error = outcome["done"]
            if error is not None:
                raise ClusterError(
                    f"cohort flow {self.name!r} calibration probe failed: {error!r}"
                )
            base_rtt = scheduler.now - probe_started
            if core is not None:
                probe_cpu = core.busy_seconds - busy_before
        if model.period is not None:
            self._period = model.period
            self._base_rtt = base_rtt if need_probe else max(
                model.period - self.think_time, 0.0
            )
        else:
            self._base_rtt = base_rtt
            self._period = base_rtt + self.think_time
        self._cpu_cost = model.cpu_cost if model.cpu_cost is not None else probe_cpu
        self.report.calibrated_rtt_s = self._base_rtt
        self.report.calibrated_cpu_cost_s = self._cpu_cost

    # -- the arrival process -------------------------------------------------

    def start(self) -> None:
        """Begin the flow: anchor the arrival timeline and arm the first tick."""
        assert self.driver is not None
        self._origin = self.driver.scheduler.now
        first = self._next_arrival()
        if first is None:
            self._finish()
            return
        self.driver.scheduler.schedule(
            max(first - self.driver.scheduler.now, 0.0),
            self._tick,
            label=f"{self.name} tick",
        )

    def _next_arrival(self) -> float | None:
        """Absolute time of the earliest not-yet-injected modeled call."""
        earliest: float | None = None
        offsets = self.offsets
        period = self._period
        for rank, pointer in enumerate(self._ptrs):
            if pointer >= self.mass:
                continue
            due = self._origin + offsets[pointer] + rank * period
            if earliest is None or due < earliest:
                earliest = due
        return earliest

    def _tick(self) -> None:
        driver = self.driver
        assert driver is not None
        if driver.closed or self.finished:
            return
        self.report.ticks += 1
        now = driver.scheduler.now
        # §6 snapshot: settlements of THIS tick check recency against the
        # watermark as the batch was routed.  (A running watermark would
        # flag two fresh replicas publishing different versions within one
        # tick as a violation — but distinct modeled clients may
        # legitimately observe distinct fresh versions.)
        watermark = self._seen_version
        carried, self._carry = self._carry, []
        for count, attempt in carried:
            self._route(count, attempt, watermark)
        arrivals = 0
        elapsed = now - self._origin
        offsets = self.offsets
        for rank in range(self.calls):
            pointer = self._ptrs[rank]
            if pointer >= self.mass:
                continue
            advanced = bisect_right(offsets, elapsed - rank * self._period, pointer)
            if advanced > pointer:
                arrivals += advanced - pointer
                self._ptrs[rank] = advanced
        if arrivals:
            self._route(arrivals, 1, watermark)
        upcoming = self._next_arrival()
        if upcoming is None and not self._carry:
            if self._outstanding == 0:
                self._finish()
            # Else the last settlements are still in flight; they call
            # _finish when they drain.  Either way, no more ticks.
            return
        target = now + self.model.tick
        if not self._carry and upcoming is not None and upcoming > target:
            # Nothing to retry and the next arrival is beyond the quantum:
            # skip the idle gap instead of ticking through it.
            target = upcoming
        driver.scheduler.schedule(target - now, self._tick, label=f"{self.name} tick")

    def _route(self, count: int, attempt: int, watermark: int) -> None:
        """Route ``count`` modeled calls through the registry's policies."""
        assert self.driver is not None
        if self.driver.trace is not None:
            self.driver.trace.note_flow(
                time=self.driver.scheduler.now,
                flow=self.name,
                count=count,
                attempt=attempt,
            )
        obs = self.driver.obs
        if obs is not None:
            obs.instant("flow.route", flow=self.name, count=count, attempt=attempt)
        report = self.report
        network = self.world.network
        host_name = self.host.name

        def reachable(replica: "Replica") -> bool:
            return not network.is_partitioned(host_name, replica.node.name)

        try:
            picks = self.registry.select_many(
                self.service, self.name, count, binding=self.binding, reachable=reachable
            )
        except NoAliveReplicaError:
            report.failed_attempts += count
            if attempt < self.model.max_attempts:
                report.retried_calls += count
                self._carry.append((count, attempt + 1))
            else:
                report.abandoned_calls += count
            return
        scheduler = self.driver.scheduler
        self._outstanding += len(picks)
        for replica, share in picks:
            # Settlement rides the target node's event stream: per-node
            # event populations stay contiguous, and the merged dispatch
            # order is provably the single-queue order.
            scheduler.partition(replica.node.name).schedule(
                0.0,
                self._settle,
                replica,
                share,
                watermark,
                label=f"{self.name} settle",
            )

    def _settle(self, replica: "Replica", share: int, watermark: int) -> None:
        """Complete ``share`` modeled calls against ``replica``."""
        driver = self.driver
        assert driver is not None and self.entry is not None
        self._outstanding -= 1
        if driver.closed:
            return
        report = self.report
        version = replica.publisher.version
        if version < watermark:
            report.recency_violations += share
            obs = driver.obs
            if obs is not None:
                obs.note_recency_violation(
                    flow=self.name,
                    service=self.service,
                    replica=replica.index,
                    node=replica.node.name,
                    version=version,
                    watermark=watermark,
                    calls=share,
                )
        if version > self._seen_version:
            self._seen_version = version
        self.binding.observe(version)
        successes = share
        if self.entry.version_routing and not self.binding.compatible_with(replica):
            # §5.7 at flow granularity: the first modeled call faults
            # stale, the flow rebinds its stubs from the replica's current
            # published description, the rest of the batch proceeds.
            report.stale_faults += 1
            report.rebinds += 1
            successes = share - 1
            current = replica.publisher.published_description
            if current is not None:
                self.binding.bind(replica.index, current)
        report.successes += successes
        report.replica_calls[replica.index] = (
            report.replica_calls.get(replica.index, 0) + share
        )
        cost = self._cpu_cost
        core = replica.node.server_core
        wait_sum = 0.0
        max_wait = 0.0
        if core is not None and cost >= 0 and share > 0:
            total_delay, max_delay = core.charge_batch(cost, share)
            wait_sum = total_delay - share * cost
            max_wait = max_delay - cost
        mean_rtt = self._base_rtt + wait_sum / share
        report.rtt.add_many(mean_rtt, share)
        report.rtt_sum += self._base_rtt * share + wait_sum
        worst = self._base_rtt + max_wait
        if worst > report.rtt_max:
            report.rtt_max = worst
        driver._note_version_call(replica, share)
        driver._note_success(replica)
        if (
            self._outstanding == 0
            and not self._carry
            and not self.finished
            and self._next_arrival() is None
        ):
            self._finish()

    def _finish(self) -> None:
        if not self.finished:
            self.finished = True
            assert self.driver is not None
            self.driver._flow_finished(self)

    def __repr__(self) -> str:
        return (
            f"CohortFlow({self.name!r}, service={self.service!r}, "
            f"mass={self.mass}, calls={self.calls})"
        )


def build_flow_offsets(
    positions: Sequence[int], arrival: Any
) -> "array[float]":
    """The sorted arrival offsets for a group's modeled positions.

    Uses the same convention as discrete plans — a float ``arrival``
    staggers position ``i`` at ``i * arrival``, a callable maps the
    position to its offset, and an
    :class:`~repro.traffic.arrivals.ArrivalProcess` draws the group's
    offsets from its seeded stream — via the one shared resolver in
    :mod:`repro.traffic.arrivals`.  Sorting keeps the flow's bisect
    pointers valid for arbitrary shapes.
    """
    from repro.traffic.arrivals import offsets_for_positions

    return array("d", sorted(offsets_for_positions(arrival, positions)))
