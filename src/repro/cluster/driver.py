"""The generic fleet driver: N clients × any services × any protocols.

This is the measured core of a scenario run, generalising the seed's
single-service workload driver: every client is callback-driven (it uses
the transport layer's asynchronous request path rather than blocking the
scheduler), so all request streams genuinely interleave, and because the
scheduler dispatches equal-time events in insertion order the whole run is
deterministic — the same plan always produces the same per-call round-trip
times, whatever mix of services, replicas and protocols is in play.

Per-replica server statistics (stall queue, endpoint connections/replies,
publications) and per-node CPU statistics are snapshotted before the
measured window and reported as deltas, so repeated runs against one world
stay independent.

Clients are failover-aware when their plan carries a
:class:`~repro.faults.RetryPolicy`: transport-level failures and timeouts
are retried through the registry's alive-replica routing, availability is
accounted (failed/retried/abandoned, downtime, recovery latency via the
wired :class:`~repro.faults.FaultInjector`), and every successful reply
updates the client's §6 recency watermark — the report's
``recency_violations`` counter stays 0 whenever the stall protocol's
guarantee holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.cluster.protocols import (
    OUTCOME_NOT_INITIALIZED,
    OUTCOME_OTHER,
    OUTCOME_STALE,
    OUTCOME_SUCCESS,
    ProtocolClient,
    ProtocolClientFactory,
    client_protocol_factory,
)
from repro.cluster.registry import Replica, ServiceRegistry
from repro.cluster.report import (
    ClientReport,
    ClusterReport,
    NodeReport,
    ReplicaReport,
    ServiceReport,
)
from repro.errors import NoAliveReplicaError, TransportError
from repro.evolve.graph import ClientBinding
from repro.faults.policy import RetryPolicy
from repro.net.simnet import Host
from repro.obs import hooks as _obs_hooks
from repro.sim.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cohort import CohortFlow
    from repro.faults.injector import FaultInjector


@dataclass(frozen=True)
class ClientPlan:
    """What one fleet client should do."""

    index: int
    host: Host
    protocol: str
    service: str
    calls: int
    operation: str
    arguments: tuple[Any, ...] = ()
    #: Virtual seconds between receiving a reply and issuing the next call.
    think_time: float = 0.0
    #: Workload-relative virtual time of this client's first call.
    start_offset: float = 0.0
    #: Direct every *k*-th call (1-based numbers divisible by *k*) at
    #: ``stale_operation`` — §5.7 stall-protocol pressure.
    stale_every: int | None = None
    stale_operation: str = "no_such_operation"
    #: Retry/failover policy: transport-level failures (connection aborted
    #: by a crash, no alive replica, per-attempt timeout) are retried —
    #: routed by the failover-aware registry — up to the attempt budget.
    #: ``None`` keeps the seed behaviour: such failures count as faults.
    retry: RetryPolicy | None = None


class _FleetClient:
    """One callback-driven client of the fleet.

    With a :class:`RetryPolicy` on its plan the client is failover-aware:
    an attempt that fails at the transport level — the connection was
    aborted by a crash, no replica was alive, or the per-attempt timeout
    expired — is reissued (the registry then routes around dead replicas)
    until the attempt budget runs out and the call is abandoned.  A call's
    reported RTT spans first attempt to final outcome, so failover cost is
    visible in the latency percentiles.

    The client also keeps the §6 recency high-water mark: every successful
    reply observes the serving replica's published interface version, and a
    version older than one already observed is counted as a recency
    violation (the stall protocol guarantees zero, across failover).
    """

    def __init__(self, driver: "FleetDriver", plan: ClientPlan) -> None:
        self.driver = driver
        self.plan = plan
        self.retry = plan.retry
        self.entry = driver.registry.lookup(plan.service)
        factory = driver.protocol_factory(plan.protocol)
        self.stack: ProtocolClient = factory(plan.host, plan.index, self.entry.replicas)
        self.report = ClientReport(
            name=plan.host.name, protocol=plan.protocol, service=plan.service
        )
        #: Stub-binding state for version-aware routing: which description
        #: this client compiled stubs from, per replica, plus the recency
        #: watermark.  Inert (pure bookkeeping) unless the service entry has
        #: ``version_routing`` armed.
        self.binding = ClientBinding()
        self._calls_issued = 0
        #: The operation this client currently calls; starts at the plan's
        #: and may switch to an upgrade-declared successor after a rebind.
        self._operation = plan.operation
        #: True while the in-progress call is a deliberate ``stale_every``
        #: probe (those must not trigger a rebind).
        self._probe = False
        #: Attempts made for the call currently in progress.
        self._attempts = 0
        #: Virtual time the current call's *first* attempt was issued.
        self._call_started = 0.0
        #: Token identifying the in-flight attempt; a reply or timeout for
        #: a superseded attempt compares unequal and becomes a no-op.
        self._pending: object | None = None
        #: Highest published interface version observed via a successful
        #: reply (the §6 recency watermark; -1 = nothing observed yet).
        self._seen_version = -1
        #: Open observability spans for the call in progress (None when
        #: observability is off or spans are disabled).
        self._call_span = None
        self._attempt_span = None
        #: Version tier ("compatible" / "fresh" / None) of the most recent
        #: selection for this client — flight-dump context.
        self._tier: str | None = None

    def prepare(self) -> None:
        """Fetch and parse the published interface documents (blocking)."""
        self.stack.prepare()
        for replica in self.entry.replicas:
            description = self.stack.bound_description(replica.index)
            if description is not None:
                self.binding.bind(replica.index, description)

    def start(self) -> None:
        """Issue this client's first call."""
        self._next_call()

    def _next_call(self) -> None:
        if self.driver.closed:
            # The driver's measured window is over (a deadline cut the run
            # short): a leftover think-timer event must not issue calls into
            # a later run's window.
            return
        plan = self.plan
        if self._calls_issued >= plan.calls:
            self.driver._client_finished()
            return
        self._calls_issued += 1
        call_number = self._calls_issued
        operation, arguments = self._operation, plan.arguments
        self._probe = bool(plan.stale_every and call_number % plan.stale_every == 0)
        if self._probe:
            operation, arguments = plan.stale_operation, ()
        self._attempts = 0
        self._call_started = self.driver.scheduler.now
        obs = self.driver.obs
        if obs is not None:
            self._call_span = obs.begin_call(self, operation)
        self._issue(operation, arguments)

    # -- one attempt ---------------------------------------------------------

    def _issue(self, operation: str, arguments: tuple[Any, ...]) -> None:
        if self.driver.closed:
            return
        driver = self.driver
        self._attempts += 1
        try:
            replica = driver.registry.select(
                self.plan.service, self.report.name, binding=self.binding
            )
        except NoAliveReplicaError:
            self._attempt_failed(operation, arguments)
            return
        self.report.replica_sequence.append(replica.index)
        ServiceRegistry.begin_call(replica)
        token = object()
        self._pending = token
        scheduler = driver.scheduler
        timeout_event = None
        retry = self.retry
        if retry is not None and retry.timeout is not None:
            timeout_event = scheduler.schedule(
                retry.timeout,
                self._on_timeout,
                token,
                replica,
                operation,
                arguments,
                label=(
                    f"{self.report.name} attempt timeout"
                    if scheduler.tracing
                    else "attempt timeout"
                ),
            )
        obs = driver.obs
        if obs is None:
            deferred = self.stack.call(replica, operation, arguments)
        else:
            self._tier = (
                obs.last_select[1] if obs.last_select is not None else None
            )
            span = obs.begin_attempt(self, operation, replica)
            self._attempt_span = span
            if span is not None:
                # In-band propagation: the protocol stack reads the context
                # while it builds the request (SOAP Header block / GIOP
                # service-context slot), synchronously in this frame.
                _obs_hooks.CONTEXT = span.context
            try:
                deferred = self.stack.call(replica, operation, arguments)
            finally:
                _obs_hooks.CONTEXT = None
        deferred.subscribe(
            lambda value, error, _delay: self._on_reply(
                token, timeout_event, replica, operation, arguments, value, error
            )
        )

    def _on_timeout(
        self, token: object, replica: Replica, operation: str, arguments: tuple[Any, ...]
    ) -> None:
        if token is not self._pending:
            return  # the attempt already resolved; this timer lost the race
        self._pending = None
        obs = self.driver.obs
        if obs is not None:
            obs.end_attempt(self, "timeout")
        ServiceRegistry.end_call(replica)
        if self.driver.closed:
            return
        # The hung attempt still owns a FIFO expectation on its connection;
        # reset it so a later reply cannot mis-correlate with the retry.
        self.stack.reset_replica(replica)
        self._attempt_failed(operation, arguments)

    def _on_reply(
        self,
        token: object,
        timeout_event,
        replica: Replica,
        operation: str,
        arguments: tuple[Any, ...],
        value: Any,
        error: BaseException | None,
    ) -> None:
        if token is not self._pending:
            # A late reply of a timed-out attempt: its accounting (in-flight
            # slot, failed-attempt counters) was settled at timeout time.
            return
        self._pending = None
        if timeout_event is not None:
            timeout_event.cancel()
        ServiceRegistry.end_call(replica)
        if self.driver.closed:
            # A reply landing after the window: release the in-flight slot
            # (above) but leave the frozen report and the call loop alone.
            return
        outcome = self.stack.classify(value, error)
        obs = self.driver.obs
        if (
            self.retry is not None
            and isinstance(error, TransportError)
            and outcome == OUTCOME_OTHER
        ):
            # Strictly transport-level failure (connection aborted, dead
            # server, ...) under a retry policy: fail over instead of
            # recording a fault.  Deterministic application-level errors
            # (protocol faults, malformed replies) are never retried —
            # they would fail identically every time.
            if obs is not None:
                obs.end_attempt(self, "retry")
            self._attempt_failed(operation, arguments)
            return
        if obs is not None:
            obs.end_attempt(self, outcome)
        self.report.rtts.append(self.driver.scheduler.now - self._call_started)
        self._count(outcome)
        self._note_trace(operation, outcome, replica.index)
        self.driver._note_version_call(replica)
        rollout = self.entry.active_rollout
        if rollout is not None:
            rollout.note_call(outcome)
        if outcome == OUTCOME_SUCCESS:
            self._observe_recency(replica)
            self.driver._note_success(replica)
        elif (
            outcome == OUTCOME_STALE
            and not self._probe
            and self.entry.version_routing
        ):
            # A planned call hit a replica whose interface moved under the
            # client's stubs (a breaking publication): the §5.7 stale fault
            # is the visible signal — never a silently wrong answer — and
            # the client rebinds before its next call.
            if obs is not None:
                obs.end_call(self, outcome)
            self._rebind(replica)
            return
        if obs is not None:
            obs.end_call(self, outcome)
        self._after_call()

    # -- failure/retry path --------------------------------------------------

    def _attempt_failed(self, operation: str, arguments: tuple[Any, ...]) -> None:
        if self.driver.closed:
            return
        self.report.failed_attempts += 1
        retry = self.retry
        if retry is not None and self._attempts < retry.max_attempts:
            self.report.retried_calls += 1
            if retry.backoff > 0:
                scheduler = self.driver.scheduler
                scheduler.schedule(
                    retry.backoff,
                    self._issue,
                    operation,
                    arguments,
                    label=(
                        f"{self.report.name} retry backoff"
                        if scheduler.tracing
                        else "retry backoff"
                    ),
                )
            else:
                self._issue(operation, arguments)
            return
        # Budget exhausted (or no policy): the call is abandoned — it has no
        # RTT and no outcome classification, only the abandoned counter.
        self.report.abandoned_calls += 1
        obs = self.driver.obs
        if obs is not None:
            obs.end_call(self, "abandoned")
        self._note_trace(operation, "abandoned", None)
        self._after_call()

    # -- bookkeeping ---------------------------------------------------------

    def _note_trace(self, operation: str, outcome: str, replica: int | None) -> None:
        """Stream this call's final outcome into the run's trace, if any."""
        trace = self.driver.trace
        if trace is not None:
            trace.note_call(
                issued_at=self._call_started,
                completed_at=self.driver.scheduler.now,
                client=self.report.name,
                protocol=self.plan.protocol,
                service=self.plan.service,
                operation=operation,
                outcome=outcome,
                replica=replica,
            )

    def _after_call(self) -> None:
        think = self.plan.think_time
        if think > 0:
            scheduler = self.driver.scheduler
            scheduler.schedule(
                think,
                self._next_call,
                label=(
                    f"{self.report.name} think time" if scheduler.tracing else "think time"
                ),
            )
        else:
            self._next_call()

    # -- interface evolution: rebind after a breaking publication ------------

    def _rebind(self, replica: Replica) -> None:
        """Refresh this client's stubs for ``replica``, then resume calling.

        The stall protocol guarantees the published interface was current
        when the stale fault was served, so the version observed here
        legitimately raises the routing watermark — after which the fresh
        tier keeps this client off replicas still publishing older versions.
        """
        self.binding.observe(replica.publisher.version)
        if not replica.alive:
            # The replica crashed after serving the stale fault: a re-fetch
            # to the dead node would never resolve.  Skip the refresh — the
            # next call routes elsewhere and rebinds there if still needed.
            self._after_call()
            return
        obs = self.driver.obs
        rebind_span = obs.begin_rebind(self, replica) if obs is not None else None
        deferred = self.stack.rebind_replica(replica)

        def rebound(_value: Any, error: BaseException | None, _delay: float) -> None:
            if self.driver.closed:
                return
            if error is not None:
                # The re-fetch failed (e.g. a crash aborted it in flight):
                # the stubs were not refreshed, so this is not a rebind —
                # the client simply resumes and will fault-and-retry again.
                if obs is not None:
                    obs.end_span(rebind_span, {"outcome": "failed"})
                self._after_call()
                return
            self.report.rebinds += 1
            rollout = self.entry.active_rollout
            if rollout is not None:
                rollout.note_rebind()
            description = self.stack.bound_description(replica.index)
            if description is not None:
                self.binding.bind(replica.index, description)
                self._re_resolve_operation(description)
            if obs is not None:
                obs.end_span(
                    rebind_span,
                    {"outcome": "rebound", "version": replica.publisher.version},
                )
            self._after_call()

        deferred.subscribe(rebound)

    def _re_resolve_operation(self, description: Any) -> None:
        """Point future calls at the upgrade's successor when ours is gone."""
        if description.has_operation(self._operation):
            return
        successor = self.entry.operation_successors.get(self._operation)
        if successor and description.has_operation(successor):
            self._operation = successor

    def _observe_recency(self, replica: Replica) -> None:
        version = replica.publisher.version
        self.binding.observe(version)
        if version < self._seen_version:
            self.report.recency_violations += 1
            obs = self.driver.obs
            if obs is not None:
                obs.note_recency_violation(
                    span=self._call_span,
                    client=self.report.name,
                    service=self.plan.service,
                    operation=self._operation,
                    replica=replica.index,
                    node=replica.node.name if replica.node is not None else None,
                    tier=self._tier,
                    version=version,
                    watermark=self._seen_version,
                )
        else:
            self._seen_version = version

    def _count(self, outcome: str) -> None:
        report = self.report
        if outcome == OUTCOME_SUCCESS:
            report.successes += 1
        elif outcome == OUTCOME_STALE:
            report.stale_faults += 1
        elif outcome == OUTCOME_NOT_INITIALIZED:
            report.not_initialized_faults += 1
        else:
            report.other_faults += 1


class _ReplicaSnapshot:
    """Pre-run server-side counters for one replica."""

    def __init__(self, replica: Replica) -> None:
        self.replica = replica
        stats = replica.call_handler.stats
        self.stalled_calls = stats.stalled_calls
        self.queued_while_stalled = stats.queued_while_stalled
        self.lifetime_max_stall_depth = stats.max_stall_queue_depth
        self.calls_routed = replica.calls_routed
        publisher_stats = replica.publisher.stats
        self.publications = publisher_stats.publications
        self.forced_publications = publisher_stats.forced_publications
        self.stale_call_publications = publisher_stats.stale_call_publications
        endpoint = transport_endpoint(replica.call_handler)
        self.endpoint = endpoint
        self.replies_sent = endpoint.stats.replies_sent if endpoint else 0
        self.connections = len(endpoint.connections) if endpoint else 0
        # max is not delta-able like the counters: measure this run's high
        # water with a clean gauge, then restore the lifetime maximum.
        stats.max_stall_queue_depth = 0

    def restore_gauges(self) -> None:
        """Put the lifetime high-water mark back (abnormal-exit path)."""
        stats = self.replica.call_handler.stats
        stats.max_stall_queue_depth = max(
            stats.max_stall_queue_depth, self.lifetime_max_stall_depth
        )

    def report(self, calls_by_version: dict[int, int] | None = None) -> ReplicaReport:
        """Build this replica's per-run report and restore lifetime gauges."""
        replica = self.replica
        stats = replica.call_handler.stats
        run_max_depth = stats.max_stall_queue_depth
        stats.max_stall_queue_depth = max(run_max_depth, self.lifetime_max_stall_depth)
        publisher = replica.publisher
        return ReplicaReport(
            calls_by_version=dict(calls_by_version or {}),
            service=replica.service,
            index=replica.index,
            node=replica.node.name,
            class_name=replica.class_name,
            calls_routed=replica.calls_routed - self.calls_routed,
            stalled_calls=stats.stalled_calls - self.stalled_calls,
            queued_while_stalled=stats.queued_while_stalled - self.queued_while_stalled,
            max_stall_queue_depth=run_max_depth,
            connections=(
                len(self.endpoint.connections) - self.connections if self.endpoint else 0
            ),
            replies_sent=(
                self.endpoint.stats.replies_sent - self.replies_sent if self.endpoint else 0
            ),
            publications=publisher.stats.publications - self.publications,
            forced_publications=(
                publisher.stats.forced_publications - self.forced_publications
            ),
            stale_call_publications=(
                publisher.stats.stale_call_publications - self.stale_call_publications
            ),
            interface_version=publisher.version,
        )


class _NodeSnapshot:
    """Pre-run CPU counters for one server machine.

    Like the stall-queue depth, ``max_queue_delay`` is a high-water gauge,
    not a delta-able counter: it is zeroed for the run and the lifetime
    maximum is restored when the report is built.
    """

    def __init__(self, node) -> None:
        self.node = node
        core = node.server_core
        self.core = core
        if core is not None:
            self.busy_seconds = core.busy_seconds
            self.waited_seconds = core.waited_seconds
            self.lifetime_max_wait = core.max_queue_delay
            core.max_queue_delay = 0.0
        else:
            self.busy_seconds = 0.0
            self.waited_seconds = 0.0
            self.lifetime_max_wait = 0.0

    def restore_gauges(self) -> None:
        """Put the lifetime high-water mark back (abnormal-exit path)."""
        if self.core is not None:
            self.core.max_queue_delay = max(
                self.core.max_queue_delay, self.lifetime_max_wait
            )

    def report(self) -> NodeReport:
        """Build this node's per-run report and restore lifetime gauges."""
        core = self.core
        if core is None:
            return NodeReport(name=self.node.name, cores=None)
        run_max_wait = core.max_queue_delay
        core.max_queue_delay = max(run_max_wait, self.lifetime_max_wait)
        return NodeReport(
            name=self.node.name,
            cores=core.cores,
            busy_seconds=core.busy_seconds - self.busy_seconds,
            waited_seconds=core.waited_seconds - self.waited_seconds,
            max_core_wait=run_max_wait,
        )


def transport_endpoint(call_handler):
    """Best-effort transport endpoint of a call handler, any technology.

    The SOAP handler exposes it through its HTTP server, the CORBA handler
    through its server ORB; a third-party handler may expose ``endpoint``
    directly, or nothing at all (connection/reply deltas then read 0).
    """
    http_server = getattr(call_handler, "http_server", None)
    if http_server is not None:
        return http_server.endpoint
    orb = getattr(call_handler, "orb", None)
    if orb is not None:
        return orb.endpoint
    return getattr(call_handler, "endpoint", None)


class FleetDriver:
    """Run a fleet of clients against the registry's services and report."""

    def __init__(
        self,
        scheduler: Scheduler,
        registry: ServiceRegistry,
        plans: Iterable[ClientPlan],
        scripted_events: Iterable[tuple[float, Callable[[], None]]] = (),
        protocol_factories: dict[str, ProtocolClientFactory] | None = None,
        description: str = "cluster fleet",
        until: float | None = None,  # run-relative horizon, like the offsets
        faults: "FaultInjector | None" = None,
        cohorts: "Iterable[CohortFlow]" = (),
        trace: "Any | None" = None,
        obs: "Any | None" = None,
    ) -> None:
        self.scheduler = scheduler
        self.registry = registry
        self.plans = tuple(plans)
        self.scripted_events = tuple(scripted_events)
        self._protocol_factories = protocol_factories or {}
        self.description = description
        self.until = until
        #: Optional :class:`repro.traffic.trace.TraceWriter`: per-call
        #: outcomes, cohort-flow batches and timeline firings are streamed
        #: into it while the run is in flight.  ``None`` costs nothing.
        self.trace = trace
        #: Optional installed :class:`repro.obs.Observability`: span/metric
        #: hook sites all reduce to one ``is not None`` test when off.
        self.obs = obs
        #: The world's fault injector, when one is wired in: successful
        #: replies stamp recovery times and the report gains availability
        #: metrics (downtime, recovery latency) derived from its outage log.
        self.faults = faults
        #: Set once the measured window ends; leftover client events (think
        #: timers, in-flight replies of a deadline-cut run) become no-ops so
        #: they cannot contaminate a later run on the same world.
        self.closed = False
        #: Per-replica completed-call counts keyed by the serving replica's
        #: published interface version at reply time (``id(replica)`` ->
        #: ``{version: calls}``) — the rollout observability feed.
        self._version_calls: dict[int, dict[int, int]] = {}
        self.clients = [_FleetClient(self, plan) for plan in self.plans]
        self._finished_clients = 0
        #: Cohort flows: the modeled client mass riding the same registry
        #: and server cores as the discrete fleet (see repro.cluster.cohort).
        self.flows = list(cohorts)
        self._finished_flows = 0

    def protocol_factory(self, name: str) -> ProtocolClientFactory:
        """Scenario-local client-stack factory, else the global registry."""
        local = self._protocol_factories.get(name)
        return local if local is not None else client_protocol_factory(name)

    def run(self) -> ClusterReport:
        """Prepare the fleet, run it to completion, and report."""
        for client in self.clients:
            client.prepare()
        for flow in self.flows:
            # Flow preparation fetches documents and runs the calibration
            # probe — real pre-window traffic, like the clients' fetches —
            # so it must precede the snapshots below.
            flow.prepare(self)

        snapshots = [
            _ReplicaSnapshot(replica)
            for service in self.registry.services
            for replica in service.replicas
        ]
        nodes = []
        seen_nodes = set()
        for service in self.registry.services:
            for replica in service.replicas:
                if id(replica.node) not in seen_nodes:
                    seen_nodes.add(id(replica.node))
                    nodes.append(replica.node)
        node_snapshots = [_NodeSnapshot(node) for node in nodes]

        if self.obs is not None:
            self.obs.begin_run(self)
        try:
            started_at = self.scheduler.now
            events_before = self.scheduler.dispatched_count
            for offset, action in self.scripted_events:
                self.scheduler.schedule(
                    offset, self._guard(action), label="workload scripted event"
                )
            for client in self.clients:
                self.scheduler.schedule(
                    client.plan.start_offset,
                    client.start,
                    label=f"{client.report.name} start",
                )
            for flow in self.flows:
                self.scheduler.schedule(0.0, flow.start, label=f"{flow.name} start")
            deadline = started_at + self.until if self.until is not None else None
            if deadline is not None:
                # A sentinel pins an event at the deadline, so the stop
                # predicate triggers exactly there even when the queue is
                # sparse — without it, run_until would first dispatch
                # whatever event lies beyond the horizon and overshoot.
                self.scheduler.schedule(self.until, _noop, label="run deadline")
            if self.clients or self.flows:
                self.scheduler.run_until(
                    lambda: (
                        self._finished_clients == len(self.clients)
                        and self._finished_flows == len(self.flows)
                    )
                    or (deadline is not None and self.scheduler.now >= deadline),
                    description=self.description,
                    max_events=1_000_000_000,
                )
            if deadline is not None and self.scheduler.now < deadline:
                self.scheduler.run_for(deadline - self.scheduler.now)
            finished_at = self.scheduler.now
        except BaseException:
            # An event (a user timeline action, a handler) raised out of the
            # window: the zeroed high-water gauges must still be restored.
            for snapshot in snapshots:
                snapshot.restore_gauges()
            for node_snapshot in node_snapshots:
                node_snapshot.restore_gauges()
            raise
        finally:
            # Whatever happened, leftover fleet events must go quiet.
            self.closed = True
            if self.obs is not None:
                self.obs.end_run()

        service_reports = []
        snapshot_by_replica = {id(s.replica): s for s in snapshots}
        for service in self.registry.services:
            service_reports.append(
                ServiceReport(
                    name=service.name,
                    technology=service.technology,
                    policy=service.policy.name,
                    replicas=[
                        snapshot_by_replica[id(replica)].report(
                            self._version_calls.get(id(replica))
                        )
                        for replica in service.replicas
                    ],
                )
            )
        node_reports = [node_snapshot.report() for node_snapshot in node_snapshots]
        if self.faults is not None and self.faults.has_outages:
            self._apply_availability(node_reports, service_reports, started_at, finished_at)
        rollouts = [
            record
            for service in self.registry.services
            for record in service.rollout_history
            if record.started_at >= started_at
        ]
        report = ClusterReport(
            started_at=started_at,
            finished_at=finished_at,
            clients=[client.report for client in self.clients],
            services=service_reports,
            nodes=node_reports,
            rollouts=rollouts,
            events_dispatched=self.scheduler.dispatched_count - events_before,
            cohorts=[flow.report for flow in self.flows],
        )
        if self.obs is not None:
            report.metrics = self.obs.metrics_report()
            report.slo_results = self.obs.evaluate_slos()
            if self.trace is not None:
                self.obs.flush_spans(self.trace)
        return report

    def _guard(self, action: Callable[[], None]) -> Callable[[], None]:
        """Make a scripted event a no-op once this run's window has closed,
        so a timeline entry beyond a deadline cannot fire into a later run."""

        def fire() -> None:
            if not self.closed:
                if self.trace is not None:
                    self.trace.note_timeline(
                        self.scheduler.now, getattr(action, "__trace_event__", None)
                    )
                action()

        return fire

    def _client_finished(self) -> None:
        self._finished_clients += 1

    def _flow_finished(self, flow: object) -> None:
        self._finished_flows += 1

    def _note_version_call(self, replica: Replica, count: int = 1) -> None:
        """Count ``count`` completed calls under the replica's current version."""
        per_version = self._version_calls.setdefault(id(replica), {})
        version = replica.publisher.version
        per_version[version] = per_version.get(version, 0) + count

    def _note_success(self, replica: Replica) -> None:
        """Stamp recovery bookkeeping for a successful reply (fault drills)."""
        faults = self.faults
        if faults is not None and faults.has_outages and replica.node is not None:
            faults.note_recovery(replica.node.name, self.scheduler.now)

    def _apply_availability(
        self,
        node_reports: list[NodeReport],
        service_reports: list[ServiceReport],
        started_at: float,
        finished_at: float,
    ) -> None:
        """Fold the injector's outage log into the per-node/replica reports."""
        faults = self.faults
        downtime_by_node: dict[str, float] = {}
        for node_report in node_reports:
            name = node_report.name
            downtime = faults.downtime(name, started_at, finished_at)
            downtime_by_node[name] = downtime
            node_report.downtime_s = downtime
            node_report.outages = sum(
                1
                for outage in faults.outages_for(name)
                if outage.downtime_within(started_at, finished_at) > 0.0
                or started_at <= outage.crashed_at <= finished_at
            )
            node_report.recovery_latency_s = faults.recovery_latency(
                name, started_at, finished_at
            )
        for service_report in service_reports:
            for replica_report in service_report.replicas:
                replica_report.downtime_s = downtime_by_node.get(
                    replica_report.node, 0.0
                )


def _noop() -> None:
    """The deadline sentinel: dispatching it only advances the clock."""
