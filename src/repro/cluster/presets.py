"""Canonical fleet-shaped scenario presets.

The 4-server × 256-client mixed SOAP/CORBA **fault drill** is the
reproduction's acceptance workload: two replicated echo services, failover
retry on every client, a mid-run edit + publish, one crash, one partition
that later heals, and a restart.  It started life inside
``benchmarks/bench_fault_drill.py``; it now lives here so the acceptance
benchmark, the headline ``events_per_second`` benchmark, and the
compiled-vs-pure backend equivalence test all drive the byte-identical
scenario definition.
"""

from __future__ import annotations

from repro.cluster.scenario import Scenario, edit, op, publish
from repro.core.sde import SDEConfig
from repro.faults import RetryPolicy, crash, heal, partition, restart
from repro.rmitypes import STRING

#: The acceptance floor is 256 clients; quick CI grids run a quarter of it.
FAULT_DRILL_CLIENTS = 256
FAULT_DRILL_CLIENTS_QUICK = 64

#: Server count of the drill (fixed by the scenario definition below).
FAULT_DRILL_SERVERS = 4


def fault_drill_scenario(clients: int = FAULT_DRILL_CLIENTS) -> Scenario:
    """4 servers × mixed fleet, one crash + one partition mid-run."""
    echo = op("echo", (("message", STRING),), STRING, body=lambda _self, m: m)
    retry = RetryPolicy(max_attempts=4, timeout=0.08, backoff=0.005)
    return (
        Scenario(name="fault-drill", sde_config=SDEConfig(generation_cost=0.02))
        .servers(FAULT_DRILL_SERVERS)
        .service("EchoSoap", [echo], technology="soap", replicas=2)
        .service("EchoCorba", [echo], technology="corba", replicas=2)
        .clients(
            clients,
            protocol_mix={"soap": 0.5, "corba": 0.5},
            calls=4,
            operation="echo",
            arguments=("hello fleet",),
            think_time=0.02,
            arrival=0.0005,
            retry=retry,
        )
        .at(0.020, edit("EchoSoap", op("added_mid_run")))
        .at(0.030, publish("EchoSoap"))      # generation completes ~0.05 ...
        .at(0.040, crash("server-1"))        # ... crash lands mid-generation
        .at(0.050, partition("server-3"))    # second fault class: isolation
        .at(0.110, heal("server-3"))
        .at(0.150, restart("server-1"))
    )
