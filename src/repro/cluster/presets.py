"""Canonical fleet-shaped scenario presets.

The 4-server × 256-client mixed SOAP/CORBA **fault drill** is the
reproduction's acceptance workload: two replicated echo services, failover
retry on every client, a mid-run edit + publish, one crash, one partition
that later heals, and a restart.  It started life inside
``benchmarks/bench_fault_drill.py``; it now lives here so the acceptance
benchmark, the headline ``events_per_second`` benchmark, and the
compiled-vs-pure backend equivalence test all drive the byte-identical
scenario definition.

The drill is parameterised (``servers=``, ``clients=``, ``cohort=``, ...)
so the same definition scales from the quick CI grid up to the
million-client cohort benchmark (:func:`million_client_scenario`) — the
defaults reproduce the historical drill byte-for-byte.
"""

from __future__ import annotations

from repro.cluster.cohort import CohortModel
from repro.cluster.scenario import Scenario, edit, op, publish
from repro.core.sde import SDEConfig
from repro.evolve import rolling, upgrade
from repro.faults import RetryPolicy, crash, heal, partition, restart
from repro.net.latency import CostModel
from repro.rmitypes import STRING
from repro.traffic.trace import echo_body

#: The acceptance floor is 256 clients; quick CI grids run a quarter of it.
FAULT_DRILL_CLIENTS = 256
FAULT_DRILL_CLIENTS_QUICK = 64

#: Server count of the drill (fixed by the historical scenario definition).
FAULT_DRILL_SERVERS = 4

#: The cohort benchmark's headline scale, and its quick-grid stand-in.
MILLION_CLIENTS = 1_000_000
MILLION_CLIENTS_QUICK = 100_000


def fault_drill_scenario(
    clients: int = FAULT_DRILL_CLIENTS,
    servers: int = FAULT_DRILL_SERVERS,
    *,
    replicas: int = 2,
    cores: int | None = None,
    cohort: CohortModel | None = None,
    calls: int = 4,
    think_time: float = 0.02,
    arrival: float = 0.0005,
    cost_model: CostModel | None = None,
) -> Scenario:
    """N servers × mixed fleet, one crash + one partition mid-run.

    The defaults are the historical 4-server × 256-client drill,
    byte-identical to every earlier recording.  ``cohort`` lifts the fleet
    to cohort scale (see :mod:`repro.cluster.cohort`); ``servers`` /
    ``replicas`` / ``cores`` reshape the machine room.  The crash always
    hits the first server and the partition the last one (capped at the
    historical ``server-3`` when four or more servers exist), so the two
    fault classes never collapse onto one machine.
    """
    if servers < 2:
        raise ValueError("the fault drill needs at least 2 servers to fail over")
    # The registered echo body keeps the drill traceable (record/replay);
    # it computes exactly what the historical lambda did.
    echo = op("echo", (("message", STRING),), STRING, body=echo_body)
    retry = RetryPolicy(max_attempts=4, timeout=0.08, backoff=0.005)
    partitioned = f"server-{min(servers, 3)}"
    return (
        Scenario(
            name="fault-drill",
            sde_config=SDEConfig(generation_cost=0.02, cost_model=cost_model),
        )
        .servers(servers, cores=cores)
        .service("EchoSoap", [echo], technology="soap", replicas=replicas)
        .service("EchoCorba", [echo], technology="corba", replicas=replicas)
        .clients(
            clients,
            protocol_mix={"soap": 0.5, "corba": 0.5},
            calls=calls,
            operation="echo",
            arguments=("hello fleet",),
            think_time=think_time,
            arrival=arrival,
            retry=retry,
            cohort=cohort,
        )
        .at(0.020, edit("EchoSoap", op("added_mid_run")))
        .at(0.030, publish("EchoSoap"))      # generation completes ~0.05 ...
        .at(0.040, crash("server-1"))        # ... crash lands mid-generation
        .at(0.050, partition(partitioned))   # second fault class: isolation
        .at(0.110, heal(partitioned))
        .at(0.150, restart("server-1"))
    )


def cohort_scale_cost_model() -> CostModel:
    """Per-call CPU costs sized for million-client cohort runs.

    The 2004-era constants put one echo call around 0.1 CPU-seconds —
    sensible for a 512-client testbed sweep, absurd when a modeled million
    clients offer two million calls inside a 0.2 s window.  These constants
    land one call under a microsecond, so the 8-core fleet runs at
    realistic utilisation: queueing waits appear (the server-core model is
    genuinely exercised) without drowning the window.
    """
    return CostModel(
        fixed_dispatch=3e-7,
        text_parse_per_byte=3e-10,
        binary_parse_per_byte=1e-10,
        reflection_overhead=1e-7,
        interface_check=5e-8,
        dsi_overhead=1e-7,
    )


def million_client_scenario(
    clients: int = MILLION_CLIENTS,
    *,
    representatives: int = 32,
) -> Scenario:
    """The million-client acceptance workload: drill faults + breaking upgrade.

    The fault drill's crash and partition, at cohort scale, plus a rolling
    *breaking* interface upgrade (``echo`` → ``echo_v2``) landing mid-run —
    the §5.7/§6 machinery exercised while a modeled million-client mass
    keeps arriving.  Every client issues 2 calls; arrivals are spread so
    the whole mass lands within the drill's fault window.
    """
    echo_v2 = op("echo_v2", (("message", STRING),), STRING, body=echo_body)
    return fault_drill_scenario(
        clients,
        cores=2,
        cohort=CohortModel(representatives=representatives),
        calls=2,
        arrival=0.2 / clients,
        cost_model=cohort_scale_cost_model(),
    ).at(
        0.080,
        rolling(
            "EchoSoap",
            upgrade(add=[echo_v2], remove=["echo"], successors={"echo": "echo_v2"}),
            batch_size=1,
            drain=0.005,
        ),
    )
