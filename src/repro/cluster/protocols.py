"""Client-side protocol stacks for the fleet driver.

The server side of a scenario is already technology-independent (the SDE
Manager drives any registered :class:`~repro.core.sde.api.Technology`); this
module makes the *client* side pluggable too.  A :class:`ProtocolClient`
owns one simulated client machine's middleware stack for one protocol and
knows how to

* ``prepare()`` — fetch and parse the published interface documents of
  every replica it may be routed to (blocking, before the measured window);
* ``call(replica, operation, arguments)`` — issue one asynchronous call and
  return the transport :class:`~repro.net.transport.Deferred`;
* ``classify(value, error)`` — map the reply to one of the outcome
  categories ``"success"`` / ``"stale"`` / ``"not_initialized"`` /
  ``"other"``.

``soap`` and ``corba`` are registered by default; a third technology plugs
in with :func:`register_client_protocol` (or per-scenario via
``Scenario.technology(..., client=...)``), which is how the §5.3
extensibility claim is exercised at the Scenario level.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.core.sde.corba_handler import EXC_NON_EXISTENT_METHOD, EXC_SERVER_NOT_INITIALIZED
from repro.corba.idl import parse_idl
from repro.corba.orb import ClientOrb, RemoteObjectReference
from repro.errors import ClusterError, CorbaUserException, MiddlewareError
from repro.net.http import HttpClient
from repro.net.simnet import Address, Host
from repro.net.transport import Deferred
from repro.obs import hooks as _obs_hooks
from repro.soap.envelope import SoapRequest, SoapResponse
from repro.soap.wsdl import parse_wsdl

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.registry import Replica

OUTCOME_SUCCESS = "success"
OUTCOME_STALE = "stale"
OUTCOME_NOT_INITIALIZED = "not_initialized"
OUTCOME_OTHER = "other"


class ProtocolClient:
    """Base class: one client machine's stack for one protocol."""

    def __init__(self, host: Host, index: int, replicas: Sequence["Replica"]) -> None:
        self.host = host
        self.index = index
        self.replicas = tuple(replicas)
        self.http = HttpClient(host, name=f"wl-http-{index}")

    # -- interface documents -------------------------------------------------

    def fetch(self, url: str) -> str:
        """Blocking HTTP fetch of a published interface document."""
        response = self.http.get(url)
        if not response.ok:
            raise MiddlewareError(f"could not retrieve {url}: HTTP {response.status}")
        return response.body

    def prepare(self) -> None:
        """Fetch and parse every replica's published documents, in order."""
        for replica in self.replicas:
            self.prepare_replica(replica)

    def prepare_replica(self, replica: "Replica") -> None:
        """Fetch and parse one replica's published documents."""
        raise NotImplementedError

    # -- the call path -------------------------------------------------------

    def call(self, replica: "Replica", operation: str, arguments: tuple[Any, ...]) -> Deferred:
        """Issue one asynchronous call against ``replica``."""
        raise NotImplementedError

    def classify(self, value: Any, error: BaseException | None) -> str:
        """Map a resolved reply to an outcome category."""
        raise NotImplementedError

    # -- interface evolution -------------------------------------------------

    def bound_description(self, replica_index: int):
        """The interface description this stack's stubs were built from.

        The version-aware routing layer compares it against each replica's
        currently published description.  ``None`` (the base default, for
        stacks without parsed descriptions) disables the compatibility
        check for that replica.
        """
        return None

    def rebind_replica(self, replica: "Replica") -> Deferred:
        """Asynchronously re-fetch and re-parse one replica's documents.

        Called by the fleet driver after a §5.7 stale fault under
        version-aware routing: the client's stubs are outdated, so it
        rebinds — the simulated analogue of re-running WSDL2Java / the IDL
        compiler — and only then resumes calling.  The base implementation
        resolves immediately (a stack without documents has nothing to
        refresh).
        """
        deferred: Deferred = Deferred(f"rebind {replica.service}#{replica.index}")
        deferred.complete(None)
        return deferred

    def reset_replica(self, replica: "Replica") -> None:
        """Reset the transport connection to ``replica`` (timeout recovery).

        Called by the fleet driver when a per-attempt timeout expires: the
        hung request still owns a FIFO reply expectation on its connection,
        which must be abandoned before a retry so a late reply cannot
        mis-correlate.  The base implementation is a no-op (a third-party
        stack without connection state needs none).
        """


class SoapProtocolClient(ProtocolClient):
    """SOAP-over-HTTP client stack (WSDL description + envelope codec)."""

    def __init__(self, host: Host, index: int, replicas: Sequence["Replica"]) -> None:
        super().__init__(host, index, replicas)
        self._descriptions: dict[int, Any] = {}
        self._registries: dict[int, Any] = {}

    def prepare_replica(self, replica: "Replica") -> None:
        document = self.fetch(replica.publisher.document_url)
        description = parse_wsdl(document)
        self._descriptions[replica.index] = description
        self._registries[replica.index] = description.type_registry()

    def call(self, replica: "Replica", operation: str, arguments: tuple[Any, ...]) -> Deferred:
        description = self._descriptions[replica.index]
        registry = self._registries[replica.index]
        request = SoapRequest.for_call(
            operation, arguments, namespace=description.namespace, registry=registry
        )
        context = _obs_hooks.CONTEXT
        if context is not None:
            request.trace_context = context.encode()
        body, body_wire = request.to_xml_and_wire()
        wire = self.http.request_async(
            "POST",
            description.endpoint_url,
            body=body,
            headers={"Content-Type": "text/xml; charset=utf-8"},
            body_wire=body_wire,
        )

        def decode(response, error):
            if error is not None:
                raise error
            if not response.ok:
                raise MiddlewareError(f"SOAP endpoint returned HTTP {response.status}")
            return SoapResponse.from_xml(response.body, registry)

        return wire.transform(decode)

    def reset_replica(self, replica: "Replica") -> None:
        description = self._descriptions.get(replica.index)
        if description is None:
            return
        address, _path = HttpClient.parse_url(description.endpoint_url)
        self.http.channel.reset(address)

    def bound_description(self, replica_index: int):
        return self._descriptions.get(replica_index)

    def rebind_replica(self, replica: "Replica") -> Deferred:
        wire = self.http.request_async("GET", replica.publisher.document_url)

        def decode(response, error):
            if error is not None:
                raise error
            if not response.ok:
                raise MiddlewareError(
                    f"could not re-retrieve WSDL: HTTP {response.status}"
                )
            description = parse_wsdl(response.body)
            self._descriptions[replica.index] = description
            self._registries[replica.index] = description.type_registry()
            return description

        return wire.transform(decode)

    def classify(self, value: Any, error: BaseException | None) -> str:
        if error is not None:
            return OUTCOME_OTHER
        if not value.is_fault:
            return OUTCOME_SUCCESS
        if value.fault.is_non_existent_method:
            return OUTCOME_STALE
        if value.fault.is_server_not_initialized:
            return OUTCOME_NOT_INITIALIZED
        return OUTCOME_OTHER


class CorbaProtocolClient(ProtocolClient):
    """CORBA/GIOP client stack (IDL description + ORB remote references)."""

    def __init__(self, host: Host, index: int, replicas: Sequence["Replica"]) -> None:
        super().__init__(host, index, replicas)
        self.orb: ClientOrb | None = None
        self._descriptions: dict[int, Any] = {}
        self._remotes: dict[int, RemoteObjectReference] = {}

    def prepare_replica(self, replica: "Replica") -> None:
        document = self.fetch(replica.publisher.document_url)
        self._descriptions[replica.index] = parse_idl(document)
        if self.orb is None:
            self.orb = ClientOrb(self.host)
        ior_text = self.fetch(replica.publisher.ior_url)  # type: ignore[attr-defined]
        self._remotes[replica.index] = self.orb.string_to_object(ior_text.strip())

    def call(self, replica: "Replica", operation: str, arguments: tuple[Any, ...]) -> Deferred:
        return self._remotes[replica.index].invoke_async(operation, *arguments)

    def reset_replica(self, replica: "Replica") -> None:
        remote = self._remotes.get(replica.index)
        if remote is None or self.orb is None:
            return
        self.orb.channel.reset(Address(remote.ior.host, remote.ior.port))

    def bound_description(self, replica_index: int):
        return self._descriptions.get(replica_index)

    def rebind_replica(self, replica: "Replica") -> Deferred:
        # The IOR survives republication (the endpoint keeps its port), so a
        # rebind only refreshes the IDL document and the parsed description.
        wire = self.http.request_async("GET", replica.publisher.document_url)

        def decode(response, error):
            if error is not None:
                raise error
            if not response.ok:
                raise MiddlewareError(
                    f"could not re-retrieve IDL: HTTP {response.status}"
                )
            description = parse_idl(response.body)
            self._descriptions[replica.index] = description
            return description

        return wire.transform(decode)

    def classify(self, value: Any, error: BaseException | None) -> str:
        if error is None:
            return OUTCOME_SUCCESS
        if isinstance(error, CorbaUserException) and error.type_name == EXC_NON_EXISTENT_METHOD:
            return OUTCOME_STALE
        if isinstance(error, CorbaUserException) and error.type_name == EXC_SERVER_NOT_INITIALIZED:
            return OUTCOME_NOT_INITIALIZED
        return OUTCOME_OTHER


#: A protocol-client factory: ``(host, client_index, replicas) -> ProtocolClient``.
ProtocolClientFactory = Callable[[Host, int, Sequence["Replica"]], ProtocolClient]

_CLIENT_PROTOCOLS: dict[str, ProtocolClientFactory] = {
    "soap": SoapProtocolClient,
    "corba": CorbaProtocolClient,
}


def register_client_protocol(
    name: str, factory: ProtocolClientFactory, override: bool = False
) -> None:
    """Register a client-side stack for a (possibly third-party) technology."""
    if name in _CLIENT_PROTOCOLS and not override:
        raise ClusterError(f"client protocol {name!r} is already registered")
    _CLIENT_PROTOCOLS[name] = factory


def client_protocol_factory(name: str) -> ProtocolClientFactory:
    """The registered client-stack factory for ``name``."""
    factory = _CLIENT_PROTOCOLS.get(name)
    if factory is None:
        raise ClusterError(
            f"no client protocol {name!r}; registered: {sorted(_CLIENT_PROTOCOLS)}"
        )
    return factory


def registered_client_protocols() -> tuple[str, ...]:
    """Names of every globally registered client protocol."""
    return tuple(_CLIENT_PROTOCOLS)
