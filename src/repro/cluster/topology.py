"""Generalised world building: N server machines, M client machines.

The seed testbed hard-codes the paper's two-host shape (one client
PowerBook, one SDE server desktop).  :class:`ClusterWorld` generalises host
creation: any number of server machines — each carrying its own JPie
environment and SDE Manager — plus any number of client machines, all on
one shared scheduler and simulated network.  The legacy
:class:`repro.testbed.LiveDevelopmentTestbed` is now a thin adapter that
builds a one-server world.
"""

from __future__ import annotations

from repro.core.sde import SDEConfig, SDEManager, SDEManagerInterface
from repro.errors import HostNotFoundError
from repro.jpie import JPieEnvironment
from repro.net import Host, LatencyModel, Network, t1_lan_profile
from repro.sim import Scheduler


class ServerNode:
    """One server machine: a host plus its JPie environment and SDE Manager."""

    def __init__(self, world: "ClusterWorld", name: str, config: SDEConfig | None = None) -> None:
        self.world = world
        self.name = name
        self.host = world.network.add_host(name)
        self.environment = JPieEnvironment(f"{name}-jpie")
        self.sde = SDEManager(self.environment, world.scheduler, self.host, config)
        self.manager_interface = SDEManagerInterface(self.sde)
        #: False while crashed (toggled by :class:`repro.faults.FaultInjector`);
        #: the registry's routing policies skip dead nodes' replicas.
        self.is_alive = True

    @property
    def scheduler(self) -> Scheduler:
        """The shared event scheduler."""
        return self.world.scheduler

    @property
    def server_core(self):
        """The node's bounded CPU pool (``None`` = unbounded)."""
        return self.sde.server_core

    def __repr__(self) -> str:
        return f"ServerNode({self.name!r}, managed={len(self.sde.managed_servers)})"


class ClusterWorld:
    """A simulated world of N server machines and M client machines."""

    def __init__(
        self,
        latency: LatencyModel | None = None,
        scheduler: Scheduler | None = None,
    ) -> None:
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        # The cluster stack parses every delivered message synchronously in
        # its delivery callback and never retains Message objects, so it opts
        # into the network's arena allocator (see Network.pool_messages).
        self.network = Network(self.scheduler, latency or t1_lan_profile(), pool_messages=True)
        self.server_nodes: list[ServerNode] = []
        self.client_hosts: list[Host] = []

    # -- machines -----------------------------------------------------------

    def add_server(self, name: str | None = None, config: SDEConfig | None = None) -> ServerNode:
        """Attach one more server machine, with its own JPie + SDE stack."""
        if name is None:
            name = f"server-{len(self.server_nodes) + 1}"
        node = ServerNode(self, name, config)
        self.server_nodes.append(node)
        return node

    def add_client(self, name: str | None = None) -> Host:
        """Attach one more client machine to the network."""
        if name is None:
            name = f"client-{len(self.network.hosts)}"
        host = self.network.add_host(name)
        self.client_hosts.append(host)
        return host

    def client_fleet(self, count: int, prefix: str = "wl-client-") -> tuple[Host, ...]:
        """Attach ``count`` client machines named ``{prefix}1..{prefix}count``.

        Machines already attached under those names are reused, so repeated
        fleet runs on one world share their hosts.
        """
        hosts = []
        for index in range(count):
            name = f"{prefix}{index + 1}"
            try:
                hosts.append(self.network.host(name))
            except HostNotFoundError:
                host = self.network.add_host(name)
                self.client_hosts.append(host)
                hosts.append(host)
        return tuple(hosts)

    def node(self, name: str) -> ServerNode:
        """The server node with the given host name."""
        for node in self.server_nodes:
            if node.name == name:
                return node
        raise HostNotFoundError(f"no server node named {name!r}")

    # -- time control --------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.scheduler.now

    def run_for(self, duration: float) -> None:
        """Advance virtual time by ``duration`` seconds."""
        self.scheduler.run_for(duration)

    def run_until_idle(self) -> None:
        """Run until no simulated work remains."""
        self.scheduler.run_until_idle()

    def __repr__(self) -> str:
        return (
            f"ClusterWorld(servers={[n.name for n in self.server_nodes]}, "
            f"clients={len(self.client_hosts)})"
        )
