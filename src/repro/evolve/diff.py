"""The typed interface-diff engine: what changed, and does it break clients?

The source paper is about *live* interface evolution — the SDE republishes
WSDL/IDL while clients keep calling — but a publication is more than a
version bump: it either *extends* the interface (old stubs keep working) or
*breaks* it (old stubs reference operations that no longer exist, or whose
signatures changed).  This module makes that distinction first-class:

* :func:`diff_descriptions` compares two
  :class:`~repro.interface.InterfaceDescription` snapshots and returns a
  typed :class:`InterfaceDelta` — one :class:`OperationChange` per
  operation added / removed / signature-changed, plus struct-type changes;
* :func:`diff_documents` does the same over the *published documents*,
  uniformly for both description formats: the WSDL path parses with
  :func:`repro.soap.wsdl.parse_wsdl`, the CORBA path with
  :func:`repro.corba.idl.parse_idl`, and a third technology can register
  its own parser with :func:`register_description_parser`;
* :func:`is_compatible` answers the routing-layer question — "do stubs
  bound against ``bound`` still work against ``current``?" — used by the
  version-aware replica selection in :mod:`repro.cluster.registry`.

Classification rules (documented in ARCHITECTURE.md "Interface evolution"):
an *added* operation or struct type is **compatible** (old stubs never call
it); a *removed* or *signature-changed* operation, and a removed or changed
struct type, are **breaking** (an old stub could marshal a call the new
interface cannot honour).  A delta is breaking iff any of its changes is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.corba.idl import parse_idl
from repro.errors import EvolveError
from repro.interface import InterfaceDescription, OperationSignature
from repro.soap.wsdl import parse_wsdl

#: Change kinds carried by :class:`OperationChange` / :class:`StructChange`.
CHANGE_ADDED = "added"
CHANGE_REMOVED = "removed"
CHANGE_SIGNATURE = "signature-changed"

#: Delta classifications (see :attr:`InterfaceDelta.classification`).
CLASS_IDENTICAL = "identical"
CLASS_COMPATIBLE = "compatible"
CLASS_BREAKING = "breaking"


@dataclass(frozen=True)
class OperationChange:
    """One operation-level difference between two interface versions."""

    kind: str
    name: str
    old: OperationSignature | None = None
    new: OperationSignature | None = None

    @property
    def breaking(self) -> bool:
        """True when old stubs referencing this operation stop working."""
        return self.kind != CHANGE_ADDED

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``signature-changed: int f(int a)``."""
        signature = self.new or self.old
        rendered = signature.describe() if signature is not None else self.name
        if self.kind == CHANGE_SIGNATURE and self.old is not None:
            return f"{self.kind}: {self.old.describe()} -> {rendered}"
        return f"{self.kind}: {rendered}"

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class StructChange:
    """One struct-type difference between two interface versions."""

    kind: str
    name: str

    @property
    def breaking(self) -> bool:
        """Adding a struct type is compatible; removing or changing one is not."""
        return self.kind != CHANGE_ADDED

    def __str__(self) -> str:
        return f"{self.kind}: struct {self.name}"


@dataclass(frozen=True)
class InterfaceDelta:
    """The typed difference between two published interface versions."""

    service: str
    old_version: int
    new_version: int
    operations: tuple[OperationChange, ...] = ()
    structs: tuple[StructChange, ...] = ()

    # -- classification -----------------------------------------------------

    @property
    def empty(self) -> bool:
        """True when the two versions expose an identical interface."""
        return not (self.operations or self.structs)

    @property
    def breaking_changes(self) -> tuple["OperationChange | StructChange", ...]:
        """Every change an already-bound client could trip over."""
        return tuple(
            change
            for change in (*self.operations, *self.structs)
            if change.breaking
        )

    @property
    def compatible(self) -> bool:
        """True when clients bound to the old version keep working."""
        return not self.breaking_changes

    @property
    def classification(self) -> str:
        """``identical`` / ``compatible`` / ``breaking``."""
        if self.empty:
            return CLASS_IDENTICAL
        return CLASS_COMPATIBLE if self.compatible else CLASS_BREAKING

    # -- convenience views --------------------------------------------------

    @property
    def added(self) -> tuple[str, ...]:
        """Names of operations the new version added."""
        return self._names(CHANGE_ADDED)

    @property
    def removed(self) -> tuple[str, ...]:
        """Names of operations the new version removed."""
        return self._names(CHANGE_REMOVED)

    @property
    def changed(self) -> tuple[str, ...]:
        """Names of operations whose signature changed."""
        return self._names(CHANGE_SIGNATURE)

    def _names(self, kind: str) -> tuple[str, ...]:
        return tuple(change.name for change in self.operations if change.kind == kind)

    def describe(self) -> str:
        """Multi-line summary: classification header plus one line per change."""
        lines = [
            f"{self.service}: v{self.old_version} -> v{self.new_version} "
            f"({self.classification})"
        ]
        lines.extend(f"  {change}" for change in (*self.operations, *self.structs))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


def diff_descriptions(
    old: InterfaceDescription, new: InterfaceDescription
) -> InterfaceDelta:
    """The typed delta going from ``old`` to ``new``."""
    mine = {operation.name: operation for operation in old.operations}
    theirs = {operation.name: operation for operation in new.operations}
    changes: list[OperationChange] = []
    for name in sorted(set(mine) | set(theirs)):
        before, after = mine.get(name), theirs.get(name)
        if before is None:
            changes.append(OperationChange(CHANGE_ADDED, name, new=after))
        elif after is None:
            changes.append(OperationChange(CHANGE_REMOVED, name, old=before))
        elif before != after:
            changes.append(OperationChange(CHANGE_SIGNATURE, name, old=before, new=after))

    old_structs = {struct.name: struct for struct in old.structs}
    new_structs = {struct.name: struct for struct in new.structs}
    struct_changes: list[StructChange] = []
    for name in sorted(set(old_structs) | set(new_structs)):
        before, after = old_structs.get(name), new_structs.get(name)
        if before is None:
            struct_changes.append(StructChange(CHANGE_ADDED, name))
        elif after is None:
            struct_changes.append(StructChange(CHANGE_REMOVED, name))
        elif before != after:
            struct_changes.append(StructChange(CHANGE_SIGNATURE, name))

    return InterfaceDelta(
        service=new.service_name or old.service_name,
        old_version=old.version,
        new_version=new.version,
        operations=tuple(changes),
        structs=tuple(struct_changes),
    )


def is_compatible(bound: InterfaceDescription, current: InterfaceDescription) -> bool:
    """True when stubs bound against ``bound`` still work against ``current``.

    Every operation and struct type the bound description exposes must still
    exist, unchanged, in the current one; anything the current version adds
    on top is invisible to old stubs and therefore harmless.  This is the
    predicate the version-aware routing policies evaluate per replica.
    """
    for operation in bound.operations:
        if current.operation(operation.name) != operation:
            return False
    current_structs = {struct.name: struct for struct in current.structs}
    for struct in bound.structs:
        if current_structs.get(struct.name) != struct:
            return False
    return True


# -- uniform document-level diffs ---------------------------------------------------

#: Description-document parser per technology name: ``document text -> description``.
DescriptionParser = Callable[[str], InterfaceDescription]

_PARSERS: dict[str, DescriptionParser] = {
    "soap": parse_wsdl,
    "corba": parse_idl,
}


def register_description_parser(
    technology: str, parser: DescriptionParser, override: bool = False
) -> None:
    """Register a document parser for a (possibly third-party) technology."""
    if technology in _PARSERS and not override:
        raise EvolveError(f"description parser {technology!r} is already registered")
    _PARSERS[technology] = parser


def registered_description_parsers() -> tuple[str, ...]:
    """Names of every technology with a registered description parser."""
    return tuple(_PARSERS)


def parse_description(document: str, technology: str) -> InterfaceDescription:
    """Parse a published interface document of the named technology."""
    parser = _PARSERS.get(technology)
    if parser is None:
        raise EvolveError(
            f"no description parser for technology {technology!r}; "
            f"registered: {sorted(_PARSERS)}"
        )
    return parser(document)


def diff_documents(
    old_document: str, new_document: str, technology: str
) -> InterfaceDelta:
    """Diff two *published documents* (WSDL, IDL, or a registered format).

    This is the uniform entry point the rollout machinery uses to classify
    each upgrade wave from what the replicas actually published, not from
    what the upgrade plan intended.
    """
    return diff_descriptions(
        parse_description(old_document, technology),
        parse_description(new_document, technology),
    )
