"""``repro.evolve`` — interface evolution as a first-class scenario dimension.

The source paper's core loop is *live* interface evolution: the SDE
republishes WSDL/IDL as the developer edits, while clients keep calling.
This subsystem models what the rest of the repo treated as an opaque
version bump:

* a **typed diff engine** (:mod:`repro.evolve.diff`) — compares published
  interface descriptions (or the published *documents*, uniformly for the
  WSDL and CORBA-IDL formats) and classifies every publication as
  *compatible* (operations added) or *breaking* (operations removed or
  signature-changed);
* a per-service **version graph** (:mod:`repro.evolve.graph`) — every
  publication of every replica, queryable for typed deltas, plus the
  per-client :class:`ClientBinding` that version-aware routing consults
  (clients stay on replicas that are fresh w.r.t. their §6 recency
  watermark and compatible with the stubs they bound; breaking versions
  surface as an explicit stale-fault + rebind, never a silently wrong
  answer);
* **rollout strategies** (:mod:`repro.evolve.rollout` /
  :mod:`repro.evolve.actions`) — ``rolling`` / ``canary`` /
  ``abort_rollout`` timeline actions that upgrade an N-replica fleet
  wave-by-wave under load, compose with :mod:`repro.faults` (crash
  mid-rollout → deterministic resume, abort → rollback), and report wave
  durations, per-version call counts, rebinds and the stale-fault rate in
  the run's :class:`~repro.cluster.report.ClusterReport`.

See ARCHITECTURE.md "Interface evolution" for the classification rules,
the routing invariants and the rollout state machine.
"""

from repro.evolve.actions import abort_rollout, canary, rolling
from repro.evolve.diff import (
    CHANGE_ADDED,
    CHANGE_REMOVED,
    CHANGE_SIGNATURE,
    CLASS_BREAKING,
    CLASS_COMPATIBLE,
    CLASS_IDENTICAL,
    InterfaceDelta,
    OperationChange,
    StructChange,
    diff_descriptions,
    diff_documents,
    is_compatible,
    parse_description,
    register_description_parser,
    registered_description_parsers,
)
from repro.evolve.graph import ClientBinding, PublishedVersion, VersionGraph
from repro.evolve.rollout import (
    STRATEGY_CANARY,
    STRATEGY_ROLLING,
    InterfaceUpgrade,
    RolloutController,
    RolloutReport,
    WaveReport,
    upgrade,
)

__all__ = [
    "InterfaceDelta",
    "OperationChange",
    "StructChange",
    "diff_descriptions",
    "diff_documents",
    "is_compatible",
    "parse_description",
    "register_description_parser",
    "registered_description_parsers",
    "CHANGE_ADDED",
    "CHANGE_REMOVED",
    "CHANGE_SIGNATURE",
    "CLASS_IDENTICAL",
    "CLASS_COMPATIBLE",
    "CLASS_BREAKING",
    "VersionGraph",
    "PublishedVersion",
    "ClientBinding",
    "InterfaceUpgrade",
    "upgrade",
    "RolloutController",
    "RolloutReport",
    "WaveReport",
    "rolling",
    "canary",
    "abort_rollout",
    "STRATEGY_ROLLING",
    "STRATEGY_CANARY",
]
