"""Rollout strategies: upgrade an N-replica fleet while clients keep calling.

An :class:`InterfaceUpgrade` describes *what* changes (operations added,
removed, or replaced in place); a :class:`RolloutController` decides *when*
each replica takes it:

* **rolling** — replicas upgrade in index-order batches of ``batch_size``;
  after each batch's publication completes the controller drains for
  ``drain`` virtual seconds before starting the next wave;
* **canary** — a fraction of the replicas upgrades first; after
  ``promote_after`` seconds without an abort, the rest follow;
* **abort** — at any point the rollout can be aborted: pending waves are
  cancelled and every already-upgraded replica is rolled back to its
  pre-upgrade interface (the inverse edits are re-applied and republished).

The controller is an ordinary deterministic state machine on the world's
event scheduler, so rollouts compose with everything else a scenario does:
hundreds of clients keep calling mid-wave (the §5.7 stall protocol covers
calls that land while a wave's generation is running), and
:mod:`repro.faults` crashes compose deterministically — a wave replica
whose node is down is *deferred* and the controller polls until the node
restarts, upgrades it, and only then completes (crash mid-rollout →
deterministic resume), unless an abort turns the rollout into a rollback.

Each wave is classified by the diff engine from what the replicas actually
*published* — the before/after documents are compared with
:func:`~repro.evolve.diff.diff_documents` (WSDL and CORBA-IDL uniformly;
an unregistered third-technology format falls back to comparing the typed
descriptions) — and everything is recorded in a :class:`RolloutReport`
that the fleet driver folds into the run's
:class:`~repro.cluster.report.ClusterReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.errors import EvolveError, RolloutError
from repro.obs import hooks as _obs_hooks
from repro.evolve.diff import (
    CLASS_BREAKING,
    CLASS_COMPATIBLE,
    CLASS_IDENTICAL,
    InterfaceDelta,
    diff_descriptions,
    diff_documents,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.registry import Replica, ServiceEntry
    from repro.cluster.scenario import OperationSpec, ScenarioRuntime

STRATEGY_ROLLING = "rolling"
STRATEGY_CANARY = "canary"

#: Controller states (the rollout state machine, see ARCHITECTURE.md).
STATE_RUNNING = "running"
STATE_ROLLING_BACK = "rolling-back"
STATE_COMPLETED = "completed"
STATE_ABORTED = "aborted"


@dataclass(frozen=True)
class InterfaceUpgrade:
    """What one upgrade does to a service interface.

    ``add`` lists operations to introduce (an operation spec whose name a
    replica already has *replaces* that operation in place — a signature
    change); ``remove`` lists operation names to retire; ``successors``
    maps a retired operation to the one a rebinding client should call
    instead (how new stubs encode "``echo`` became ``echo_v2``").
    """

    add: tuple["OperationSpec", ...] = ()
    remove: tuple[str, ...] = ()
    successors: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.add and not self.remove:
            raise RolloutError("an InterfaceUpgrade must add or remove operations")


def upgrade(
    add: Iterable["OperationSpec"] = (),
    remove: Iterable[str] = (),
    successors: Mapping[str, str] | None = None,
) -> InterfaceUpgrade:
    """Describe an interface upgrade (`rolling`/`canary` helper)."""
    return InterfaceUpgrade(tuple(add), tuple(remove), dict(successors or {}))


@dataclass
class WaveReport:
    """One upgrade wave: which replicas, when, and what actually changed."""

    index: int
    #: Immutable indexes of the replicas this wave upgraded.
    replicas: tuple[int, ...]
    started_at: float
    #: Virtual time the wave's publications completed (None while in flight).
    published_at: float | None = None
    #: Typed old→new delta per upgraded replica, classified by the diff
    #: engine from the actually-published documents.
    deltas: tuple[InterfaceDelta, ...] = ()

    @property
    def duration(self) -> float | None:
        """Edit-to-published seconds for this wave (None while in flight)."""
        if self.published_at is None:
            return None
        return self.published_at - self.started_at


@dataclass
class RolloutReport:
    """Everything one rollout did and what the fleet observed meanwhile."""

    service: str
    strategy: str
    started_at: float
    finished_at: float | None = None
    aborted: bool = False
    rolled_back: bool = False
    waves: list[WaveReport] = field(default_factory=list)
    #: Replicas found crashed at their wave and upgraded later, on resume.
    deferred_resumes: int = 0
    #: Calls completed against the service while the rollout was active.
    calls_during: int = 0
    #: §5.7 stale faults observed against the service during the rollout.
    stale_faults_during: int = 0
    #: Client rebinds (stub refresh after a stale fault) during the rollout.
    rebinds_during: int = 0

    @property
    def completed(self) -> bool:
        """True once the rollout reached a terminal state inside a run."""
        return self.finished_at is not None

    @property
    def duration(self) -> float | None:
        """First-wave-start to terminal-state seconds (None while active)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def wave_durations(self) -> tuple[float, ...]:
        """Edit-to-published duration of every completed wave."""
        return tuple(
            wave.duration for wave in self.waves if wave.duration is not None
        )

    @property
    def classification(self) -> str:
        """``breaking`` if any wave's published delta was; else compatible."""
        deltas = [delta for wave in self.waves for delta in wave.deltas]
        if any(not delta.compatible for delta in deltas):
            return CLASS_BREAKING
        if any(not delta.empty for delta in deltas):
            return CLASS_COMPATIBLE
        return CLASS_IDENTICAL

    @property
    def stale_fault_rate(self) -> float:
        """Stale faults per completed call inside the rollout window."""
        if self.calls_during == 0:
            return 0.0
        return self.stale_faults_during / self.calls_during


@dataclass(frozen=True)
class _CapturedOperation:
    """A removed operation, captured so an abort can restore it exactly."""

    name: str
    parameters: tuple
    return_type: Any
    body: Any


class RolloutController:
    """Drive one upgrade across a service's replicas, wave by wave."""

    def __init__(
        self,
        runtime: "ScenarioRuntime",
        service: str,
        change: InterfaceUpgrade,
        strategy: str = STRATEGY_ROLLING,
        batch_size: int = 1,
        drain: float = 0.0,
        fraction: float = 0.25,
        promote_after: float = 0.5,
        retry_interval: float = 0.05,
    ) -> None:
        if batch_size < 1:
            raise RolloutError("batch_size must be at least 1")
        if retry_interval <= 0:
            raise RolloutError("retry_interval must be positive")
        self.runtime = runtime
        self.scheduler = runtime.world.scheduler
        self.entry: "ServiceEntry" = runtime.registry.lookup(service)
        self.upgrade = change
        self.strategy = strategy
        self.drain = drain
        self.retry_interval = retry_interval
        replicas = list(self.entry.replicas)
        if strategy == STRATEGY_CANARY:
            canary_count = min(len(replicas), max(1, round(fraction * len(replicas))))
            self._queue = [replicas[:canary_count]]
            if replicas[canary_count:]:
                self._queue.append(replicas[canary_count:])
            self.drain = promote_after
        else:
            self._queue = [
                replicas[start : start + batch_size]
                for start in range(0, len(replicas), batch_size)
            ]
        #: Wave replicas found crashed, to be upgraded when they restart.
        self._deferred: list["Replica"] = []
        #: Per-replica inverse-edit log, applied in reverse on rollback.
        self._rollback_log: dict[int, list[tuple[str, Any]]] = {}
        self._abort_requested = False
        #: True while a wave's publication is in flight on the scheduler.
        self._busy = False
        self.state = STATE_RUNNING
        self._epoch = runtime.run_epoch
        self.report = RolloutReport(
            service=self.entry.name,
            strategy=strategy,
            started_at=self.scheduler.now,
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "RolloutController":
        """Arm version-aware routing and begin the first wave."""
        entry = self.entry
        existing = entry.active_rollout
        if existing is not None and existing._stale():
            existing = entry.active_rollout  # the stale controller detached
        if existing is not None:
            raise RolloutError(
                f"service {entry.name!r} already has an active rollout"
            )
        entry.active_rollout = self
        entry.rollout_history.append(self.report)
        entry.version_routing = True
        for old_name, new_name in self.upgrade.successors.items():
            entry.operation_successors[old_name] = new_name
        self._begin_wave()
        return self

    def abort(self) -> None:
        """Stop the rollout; already-upgraded replicas roll back."""
        if self.state != STATE_RUNNING:
            return
        self._abort_requested = True
        if not self._busy:
            self._rollback()

    # -- fleet-driver hooks (rollout-window observability) --------------------

    def note_call(self, outcome: str) -> None:
        """Count one completed call against the service while active."""
        if self._stale() or self.state in (STATE_COMPLETED, STATE_ABORTED):
            return
        self.report.calls_during += 1
        if outcome == "stale":
            self.report.stale_faults_during += 1

    def note_rebind(self) -> None:
        """Count one client rebind while active."""
        if self._stale() or self.state in (STATE_COMPLETED, STATE_ABORTED):
            return
        self.report.rebinds_during += 1

    # -- the wave machine -----------------------------------------------------

    def _stale(self) -> bool:
        """True once a later run() started: this rollout's window is over.

        A stale controller also detaches itself from the entry, so a
        rollout cut off by a run deadline neither keeps mutating its
        (already returned) report through the driver hooks nor blocks a
        later run from starting a fresh rollout on the service.
        """
        if self.runtime.run_epoch == self._epoch:
            return False
        if self.entry.active_rollout is self:
            self.entry.active_rollout = None
        return True

    def _begin_wave(self) -> None:
        if self._stale() or self.state != STATE_RUNNING:
            return
        if self._abort_requested:
            self._rollback()
            return
        targets: list["Replica"] = []
        # Deferred replicas whose node restarted resume ahead of new waves,
        # so a crash never reorders the index-order upgrade sequence for
        # replicas that come back in time.
        still_down: list["Replica"] = []
        for replica in self._deferred:
            if replica.alive:
                targets.append(replica)
                self.report.deferred_resumes += 1
            else:
                still_down.append(replica)
        self._deferred = still_down
        if not targets and self._queue:
            for replica in self._queue.pop(0):
                if replica.alive:
                    targets.append(replica)
                else:
                    self._deferred.append(replica)
        if not targets:
            if self._queue or self._deferred:
                # Everything reachable right now is crashed: poll until a
                # restart makes progress possible (deterministic resume).
                self.scheduler.schedule(
                    self.retry_interval, self._begin_wave, label="rollout resume poll"
                )
                return
            self._finish(STATE_COMPLETED)
            return

        wave = WaveReport(
            index=len(self.report.waves),
            replicas=tuple(replica.index for replica in targets),
            started_at=self.scheduler.now,
        )
        self.report.waves.append(wave)
        if _obs_hooks.ACTIVE is not None:
            _obs_hooks.ACTIVE.instant(
                "rollout.wave",
                service=self.entry.name,
                wave=wave.index,
                replicas=wave.replicas,
            )
        before = {
            replica.index: (
                replica.publisher.published_document,
                replica.publisher.published_description,
            )
            for replica in targets
        }
        for replica in targets:
            self._apply_upgrade(replica)
        self._busy = True
        # The forced publications above complete after each node's generation
        # cost; this event is scheduled after them at the same instant, so
        # the wave check observes the freshly published documents.
        cost = max(
            replica.node.sde.config.generation_cost for replica in targets
        )
        self.scheduler.schedule(
            cost, self._wave_published, wave, tuple(targets), before,
            label="rollout wave publication",
        )

    def _wave_published(
        self,
        wave: WaveReport,
        targets: tuple["Replica", ...],
        before: dict[int, tuple[str, Any]],
    ) -> None:
        self._busy = False
        if self._stale() or self.state != STATE_RUNNING:
            return
        wave.published_at = self.scheduler.now
        wave.deltas = tuple(
            self._classify(replica, *before[replica.index]) for replica in targets
        )
        if self._abort_requested:
            self._rollback()
            return
        if self._queue or self._deferred:
            self.scheduler.schedule(
                max(self.drain, 0.0), self._begin_wave, label="rollout drain"
            )
            return
        self._finish(STATE_COMPLETED)

    def _classify(
        self, replica: "Replica", old_document: str, old_description: Any
    ) -> InterfaceDelta:
        """Diff what the replica actually published, uniformly per format."""
        publisher = replica.publisher
        try:
            return diff_documents(
                old_document, publisher.published_document, self.entry.technology
            )
        except EvolveError:
            # No registered parser for a third technology's document format:
            # fall back to the typed descriptions both sides carry anyway.
            return diff_descriptions(old_description, publisher.published_description)

    # -- applying and reverting the upgrade -----------------------------------

    def _apply_upgrade(self, replica: "Replica") -> None:
        dynamic_class = replica.managed.dynamic_class
        log = self._rollback_log.setdefault(replica.index, [])
        for name in self.upgrade.remove:
            if dynamic_class.has_method(name):
                log.append(("removed", self._capture(dynamic_class.method(name))))
                dynamic_class.remove_method(name)
        for spec in self.upgrade.add:
            if dynamic_class.has_method(spec.name):
                # Same name, new signature: an in-place replacement.
                log.append(("removed", self._capture(dynamic_class.method(spec.name))))
                dynamic_class.remove_method(spec.name)
            dynamic_class.add_method(
                spec.name,
                spec.parameter_objects(),
                spec.return_type,
                body=spec.body,
                distributed=True,
            )
            log.append(("added", spec.name))
        replica.node.manager_interface.force_publication(replica.class_name)

    @staticmethod
    def _capture(method: Any) -> _CapturedOperation:
        return _CapturedOperation(
            name=method.name,
            parameters=tuple(method.parameters),
            return_type=method.return_type,
            body=method.body,
        )

    def _rollback(self) -> None:
        self.state = STATE_ROLLING_BACK
        self.report.aborted = True
        touched: list["Replica"] = [
            replica
            for replica in self.entry.replicas
            if self._rollback_log.get(replica.index)
        ]
        for replica in touched:
            dynamic_class = replica.managed.dynamic_class
            for kind, payload in reversed(self._rollback_log[replica.index]):
                if kind == "added":
                    if dynamic_class.has_method(payload):
                        dynamic_class.remove_method(payload)
                else:
                    captured: _CapturedOperation = payload
                    if not dynamic_class.has_method(captured.name):
                        dynamic_class.add_method(
                            captured.name,
                            captured.parameters,
                            captured.return_type,
                            body=captured.body,
                            distributed=True,
                        )
            replica.node.manager_interface.force_publication(replica.class_name)
        # The retired names are live again: stop redirecting to successors
        # this rollout never delivered, and *invert* the mapping so clients
        # that already crossed to the new interface walk back to the old
        # operation on their next rebind instead of being stranded.
        for old_name, new_name in self.upgrade.successors.items():
            if self.entry.operation_successors.get(old_name) == new_name:
                del self.entry.operation_successors[old_name]
            self.entry.operation_successors[new_name] = old_name
        if touched:
            cost = max(
                replica.node.sde.config.generation_cost for replica in touched
            )
            self.scheduler.schedule(
                cost, self._finish, STATE_ABORTED, label="rollout rollback publication"
            )
        else:
            self._finish(STATE_ABORTED)

    def _finish(self, state: str) -> None:
        if self._stale() and self.report.finished_at is None:
            # A later run started before this one's terminal event fired;
            # leave the report visibly unfinished for that window.
            return
        self.state = state
        if state == STATE_ABORTED:
            self.report.rolled_back = bool(
                any(self._rollback_log.get(r.index) for r in self.entry.replicas)
            )
        self.report.finished_at = self.scheduler.now
        if self.entry.active_rollout is self:
            self.entry.active_rollout = None
        if _obs_hooks.ACTIVE is not None:
            _obs_hooks.ACTIVE.instant(
                "rollout.finished", service=self.entry.name, state=state
            )

    def __repr__(self) -> str:
        return (
            f"RolloutController({self.entry.name!r}, {self.strategy}, "
            f"state={self.state}, waves={len(self.report.waves)})"
        )
