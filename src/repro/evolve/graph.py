"""Per-service version graphs and the client-side binding state.

A replicated service evolves *per replica*: each replica's publisher owns a
monotone version counter, and a rolling upgrade deliberately lets replicas
diverge for a while (some already publish v+1 while others still serve v).
:class:`VersionGraph` records that history — every publication of every
replica, with its full :class:`~repro.interface.InterfaceDescription` — so
the registry can answer typed questions about it:

* what did replica *i* publish as version *v*?
* what changed between two versions of a replica
  (:meth:`VersionGraph.delta`, computed by the diff engine)?
* was any step of a replica's history breaking (:meth:`VersionGraph.edges`)?

:class:`ClientBinding` is the per-client half: which description the
client's stubs were compiled against per replica, and the highest published
version the client has *observed* (the §6 recency watermark).  The
version-aware selection in :class:`~repro.cluster.registry.ServiceEntry`
consults it to keep each client on replicas that are both **fresh** (never
older than anything the client already saw — the §6 guarantee, enforced by
routing) and **compatible** (the client's stubs still match — breaking
versions are avoided while a compatible replica remains, and otherwise
surface as an explicit stale-fault + rebind, never a silently wrong
answer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.evolve.diff import InterfaceDelta, diff_descriptions, is_compatible
from repro.interface import InterfaceDescription

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.registry import Replica


@dataclass(frozen=True)
class PublishedVersion:
    """One node of the version graph: a publication by one replica."""

    replica_index: int
    version: int
    description: InterfaceDescription
    time: float


class VersionGraph:
    """Every publication of every replica of one service, queryable."""

    def __init__(self, service: str = "") -> None:
        self.service = service
        #: replica index -> version -> node, in publication order per replica.
        self._nodes: dict[int, dict[int, PublishedVersion]] = {}

    def record(
        self,
        replica_index: int,
        version: int,
        description: InterfaceDescription,
        time: float,
    ) -> PublishedVersion:
        """Record one publication (idempotent per ``(replica, version)``)."""
        per_replica = self._nodes.setdefault(replica_index, {})
        node = per_replica.get(version)
        if node is None:
            node = PublishedVersion(replica_index, version, description, time)
            per_replica[version] = node
        return node

    # -- queries ------------------------------------------------------------

    def replicas(self) -> tuple[int, ...]:
        """The replica indexes with recorded publications, sorted."""
        return tuple(sorted(self._nodes))

    def versions(self, replica_index: int) -> tuple[int, ...]:
        """The versions replica ``replica_index`` has published, sorted."""
        return tuple(sorted(self._nodes.get(replica_index, ())))

    def description(self, replica_index: int, version: int) -> InterfaceDescription:
        """The description replica ``replica_index`` published as ``version``."""
        node = self._nodes.get(replica_index, {}).get(version)
        if node is None:
            raise KeyError(
                f"no recorded publication v{version} of replica {replica_index}"
                + (f" ({self.service})" if self.service else "")
            )
        return node.description

    def latest(self, replica_index: int) -> PublishedVersion | None:
        """The newest recorded publication of a replica, if any."""
        per_replica = self._nodes.get(replica_index)
        if not per_replica:
            return None
        return per_replica[max(per_replica)]

    @property
    def max_version(self) -> int:
        """The highest version any replica has published (0 when empty)."""
        return max(
            (max(per_replica) for per_replica in self._nodes.values() if per_replica),
            default=0,
        )

    # -- typed deltas (the diff engine over the graph) -----------------------

    def delta(
        self, replica_index: int, old_version: int, new_version: int
    ) -> InterfaceDelta:
        """The typed delta between two recorded versions of one replica."""
        return diff_descriptions(
            self.description(replica_index, old_version),
            self.description(replica_index, new_version),
        )

    def edges(self, replica_index: int) -> tuple[InterfaceDelta, ...]:
        """Deltas between consecutive recorded versions of one replica."""
        versions = self.versions(replica_index)
        return tuple(
            self.delta(replica_index, older, newer)
            for older, newer in zip(versions, versions[1:])
        )

    def __repr__(self) -> str:
        return (
            f"VersionGraph({self.service!r}, replicas={len(self._nodes)}, "
            f"max_version={self.max_version})"
        )


class ClientBinding:
    """One client's stub-binding state, consulted by version-aware routing."""

    __slots__ = ("bound", "seen_version", "_compat_cache")

    def __init__(self) -> None:
        #: replica index -> the description the client's stubs were built from.
        self.bound: dict[int, InterfaceDescription] = {}
        #: Highest published interface version this client has observed
        #: (successful replies and §5.7 stale faults both count — the stall
        #: protocol guarantees the published interface is current at either).
        self.seen_version: int = -1
        #: (bound, current) -> compatibility memo per replica; descriptions
        #: are immutable values replaced wholesale on publish, so identity
        #: comparison is a sound cache key.
        self._compat_cache: dict[int, tuple[object, object, bool]] = {}

    def bind(self, replica_index: int, description: InterfaceDescription) -> None:
        """Record (re)binding this client's stubs for one replica."""
        self.bound[replica_index] = description
        self._compat_cache.pop(replica_index, None)

    def observe(self, version: int) -> None:
        """Raise the §6 recency watermark to ``version`` if it is newer."""
        if version > self.seen_version:
            self.seen_version = version

    def fresh(self, replica: "Replica") -> bool:
        """True when the replica publishes at least the watermark version."""
        return replica.publisher.version >= self.seen_version

    def compatible_with(self, replica: "Replica") -> bool:
        """True when this client's stubs still match the replica's interface."""
        bound = self.bound.get(replica.index)
        if bound is None:
            return True
        current = replica.publisher.published_description
        if current is None:
            return True
        cached = self._compat_cache.get(replica.index)
        if cached is not None and cached[0] is bound and cached[1] is current:
            return cached[2]
        answer = is_compatible(bound, current)
        self._compat_cache[replica.index] = (bound, current, answer)
        return answer

    def __repr__(self) -> str:
        return (
            f"ClientBinding(bound={sorted(self.bound)}, "
            f"seen_version={self.seen_version})"
        )
