"""Rollout timeline actions for the declarative Scenario API.

These compose with :meth:`repro.cluster.Scenario.at` exactly like the
developer actions (``edit`` / ``publish`` / ``churn``) and the fault
actions (``crash`` / ``partition`` / ...)::

    change = upgrade(add=[op("echo_v2", (("m", STRING),), STRING, body=...)],
                     remove=["echo"], successors={"echo": "echo_v2"})
    Scenario()
    .servers(4)
    .service("Echo", [echo], replicas=4)
    .clients(256, service="Echo", calls=8)
    .at(0.05, rolling("Echo", change, batch_size=1, drain=0.03))
    .run()

Each helper returns an ``action(runtime)`` callable; a
:class:`~repro.evolve.rollout.RolloutController` does the actual work and
arms version-aware routing on the service the moment the rollout starts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.evolve.rollout import (
    STRATEGY_CANARY,
    STRATEGY_ROLLING,
    InterfaceUpgrade,
    RolloutController,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.scenario import ScenarioRuntime

Action = Callable[["ScenarioRuntime"], None]


def rolling(
    service: str,
    change: InterfaceUpgrade,
    batch_size: int = 1,
    drain: float = 0.0,
    retry_interval: float = 0.05,
) -> Action:
    """Timeline action: roll ``change`` across the replicas in batches.

    Replicas upgrade in immutable-index order, ``batch_size`` at a time,
    with ``drain`` virtual seconds between a wave's publication completing
    and the next wave's edits.  Crashed replicas are deferred and upgraded
    when they restart (polled every ``retry_interval`` seconds).
    """

    def action(runtime: "ScenarioRuntime") -> None:
        RolloutController(
            runtime,
            service,
            change,
            strategy=STRATEGY_ROLLING,
            batch_size=batch_size,
            drain=drain,
            retry_interval=retry_interval,
        ).start()

    action.__trace_event__ = {
        "kind": "rolling",
        "service": service,
        "change": change,
        "batch_size": batch_size,
        "drain": drain,
        "retry_interval": retry_interval,
    }
    return action


def canary(
    service: str,
    change: InterfaceUpgrade,
    fraction: float = 0.25,
    promote_after: float = 0.5,
    retry_interval: float = 0.05,
) -> Action:
    """Timeline action: upgrade a canary fraction first, promote later.

    The first ``max(1, round(fraction * replicas))`` replicas (index order)
    take the upgrade immediately; after ``promote_after`` virtual seconds
    without an :func:`abort_rollout`, the remaining replicas follow.
    """

    def action(runtime: "ScenarioRuntime") -> None:
        RolloutController(
            runtime,
            service,
            change,
            strategy=STRATEGY_CANARY,
            fraction=fraction,
            promote_after=promote_after,
            retry_interval=retry_interval,
        ).start()

    action.__trace_event__ = {
        "kind": "canary",
        "service": service,
        "change": change,
        "fraction": fraction,
        "promote_after": promote_after,
        "retry_interval": retry_interval,
    }
    return action


def abort_rollout(service: str) -> Action:
    """Timeline action: abort the service's active rollout (and roll back).

    Pending waves are cancelled and every already-upgraded replica
    republishes its pre-upgrade interface.  A no-op when no rollout is
    active (e.g. it already completed).
    """

    def action(runtime: "ScenarioRuntime") -> None:
        controller = runtime.registry.lookup(service).active_rollout
        if controller is not None:
            controller.abort()

    action.__trace_event__ = {"kind": "abort_rollout", "service": service}
    return action
