"""Deterministic multi-client workload driver (legacy single-service shim).

The paper's evaluation runs one client laptop against one SDE server; the
north-star of this reproduction is production-scale traffic.  This module
drives **N concurrent clients** — each its own simulated host with a
persistent transport connection — against one managed SDE server class, for
both middlewares, on the single-threaded discrete-event scheduler.  Clients
are callback-driven (they use the transport layer's asynchronous request
path rather than blocking the scheduler), so all N request streams genuinely
interleave, and because the scheduler dispatches equal-time events in
insertion order the whole run is deterministic: the same spec always produces
the same per-call round-trip times.

A workload can also script mid-run developer actions (edit the server class,
force a publication) and direct a fraction of calls at a non-existent
operation, which exercises the §5.7 stall queue under load — the report
captures how deep the queue got and how the stalled calls drained.

.. deprecated:: 1.1
    The workload driver is now a thin adapter over the generic cluster
    fleet driver (:class:`repro.cluster.FleetDriver`): one service, one
    replica, one protocol.  It keeps its full signature for existing call
    sites; new experiments should describe their fleet with the declarative
    :class:`repro.cluster.Scenario` API instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.cluster.driver import ClientPlan, FleetDriver
from repro.cluster.registry import RoundRobinPolicy, ServiceEntry, ServiceRegistry
from repro.cluster.report import ClientReport, ClusterReport
from repro.net.simnet import Host

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.testbed import LiveDevelopmentTestbed

TECHNOLOGY_SOAP = "soap"
TECHNOLOGY_CORBA = "corba"

#: Legacy name: per-client results are the cluster layer's client reports.
ClientResult = ClientReport


@dataclass(frozen=True)
class WorkloadSpec:
    """What the fleet should do.

    ``stale_every`` directs every *k*-th call of each client (1-based call
    numbers divisible by *k*) at ``stale_operation`` — an operation name the
    server does not implement — which, with reactive publication enabled and
    an unpublished edit pending, triggers the §5.7 stall protocol.
    """

    technology: str = TECHNOLOGY_SOAP
    clients: int = 4
    calls_per_client: int = 10
    operation: str = "echo"
    arguments: tuple[Any, ...] = ("ping",)
    #: Virtual seconds a client waits between receiving a reply and issuing
    #: its next call.
    think_time: float = 0.0
    #: Per-client start offset: client *i* starts at ``i * stagger``.
    stagger: float = 0.0
    stale_every: int | None = None
    stale_operation: str = "no_such_operation"
    #: ``(at_offset, action)`` pairs run at workload-relative virtual times —
    #: scripted developer activity (class edits, forced publications).
    scripted_events: tuple[tuple[float, Callable[[], None]], ...] = ()


@dataclass
class WorkloadReport:
    """Aggregate outcome of one multi-client run."""

    technology: str
    client_count: int
    calls_per_client: int
    started_at: float
    finished_at: float
    clients: list[ClientResult]
    #: Server-side §5.7 numbers for the driven class.
    stalled_calls: int = 0
    queued_while_stalled: int = 0
    max_stall_queue_depth: int = 0
    #: Server-endpoint accounting for this run (connections this fleet
    #: opened, replies sent to it) — earlier runs on the same testbed are
    #: excluded.
    server_connections: int = 0
    server_replies_sent: int = 0
    #: Bounded-CPU accounting (zeroes when the testbed runs without a
    #: ``server_cores`` limit): CPU-seconds charged, seconds spent queued
    #: for a core, and the longest single wait, for this run only.
    server_cores: int | None = None
    server_busy_seconds: float = 0.0
    server_waited_seconds: float = 0.0
    server_max_core_wait: float = 0.0
    #: Scheduler events dispatched inside the measured window.
    events_dispatched: int = 0

    @property
    def duration(self) -> float:
        """Virtual seconds from first call issued to last reply received."""
        return self.finished_at - self.started_at

    @property
    def total_calls(self) -> int:
        """Calls completed across the whole fleet."""
        return sum(client.calls for client in self.clients)

    @property
    def total_successes(self) -> int:
        """Successful calls across the whole fleet."""
        return sum(client.successes for client in self.clients)

    @property
    def total_stale_faults(self) -> int:
        """Stale-method ("Non existent Method") faults across the fleet."""
        return sum(client.stale_faults for client in self.clients)

    @property
    def all_rtts(self) -> list[float]:
        """Every observed RTT, grouped by client in start order."""
        return [rtt for client in self.clients for rtt in client.rtts]

    @property
    def mean_rtt(self) -> float:
        """Fleet-wide mean round-trip time."""
        rtts = self.all_rtts
        return sum(rtts) / len(rtts) if rtts else 0.0

    @property
    def max_rtt(self) -> float:
        """Fleet-wide worst round-trip time."""
        rtts = self.all_rtts
        return max(rtts) if rtts else 0.0

    @property
    def throughput(self) -> float:
        """Completed calls per virtual second."""
        return self.total_calls / self.duration if self.duration > 0 else 0.0


class MultiClientWorkload:
    """Run N concurrent clients against one managed SDE server class.

    A thin adapter: it registers the managed class as a one-replica service
    and hands the fleet to the generic cluster driver.
    """

    def __init__(
        self,
        testbed: "LiveDevelopmentTestbed",
        class_name: str,
        spec: WorkloadSpec,
        client_hosts: Iterable[Host] | None = None,
    ) -> None:
        warnings.warn(
            "repro.workload.MultiClientWorkload is deprecated; declare the "
            "fleet with repro.cluster.Scenario instead (byte-identical results)",
            DeprecationWarning,
            stacklevel=2,
        )
        if spec.technology not in (TECHNOLOGY_SOAP, TECHNOLOGY_CORBA):
            raise ValueError(f"unknown technology {spec.technology!r}")
        self.testbed = testbed
        self.class_name = class_name
        self.spec = spec
        self.server = testbed.sde.managed_server(class_name)
        hosts = (
            tuple(client_hosts)
            if client_hosts is not None
            else testbed.create_client_fleet(spec.clients)
        )
        if len(hosts) != spec.clients:
            raise ValueError(f"expected {spec.clients} client hosts, got {len(hosts)}")

        self.registry = ServiceRegistry()
        entry = ServiceEntry(class_name, spec.technology, RoundRobinPolicy())
        entry.add_replica(testbed.server_node, self.server)
        self.registry.register(entry)
        plans = [
            ClientPlan(
                index=index,
                host=host,
                protocol=spec.technology,
                service=class_name,
                calls=spec.calls_per_client,
                operation=spec.operation,
                arguments=spec.arguments,
                think_time=spec.think_time,
                start_offset=index * spec.stagger,
                stale_every=spec.stale_every,
                stale_operation=spec.stale_operation,
            )
            for index, host in enumerate(hosts)
        ]
        self.driver = FleetDriver(
            testbed.scheduler,
            self.registry,
            plans,
            scripted_events=spec.scripted_events,
            description=f"workload against {class_name}",
        )

    @property
    def scheduler(self):
        """The testbed's event scheduler."""
        return self.testbed.scheduler

    @property
    def publisher(self):
        """The driven server's interface publisher."""
        return self.server.publisher

    @property
    def handler(self):
        """The driven server's call handler."""
        return self.server.call_handler

    @property
    def clients(self):
        """The fleet's clients, in start order."""
        return self.driver.clients

    def run(self) -> WorkloadReport:
        """Prepare the fleet, run it to completion, and report."""
        report = self.driver.run()
        return _project(report, self.spec)


def _project(report: ClusterReport, spec: WorkloadSpec) -> WorkloadReport:
    """Project a one-service cluster report onto the legacy workload shape."""
    replica = report.services[0].replicas[0]
    node = report.nodes[0]
    return WorkloadReport(
        technology=spec.technology,
        client_count=spec.clients,
        calls_per_client=spec.calls_per_client,
        started_at=report.started_at,
        finished_at=report.finished_at,
        clients=list(report.clients),
        stalled_calls=replica.stalled_calls,
        queued_while_stalled=replica.queued_while_stalled,
        max_stall_queue_depth=replica.max_stall_queue_depth,
        server_connections=replica.connections,
        server_replies_sent=replica.replies_sent,
        server_cores=node.cores,
        server_busy_seconds=node.busy_seconds,
        server_waited_seconds=node.waited_seconds,
        server_max_core_wait=node.max_core_wait,
        events_dispatched=report.events_dispatched,
    )


def run_workload(
    testbed: "LiveDevelopmentTestbed", class_name: str, spec: WorkloadSpec
) -> WorkloadReport:
    """Convenience wrapper: build and run a workload in one call."""
    return MultiClientWorkload(testbed, class_name, spec).run()
