"""Deterministic multi-client workload driver.

The paper's evaluation runs one client laptop against one SDE server; the
north-star of this reproduction is production-scale traffic.  This module
drives **N concurrent clients** — each its own simulated host with a
persistent transport connection — against one managed SDE server class, for
both middlewares, on the single-threaded discrete-event scheduler.  Clients
are callback-driven (they use the transport layer's asynchronous request
path rather than blocking the scheduler), so all N request streams genuinely
interleave, and because the scheduler dispatches equal-time events in
insertion order the whole run is deterministic: the same spec always produces
the same per-call round-trip times.

A workload can also script mid-run developer actions (edit the server class,
force a publication) and direct a fraction of calls at a non-existent
operation, which exercises the §5.7 stall queue under load — the report
captures how deep the queue got and how the stalled calls drained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.core.sde.corba_handler import EXC_NON_EXISTENT_METHOD, EXC_SERVER_NOT_INITIALIZED
from repro.corba.orb import ClientOrb, RemoteObjectReference
from repro.errors import CorbaUserException, MiddlewareError
from repro.net.http import HttpClient
from repro.net.simnet import Host
from repro.net.transport import Deferred
from repro.soap.envelope import SoapRequest, SoapResponse
from repro.soap.wsdl import parse_wsdl
from repro.corba.idl import parse_idl

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.testbed import LiveDevelopmentTestbed

TECHNOLOGY_SOAP = "soap"
TECHNOLOGY_CORBA = "corba"


@dataclass(frozen=True)
class WorkloadSpec:
    """What the fleet should do.

    ``stale_every`` directs every *k*-th call of each client (1-based call
    numbers divisible by *k*) at ``stale_operation`` — an operation name the
    server does not implement — which, with reactive publication enabled and
    an unpublished edit pending, triggers the §5.7 stall protocol.
    """

    technology: str = TECHNOLOGY_SOAP
    clients: int = 4
    calls_per_client: int = 10
    operation: str = "echo"
    arguments: tuple[Any, ...] = ("ping",)
    #: Virtual seconds a client waits between receiving a reply and issuing
    #: its next call.
    think_time: float = 0.0
    #: Per-client start offset: client *i* starts at ``i * stagger``.
    stagger: float = 0.0
    stale_every: int | None = None
    stale_operation: str = "no_such_operation"
    #: ``(at_offset, action)`` pairs run at workload-relative virtual times —
    #: scripted developer activity (class edits, forced publications).
    scripted_events: tuple[tuple[float, Callable[[], None]], ...] = ()


@dataclass
class ClientResult:
    """What one workload client observed."""

    name: str
    rtts: list[float] = field(default_factory=list)
    successes: int = 0
    stale_faults: int = 0
    not_initialized_faults: int = 0
    other_faults: int = 0

    @property
    def calls(self) -> int:
        """Calls this client completed (successes plus faults)."""
        return len(self.rtts)

    @property
    def mean_rtt(self) -> float:
        """Mean round-trip time over this client's calls."""
        return sum(self.rtts) / len(self.rtts) if self.rtts else 0.0

    @property
    def max_rtt(self) -> float:
        """Worst round-trip time this client saw."""
        return max(self.rtts) if self.rtts else 0.0


@dataclass
class WorkloadReport:
    """Aggregate outcome of one multi-client run."""

    technology: str
    client_count: int
    calls_per_client: int
    started_at: float
    finished_at: float
    clients: list[ClientResult]
    #: Server-side §5.7 numbers for the driven class.
    stalled_calls: int = 0
    queued_while_stalled: int = 0
    max_stall_queue_depth: int = 0
    #: Server-endpoint accounting for this run (connections this fleet
    #: opened, replies sent to it) — earlier runs on the same testbed are
    #: excluded.
    server_connections: int = 0
    server_replies_sent: int = 0
    #: Bounded-CPU accounting (zeroes when the testbed runs without a
    #: ``server_cores`` limit): CPU-seconds charged, seconds spent queued
    #: for a core, and the longest single wait, for this run only.
    server_cores: int | None = None
    server_busy_seconds: float = 0.0
    server_waited_seconds: float = 0.0
    server_max_core_wait: float = 0.0

    @property
    def duration(self) -> float:
        """Virtual seconds from first call issued to last reply received."""
        return self.finished_at - self.started_at

    @property
    def total_calls(self) -> int:
        """Calls completed across the whole fleet."""
        return sum(client.calls for client in self.clients)

    @property
    def total_successes(self) -> int:
        """Successful calls across the whole fleet."""
        return sum(client.successes for client in self.clients)

    @property
    def total_stale_faults(self) -> int:
        """Stale-method ("Non existent Method") faults across the fleet."""
        return sum(client.stale_faults for client in self.clients)

    @property
    def all_rtts(self) -> list[float]:
        """Every observed RTT, grouped by client in start order."""
        return [rtt for client in self.clients for rtt in client.rtts]

    @property
    def mean_rtt(self) -> float:
        """Fleet-wide mean round-trip time."""
        rtts = self.all_rtts
        return sum(rtts) / len(rtts) if rtts else 0.0

    @property
    def max_rtt(self) -> float:
        """Fleet-wide worst round-trip time."""
        rtts = self.all_rtts
        return max(rtts) if rtts else 0.0

    @property
    def throughput(self) -> float:
        """Completed calls per virtual second."""
        return self.total_calls / self.duration if self.duration > 0 else 0.0


class _WorkloadClient:
    """One callback-driven client of the fleet."""

    def __init__(self, driver: "MultiClientWorkload", index: int, host: Host) -> None:
        self.driver = driver
        self.index = index
        self.host = host
        self.result = ClientResult(name=host.name)
        self.http = HttpClient(host, name=f"wl-http-{index}")
        self.orb: ClientOrb | None = None
        self.remote: RemoteObjectReference | None = None
        self.description = None
        self.registry = None
        self._calls_issued = 0

    # -- setup (blocking; runs before the measured window) -------------------

    def prepare(self) -> None:
        """Fetch and parse the published interface documents."""
        publisher = self.driver.publisher
        document = self._fetch(publisher.document_url)
        if self.driver.spec.technology == TECHNOLOGY_SOAP:
            self.description = parse_wsdl(document)
            self.registry = self.description.type_registry()
        else:
            self.description = parse_idl(document)
            self.orb = ClientOrb(self.host)
            ior_text = self._fetch(publisher.ior_url)
            self.remote = self.orb.string_to_object(ior_text.strip())

    def _fetch(self, url: str) -> str:
        response = self.http.get(url)
        if not response.ok:
            raise MiddlewareError(f"could not retrieve {url}: HTTP {response.status}")
        return response.body

    # -- the call loop --------------------------------------------------------

    def start(self) -> None:
        """Issue this client's first call."""
        self._next_call()

    def _next_call(self) -> None:
        spec = self.driver.spec
        if self._calls_issued >= spec.calls_per_client:
            self.driver._client_finished()
            return
        self._calls_issued += 1
        call_number = self._calls_issued
        operation, arguments = spec.operation, spec.arguments
        if spec.stale_every and call_number % spec.stale_every == 0:
            operation, arguments = spec.stale_operation, ()
        started = self.driver.scheduler.now
        deferred = self._send(operation, arguments)
        deferred.subscribe(lambda value, error, _delay: self._on_reply(started, value, error))

    def _send(self, operation: str, arguments: tuple[Any, ...]) -> Deferred:
        if self.driver.spec.technology == TECHNOLOGY_CORBA:
            return self.remote.invoke_async(operation, *arguments)
        request = SoapRequest.for_call(
            operation, arguments, namespace=self.description.namespace, registry=self.registry
        )
        wire = self.http.request_async(
            "POST",
            self.description.endpoint_url,
            body=request.to_xml(),
            headers={"Content-Type": "text/xml; charset=utf-8"},
        )
        return wire.transform(self._decode_soap)

    def _decode_soap(self, response, error):
        if error is not None:
            raise error
        if not response.ok:
            raise MiddlewareError(f"SOAP endpoint returned HTTP {response.status}")
        return SoapResponse.from_xml(response.body, self.registry)

    def _on_reply(self, started: float, value: Any, error: BaseException | None) -> None:
        self.result.rtts.append(self.driver.scheduler.now - started)
        self._classify(value, error)
        think = self.driver.spec.think_time
        if think > 0:
            scheduler = self.driver.scheduler
            scheduler.schedule(
                think,
                self._next_call,
                label=(
                    f"{self.result.name} think time" if scheduler.tracing else "think time"
                ),
            )
        else:
            self._next_call()

    def _classify(self, value: Any, error: BaseException | None) -> None:
        result = self.result
        if self.driver.spec.technology == TECHNOLOGY_CORBA:
            if error is None:
                result.successes += 1
            elif isinstance(error, CorbaUserException) and error.type_name == EXC_NON_EXISTENT_METHOD:
                result.stale_faults += 1
            elif isinstance(error, CorbaUserException) and error.type_name == EXC_SERVER_NOT_INITIALIZED:
                result.not_initialized_faults += 1
            else:
                result.other_faults += 1
            return
        if error is not None:
            result.other_faults += 1
            return
        if not value.is_fault:
            result.successes += 1
        elif value.fault.is_non_existent_method:
            result.stale_faults += 1
        elif value.fault.is_server_not_initialized:
            result.not_initialized_faults += 1
        else:
            result.other_faults += 1


class MultiClientWorkload:
    """Run N concurrent clients against one managed SDE server class."""

    def __init__(
        self,
        testbed: "LiveDevelopmentTestbed",
        class_name: str,
        spec: WorkloadSpec,
        client_hosts: Iterable[Host] | None = None,
    ) -> None:
        if spec.technology not in (TECHNOLOGY_SOAP, TECHNOLOGY_CORBA):
            raise ValueError(f"unknown technology {spec.technology!r}")
        self.testbed = testbed
        self.class_name = class_name
        self.spec = spec
        self.server = testbed.sde.managed_server(class_name)
        hosts = (
            tuple(client_hosts)
            if client_hosts is not None
            else testbed.create_client_fleet(spec.clients)
        )
        if len(hosts) != spec.clients:
            raise ValueError(f"expected {spec.clients} client hosts, got {len(hosts)}")
        self.clients = [_WorkloadClient(self, i, host) for i, host in enumerate(hosts)]
        self._finished_clients = 0

    @property
    def scheduler(self):
        """The testbed's event scheduler."""
        return self.testbed.scheduler

    @property
    def publisher(self):
        """The driven server's interface publisher."""
        return self.server.publisher

    @property
    def handler(self):
        """The driven server's call handler."""
        return self.server.call_handler

    def run(self) -> WorkloadReport:
        """Prepare the fleet, run it to completion, and report."""
        for client in self.clients:
            client.prepare()

        stats_before = _snapshot(self.handler.stats)
        endpoint = self._server_endpoint()
        replies_before = endpoint.stats.replies_sent
        connections_before = len(endpoint.connections)
        core = self.testbed.sde.server_core
        core_before = (
            (core.busy_seconds, core.waited_seconds) if core is not None else (0.0, 0.0)
        )
        # max is not delta-able like the counters: measure this run's high
        # water with a clean gauge, then restore the lifetime maximum.
        self.handler.stats.max_stall_queue_depth = 0
        started_at = self.scheduler.now
        for offset, action in self.spec.scripted_events:
            self.scheduler.schedule(offset, action, label="workload scripted event")
        for index, client in enumerate(self.clients):
            self.scheduler.schedule(
                index * self.spec.stagger, client.start, label=f"{client.result.name} start"
            )
        self.scheduler.run_until(
            lambda: self._finished_clients == len(self.clients),
            description=f"workload against {self.class_name}",
        )
        finished_at = self.scheduler.now

        handler_stats = self.handler.stats
        run_max_depth = handler_stats.max_stall_queue_depth
        handler_stats.max_stall_queue_depth = max(
            run_max_depth, stats_before["max_stall_queue_depth"]
        )
        return WorkloadReport(
            technology=self.spec.technology,
            client_count=self.spec.clients,
            calls_per_client=self.spec.calls_per_client,
            started_at=started_at,
            finished_at=finished_at,
            clients=[client.result for client in self.clients],
            stalled_calls=handler_stats.stalled_calls - stats_before["stalled_calls"],
            queued_while_stalled=(
                handler_stats.queued_while_stalled - stats_before["queued_while_stalled"]
            ),
            max_stall_queue_depth=run_max_depth,
            server_connections=len(endpoint.connections) - connections_before,
            server_replies_sent=endpoint.stats.replies_sent - replies_before,
            server_cores=core.cores if core is not None else None,
            server_busy_seconds=(
                core.busy_seconds - core_before[0] if core is not None else 0.0
            ),
            server_waited_seconds=(
                core.waited_seconds - core_before[1] if core is not None else 0.0
            ),
            server_max_core_wait=core.max_queue_delay if core is not None else 0.0,
        )

    def _server_endpoint(self):
        handler = self.handler
        if self.spec.technology == TECHNOLOGY_SOAP:
            return handler.http_server.endpoint
        return handler.orb.endpoint

    def _client_finished(self) -> None:
        self._finished_clients += 1


def _snapshot(stats) -> dict[str, int]:
    return {
        "stalled_calls": stats.stalled_calls,
        "queued_while_stalled": stats.queued_while_stalled,
        "max_stall_queue_depth": stats.max_stall_queue_depth,
    }


def run_workload(
    testbed: "LiveDevelopmentTestbed", class_name: str, spec: WorkloadSpec
) -> WorkloadReport:
    """Convenience wrapper: build and run a workload in one call."""
    return MultiClientWorkload(testbed, class_name, spec).run()
