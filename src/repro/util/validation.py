"""Small argument-validation helpers used across the package.

These helpers keep precondition checks one-liners at call sites while
producing consistent, informative error messages.
"""

from __future__ import annotations

import keyword
import re
from typing import Any

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_type(value: Any, expected: type | tuple[type, ...], name: str) -> None:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        expected_name = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise TypeError(
            f"{name} must be {expected_name}, got {type(value).__name__}"
        )


def require_positive(value: float, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is zero or positive."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def require_identifier(value: str, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is a legal identifier.

    Identifiers are used for dynamic method and field names, WSDL operation
    names, and CORBA-IDL interface members; all of them must be valid in the
    Java-style grammar the paper assumes, which coincides with Python's
    identifier grammar minus keywords.
    """
    if not isinstance(value, str) or not _IDENTIFIER_RE.match(value):
        raise ValueError(f"{name} must be a valid identifier, got {value!r}")
    if keyword.iskeyword(value):
        raise ValueError(f"{name} must not be a reserved keyword, got {value!r}")
