"""General-purpose utilities shared by every layer of the reproduction."""

from repro.util.ids import IdGenerator, fresh_id
from repro.util.rng import DeterministicRng
from repro.util.validation import (
    require,
    require_identifier,
    require_non_negative,
    require_positive,
    require_type,
)
from repro.util.listenable import Listenable

__all__ = [
    "IdGenerator",
    "fresh_id",
    "DeterministicRng",
    "require",
    "require_identifier",
    "require_non_negative",
    "require_positive",
    "require_type",
    "Listenable",
]
