"""Listener registration mix-in.

JPie's dynamic classes, the SDE publishers and the CDE stub manager all use a
listener/notification pattern (the paper's "registers itself as a listener to
changes in the method signatures", §5.1.1).  ``Listenable`` provides a small,
reusable implementation with deterministic notification order.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

Listener = Callable[..., None]


class Listenable:
    """Mix-in providing ``add_listener`` / ``remove_listener`` / ``notify``.

    Listeners are invoked in registration order.  A listener raising an
    exception does not prevent the remaining listeners from running; the
    first exception is re-raised after all listeners have been notified so
    that programming errors remain visible.
    """

    def __init__(self) -> None:
        self._listeners: list[Listener] = []

    def add_listener(self, listener: Listener) -> None:
        """Register ``listener``; duplicate registrations are ignored."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        """Unregister ``listener``; unknown listeners are ignored."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    @property
    def listeners(self) -> Iterable[Listener]:
        """A snapshot of the registered listeners, in notification order."""
        return tuple(self._listeners)

    def notify(self, *args: Any, **kwargs: Any) -> None:
        """Invoke every registered listener with the given arguments."""
        first_error: BaseException | None = None
        for listener in tuple(self._listeners):
            try:
                listener(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
