"""Deterministic identifier generation.

Wall-clock based UUIDs would break reproducibility of the simulation, so all
identifiers in the system come from :class:`IdGenerator` instances (or the
module-level :func:`fresh_id` helper) which produce stable, human-readable
identifiers such as ``"request-17"``.
"""

from __future__ import annotations

import itertools
from collections import defaultdict


class IdGenerator:
    """Produces sequential identifiers, one counter per prefix.

    >>> gen = IdGenerator()
    >>> gen.next("request")
    'request-1'
    >>> gen.next("request")
    'request-2'
    >>> gen.next("timer")
    'timer-1'
    """

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = defaultdict(
            lambda: itertools.count(1)
        )

    def next(self, prefix: str) -> str:
        """Return the next identifier for ``prefix``."""
        return f"{prefix}-{next(self._counters[prefix])}"

    def peek(self, prefix: str) -> int:
        """Return how many identifiers have been issued for ``prefix``.

        This is primarily useful in tests asserting on allocation counts.
        """
        counter = self._counters[prefix]
        # itertools.count has no public inspection API; we clone by issuing
        # and recreating, which is cheap and keeps the abstraction simple.
        value = next(counter)
        self._counters[prefix] = itertools.count(value)
        return value - 1

    def reset(self) -> None:
        """Forget all counters (used between test cases)."""
        self._counters.clear()


_GLOBAL = IdGenerator()


def fresh_id(prefix: str) -> str:
    """Return a fresh identifier from the process-wide generator."""
    return _GLOBAL.next(prefix)


def reset_global_ids() -> None:
    """Reset the process-wide generator (test helper)."""
    _GLOBAL.reset()
