"""Deterministic random number generation for workloads and latency jitter.

The benchmark harnesses need repeatable randomness (payload sizes, edit
traces, jitter on network latency).  ``DeterministicRng`` is a small facade
over :class:`random.Random` that documents the subset of operations the rest
of the code base relies on and makes the seed explicit everywhere.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with an explicit, minimal API."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def uniform(self, low: float, high: float) -> float:
        """Return a float uniformly distributed in ``[low, high]``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniformly distributed in ``[low, high]``."""
        return self._random.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Return a uniformly chosen element of ``items``."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Return ``count`` distinct elements chosen from ``items``."""
        return self._random.sample(list(items), count)

    def shuffle(self, items: list[T]) -> list[T]:
        """Return a new list containing ``items`` in a shuffled order."""
        shuffled = list(items)
        self._random.shuffle(shuffled)
        return shuffled

    def expovariate(self, rate: float) -> float:
        """Return an exponentially distributed value with the given rate."""
        return self._random.expovariate(rate)

    def gauss(self, mean: float, stddev: float) -> float:
        """Return a normally distributed value."""
        return self._random.gauss(mean, stddev)

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent stream identified by ``label``.

        Forked streams let independent subsystems (e.g. the latency model and
        a workload generator) draw random numbers without perturbing each
        other's sequences.
        """
        derived_seed = hash((self.seed, label)) & 0x7FFFFFFF
        return DeterministicRng(derived_seed)
