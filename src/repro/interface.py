"""Technology-neutral server interface model.

SDE keeps one description of "the set of distributed operations the server
currently exposes" and renders it to WSDL (SOAP) or CORBA-IDL (CORBA) when
publishing.  This module defines that description:

* :class:`Parameter` — a named, typed formal parameter;
* :class:`OperationSignature` — a remote operation (name, parameters, return
  type);
* :class:`InterfaceDescription` — a versioned set of operations plus the
  user-defined struct types they reference.

The model is deliberately value-like (frozen dataclasses, structural
equality) so that "has the interface changed?" is a simple ``!=`` between the
current and last-published description — the question at the heart of the
stable-change detection mechanism (§5.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.errors import ReproError
from repro.rmitypes import RmiType, TypeRegistry, StructType, VOID
from repro.util.validation import require_identifier


class InterfaceError(ReproError):
    """Raised on malformed interface descriptions (duplicate operations...)."""


@dataclass(frozen=True)
class Parameter:
    """A formal parameter of a remote operation."""

    name: str
    param_type: RmiType

    def __post_init__(self) -> None:
        require_identifier(self.name, "parameter name")

    def __str__(self) -> str:
        return f"{self.param_type.type_name} {self.name}"


@dataclass(frozen=True)
class OperationSignature:
    """A single remote operation in the server interface."""

    name: str
    parameters: tuple[Parameter, ...] = ()
    return_type: RmiType = VOID

    def __post_init__(self) -> None:
        require_identifier(self.name, "operation name")
        seen: set[str] = set()
        for parameter in self.parameters:
            if parameter.name in seen:
                raise InterfaceError(
                    f"duplicate parameter {parameter.name!r} in operation {self.name!r}"
                )
            seen.add(parameter.name)

    @property
    def arity(self) -> int:
        """Number of formal parameters."""
        return len(self.parameters)

    def parameter_types(self) -> tuple[RmiType, ...]:
        """The parameter types in declaration order."""
        return tuple(p.param_type for p in self.parameters)

    def describe(self) -> str:
        """A human-readable rendering, e.g. ``int add(int a, int b)``."""
        params = ", ".join(str(p) for p in self.parameters)
        return f"{self.return_type.type_name} {self.name}({params})"

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class InterfaceDescription:
    """A complete, versioned description of the server interface.

    Attributes
    ----------
    service_name:
        The name of the service (the dynamic class name in JPie).
    namespace:
        Target namespace (SOAP) / module name (CORBA).
    operations:
        The distributed operations, in a deterministic order.
    structs:
        User-defined struct types referenced by the operations.
    version:
        Monotonically increasing version assigned by the publisher; two
        descriptions with different versions but identical contents are
        considered equal for change-detection purposes (see
        :meth:`same_signature`).
    endpoint_url:
        Where the RMI endpoint listens.  A *minimal* description (published
        immediately when the gateway class is created, §5.1.1) has an
        endpoint but no operations.
    """

    service_name: str
    namespace: str
    operations: tuple[OperationSignature, ...] = ()
    structs: tuple[StructType, ...] = ()
    version: int = 0
    endpoint_url: str = ""

    def __post_init__(self) -> None:
        require_identifier(self.service_name, "service name")
        seen: set[str] = set()
        for operation in self.operations:
            if operation.name in seen:
                raise InterfaceError(
                    f"duplicate operation {operation.name!r} in service {self.service_name!r}"
                )
            seen.add(operation.name)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def minimal(
        cls, service_name: str, namespace: str, endpoint_url: str
    ) -> "InterfaceDescription":
        """The minimal description published at class-creation time (§5.1.1):
        endpoint address present, no operation definitions yet."""
        return cls(
            service_name=service_name,
            namespace=namespace,
            operations=(),
            structs=(),
            version=0,
            endpoint_url=endpoint_url,
        )

    def with_operations(
        self,
        operations: Iterable[OperationSignature],
        structs: Iterable[StructType] = (),
    ) -> "InterfaceDescription":
        """Return a copy with a new operation set (sorted by name)."""
        ordered = tuple(sorted(operations, key=lambda op: op.name))
        struct_tuple = tuple(sorted(structs, key=lambda s: s.name))
        return replace(self, operations=ordered, structs=struct_tuple)

    def with_version(self, version: int) -> "InterfaceDescription":
        """Return a copy carrying the given publication version."""
        return replace(self, version=version)

    def with_endpoint(self, endpoint_url: str) -> "InterfaceDescription":
        """Return a copy pointing at a different endpoint URL."""
        return replace(self, endpoint_url=endpoint_url)

    # -- queries --------------------------------------------------------------

    def operation(self, name: str) -> OperationSignature | None:
        """Return the operation named ``name``, if present."""
        for operation in self.operations:
            if operation.name == name:
                return operation
        return None

    def has_operation(self, name: str) -> bool:
        """True if an operation named ``name`` is part of the interface."""
        return self.operation(name) is not None

    def operation_names(self) -> tuple[str, ...]:
        """All operation names, in the interface's deterministic order."""
        return tuple(op.name for op in self.operations)

    def type_registry(self) -> TypeRegistry:
        """A registry containing this interface's struct types."""
        return TypeRegistry(self.structs)

    def same_signature(self, other: "InterfaceDescription") -> bool:
        """True if the two descriptions describe the same interface,
        ignoring the publication version."""
        return (
            self.service_name == other.service_name
            and self.namespace == other.namespace
            and self.operations == other.operations
            and self.structs == other.structs
            and self.endpoint_url == other.endpoint_url
        )

    def diff(self, other: "InterfaceDescription") -> "InterfaceDiff":
        """Compute added/removed/changed operations going from ``self`` to
        ``other`` (used by CDE to report what changed to the developer)."""
        mine = {op.name: op for op in self.operations}
        theirs = {op.name: op for op in other.operations}
        added = tuple(sorted(set(theirs) - set(mine)))
        removed = tuple(sorted(set(mine) - set(theirs)))
        changed = tuple(
            sorted(name for name in set(mine) & set(theirs) if mine[name] != theirs[name])
        )
        return InterfaceDiff(added=added, removed=removed, changed=changed)

    def describe(self) -> str:
        """Human-readable multi-line summary of the interface."""
        lines = [f"service {self.service_name} (namespace {self.namespace}, "
                 f"version {self.version}, endpoint {self.endpoint_url or '<none>'})"]
        for struct in self.structs:
            fields = ", ".join(f"{f.field_type.type_name} {f.name}" for f in struct.fields)
            lines.append(f"  struct {struct.name} {{ {fields} }}")
        for operation in self.operations:
            lines.append(f"  {operation.describe()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class InterfaceDiff:
    """The difference between two interface descriptions."""

    added: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()
    changed: tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        """True if nothing changed."""
        return not (self.added or self.removed or self.changed)

    def __str__(self) -> str:
        if self.empty:
            return "no interface changes"
        parts = []
        if self.added:
            parts.append(f"added: {', '.join(self.added)}")
        if self.removed:
            parts.append(f"removed: {', '.join(self.removed)}")
        if self.changed:
            parts.append(f"changed: {', '.join(self.changed)}")
        return "; ".join(parts)
