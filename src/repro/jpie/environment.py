"""The JPie environment: class registry, load events and the undo/redo stack.

The environment is what SDE plugs into: it loads (creates) dynamic classes,
fires :class:`~repro.jpie.listeners.ClassLoadedEvent` notifications so SDE can
detect new subclasses of its gateway classes (§5.1.1), owns the global
undo/redo stack the publishers monitor (§5.6) and hosts the debugger that
surfaces remote exceptions to the developer (§6).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import JPieError
from repro.jpie.debugger import JPieDebugger
from repro.jpie.dynamic_class import DynamicClass
from repro.jpie.listeners import ClassChangeEvent, ClassLoadedEvent
from repro.jpie.undo_redo import ChangeRecord, UndoRedoStack
from repro.util.listenable import Listenable


class JPieEnvironment(Listenable):
    """A running JPie session hosting dynamic classes and plug-ins."""

    def __init__(self, name: str = "jpie") -> None:
        super().__init__()
        self.name = name
        self._classes: dict[str, DynamicClass] = {}
        self.undo_stack = UndoRedoStack()
        self.debugger = JPieDebugger()
        self._instance_listeners: list[Callable[[DynamicClass, Any], None]] = []

    # -- class loading -------------------------------------------------------

    def create_class(
        self, name: str, superclass: DynamicClass | type | None = None
    ) -> DynamicClass:
        """Create (load) a new dynamic class and notify load listeners.

        This is the programmatic equivalent of the JPie user creating a new
        class in the GUI, e.g. extending ``SOAPServer`` (§4).
        """
        if name in self._classes:
            raise JPieError(f"a class named {name!r} is already loaded")
        dynamic_class = DynamicClass(name, superclass=superclass, environment=self)
        self._classes[name] = dynamic_class
        self.notify(ClassLoadedEvent(class_name=name, dynamic_class=dynamic_class))
        return dynamic_class

    def unload_class(self, name: str) -> None:
        """Remove a class from the environment (no event is fired; JPie has
        no unload notification either)."""
        self._classes.pop(name, None)

    def get_class(self, name: str) -> DynamicClass:
        """Return the loaded class named ``name``."""
        try:
            return self._classes[name]
        except KeyError:
            raise JPieError(f"no class named {name!r} is loaded") from None

    @property
    def classes(self) -> tuple[DynamicClass, ...]:
        """All loaded classes, in load order."""
        return tuple(self._classes.values())

    def add_class_load_listener(self, listener: Callable[[ClassLoadedEvent], None]) -> None:
        """Register a listener for class-load events (what SDE does)."""
        self.add_listener(listener)

    # -- instance creation events -----------------------------------------------

    def add_instance_listener(
        self, listener: Callable[[DynamicClass, Any], None]
    ) -> None:
        """Register a listener invoked whenever any dynamic class is
        instantiated.  SDE uses this to activate the call handler when the
        first instance of a gateway subclass appears (§5.1.3)."""
        if listener not in self._instance_listeners:
            self._instance_listeners.append(listener)

    def _instance_created(self, dynamic_class: DynamicClass, instance: Any) -> None:
        for listener in tuple(self._instance_listeners):
            listener(dynamic_class, instance)

    # -- change plumbing -----------------------------------------------------------

    def _class_changed(
        self,
        dynamic_class: DynamicClass,
        event: ClassChangeEvent,
        undo: Callable[[], None] | None,
    ) -> None:
        self.undo_stack.push(
            ChangeRecord(class_name=dynamic_class.name, event=event, undo_action=undo)
        )

    def __repr__(self) -> str:
        return f"JPieEnvironment({self.name!r}, classes={list(self._classes)})"
