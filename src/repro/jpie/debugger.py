"""The JPie debugger.

"The JPie Debugger detects the exception and displays it to the user ...
the user can use JPie's 'try again' feature in the debugger to re-execute and
therefore resend the call" (§6, Figure 9).  The debugger here is headless:
exceptions are recorded as :class:`DebuggerEntry` items that tests and
examples can inspect, and :meth:`JPieDebugger.try_again` re-runs the original
call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import JPieError


@dataclass
class DebuggerEntry:
    """One exception surfaced to the developer."""

    source: str
    exception: BaseException
    description: str = ""
    retry: Callable[[], Any] | None = None
    context: dict[str, Any] = field(default_factory=dict)
    resolved: bool = False

    @property
    def can_retry(self) -> bool:
        """True if the originating call can be re-executed."""
        return self.retry is not None

    def __str__(self) -> str:
        return f"[{self.source}] {type(self.exception).__name__}: {self.exception}"


class JPieDebugger:
    """Collects exceptions raised during live development."""

    def __init__(self) -> None:
        self._entries: list[DebuggerEntry] = []
        self._display_listeners: list[Callable[[DebuggerEntry], None]] = []

    # -- reporting ----------------------------------------------------------

    def report(
        self,
        source: str,
        exception: BaseException,
        description: str = "",
        retry: Callable[[], Any] | None = None,
        context: dict[str, Any] | None = None,
    ) -> DebuggerEntry:
        """Record an exception and notify display listeners."""
        entry = DebuggerEntry(
            source=source,
            exception=exception,
            description=description,
            retry=retry,
            context=dict(context or {}),
        )
        self._entries.append(entry)
        for listener in tuple(self._display_listeners):
            listener(entry)
        return entry

    def add_display_listener(self, listener: Callable[[DebuggerEntry], None]) -> None:
        """Register a listener invoked when a new entry is displayed."""
        if listener not in self._display_listeners:
            self._display_listeners.append(listener)

    # -- inspection -------------------------------------------------------------

    @property
    def entries(self) -> tuple[DebuggerEntry, ...]:
        """All recorded entries, oldest first."""
        return tuple(self._entries)

    @property
    def unresolved(self) -> tuple[DebuggerEntry, ...]:
        """Entries the developer has not yet resolved."""
        return tuple(e for e in self._entries if not e.resolved)

    def latest(self) -> DebuggerEntry | None:
        """The most recent entry, if any."""
        return self._entries[-1] if self._entries else None

    # -- actions ------------------------------------------------------------------

    def try_again(self, entry: DebuggerEntry | None = None) -> Any:
        """Re-execute the call that produced ``entry`` (default: the latest).

        On success the entry is marked resolved and the new result returned;
        if the retried call fails again the new exception propagates (and is
        *not* recorded automatically — the caller decides).
        """
        if entry is None:
            entry = self.latest()
        if entry is None:
            raise JPieError("debugger has no entries to retry")
        if not entry.can_retry:
            raise JPieError("this debugger entry cannot be re-executed")
        result = entry.retry()
        entry.resolved = True
        return result

    def resolve(self, entry: DebuggerEntry) -> None:
        """Mark an entry as handled without re-executing it."""
        entry.resolved = True

    def clear(self) -> None:
        """Discard all entries."""
        self._entries.clear()

    def __repr__(self) -> str:
        return f"JPieDebugger(entries={len(self._entries)}, unresolved={len(self.unresolved)})"
