"""JPie-style dynamic-class environment.

JPie "embodies the notion of a dynamic class whose signature and
implementation can be modified at run time, with changes taking effect
immediately upon existing instances of the class" (§1).  This package
reproduces the observable behaviour SDE depends on:

* :class:`~repro.jpie.dynamic_class.DynamicClass` built from
  :class:`~repro.jpie.dynamic_method.DynamicMethod` and
  :class:`~repro.jpie.dynamic_field.DynamicField` components that can be
  instantiated *and mutated*;
* live instances (:class:`~repro.jpie.dynamic_instance.DynamicInstance`)
  whose behaviour always reflects the current class definition;
* the ``distributed`` modifier used to mark server operations (§4, §5.5);
* change listeners and the undo/redo stack the SDE publishers monitor
  (§5.6);
* a :class:`~repro.jpie.environment.JPieEnvironment` that loads classes and
  notifies plug-ins (such as SDE) when subclasses of their gateway classes
  appear (§5.1.1);
* the :class:`~repro.jpie.debugger.JPieDebugger` that surfaces remote
  exceptions to the developer and supports the "try again" feature (§6);
* the application-export mechanism that converts a dynamic class into a
  static one at the end of development (§7).
"""

from repro.jpie.modifiers import Modifier
from repro.jpie.listeners import (
    ClassChangeEvent,
    ClassChangeKind,
    ClassLoadedEvent,
)
from repro.jpie.dynamic_field import DynamicField
from repro.jpie.dynamic_method import DynamicMethod
from repro.jpie.dynamic_class import DynamicClass
from repro.jpie.dynamic_instance import DynamicInstance
from repro.jpie.undo_redo import UndoRedoStack, ChangeRecord
from repro.jpie.environment import JPieEnvironment
from repro.jpie.debugger import JPieDebugger, DebuggerEntry
from repro.jpie.export import export_static_class, export_operation_table

__all__ = [
    "Modifier",
    "ClassChangeEvent",
    "ClassChangeKind",
    "ClassLoadedEvent",
    "DynamicField",
    "DynamicMethod",
    "DynamicClass",
    "DynamicInstance",
    "UndoRedoStack",
    "ChangeRecord",
    "JPieEnvironment",
    "JPieDebugger",
    "DebuggerEntry",
    "export_static_class",
    "export_operation_table",
]
