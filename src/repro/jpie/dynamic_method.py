"""Dynamic methods.

A dynamic method's signature *and* implementation can be changed while the
program runs; "changes taking effect immediately upon existing instances of
the class" (§1).  Mutations are routed through the owning
:class:`~repro.jpie.dynamic_class.DynamicClass` so that change events are
fired and the undo/redo stack is maintained.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import DynamicClassError, SignatureError
from repro.interface import OperationSignature, Parameter
from repro.jpie.modifiers import Modifier
from repro.rmitypes import RmiType, VOID
from repro.util.validation import require_identifier

MethodBody = Callable[..., Any]


def _default_body(*_args: Any, **_kwargs: Any) -> None:
    """The body a freshly created method starts with (an empty method)."""
    return None


class DynamicMethod:
    """A mutable method definition belonging to a dynamic class."""

    def __init__(
        self,
        name: str,
        parameters: tuple[Parameter, ...] = (),
        return_type: RmiType = VOID,
        body: MethodBody | None = None,
        modifiers: set[Modifier] | None = None,
    ) -> None:
        require_identifier(name, "method name")
        self._name = name
        self._parameters = tuple(parameters)
        self._return_type = return_type
        self._body: MethodBody = body if body is not None else _default_body
        self.modifiers: set[Modifier] = set(modifiers or {Modifier.PUBLIC})
        self.owner = None  # set by DynamicClass.add_method
        self.invocation_count = 0

    # -- accessors -----------------------------------------------------------

    @property
    def name(self) -> str:
        """The method name."""
        return self._name

    @property
    def parameters(self) -> tuple[Parameter, ...]:
        """The formal parameters in declaration order."""
        return self._parameters

    @property
    def return_type(self) -> RmiType:
        """The declared return type."""
        return self._return_type

    @property
    def body(self) -> MethodBody:
        """The current implementation."""
        return self._body

    @property
    def is_distributed(self) -> bool:
        """True if the method carries the ``distributed`` modifier (§4)."""
        return Modifier.DISTRIBUTED in self.modifiers

    def signature(self) -> OperationSignature:
        """The method's signature as a technology-neutral operation."""
        return OperationSignature(
            name=self._name,
            parameters=self._parameters,
            return_type=self._return_type,
        )

    # -- invocation -------------------------------------------------------------

    def invoke(self, instance: Any, *arguments: Any) -> Any:
        """Invoke the *current* body on ``instance`` with ``arguments``.

        The arity and argument types are checked against the *current*
        signature, so a signature change is immediately visible to callers.
        """
        if len(arguments) != len(self._parameters):
            raise SignatureError(
                f"method {self._name!r} expects {len(self._parameters)} argument(s), "
                f"got {len(arguments)}"
            )
        for value, parameter in zip(arguments, self._parameters):
            try:
                parameter.param_type.validate(value)
            except Exception as exc:
                raise SignatureError(
                    f"argument {parameter.name!r} of {self._name!r}: {exc}"
                ) from None
        self.invocation_count += 1
        return self._body(instance, *arguments)

    # -- mutation ----------------------------------------------------------------

    def rename(self, new_name: str) -> None:
        """Rename the method.

        JPie "maintains consistency of declaration and use": callers that
        hold the :class:`DynamicMethod` object (rather than its name) keep
        working, and the owning class updates its lookup table.
        """
        require_identifier(new_name, "method name")
        if self.owner is not None:
            self.owner._rename_method(self, new_name)
        else:
            self._name = new_name

    def set_parameters(self, parameters: tuple[Parameter, ...]) -> None:
        """Replace the formal parameter list."""
        old = self._parameters
        self._parameters = tuple(parameters)
        # Validate the combination early (duplicate names, etc.).
        try:
            self.signature()
        except Exception:
            self._parameters = old
            raise
        if self.owner is not None:
            self.owner._method_signature_changed(
                self, f"parameters {[str(p) for p in old]} -> {[str(p) for p in parameters]}"
            )

    def set_return_type(self, return_type: RmiType) -> None:
        """Change the declared return type."""
        old = self._return_type
        self._return_type = return_type
        if self.owner is not None:
            self.owner._method_signature_changed(
                self, f"return type {old.type_name} -> {return_type.type_name}"
            )

    def set_body(self, body: MethodBody) -> None:
        """Replace the implementation; takes effect on the very next call."""
        if not callable(body):
            raise DynamicClassError("method body must be callable")
        self._body = body
        if self.owner is not None:
            self.owner._method_body_changed(self)

    def add_modifier(self, modifier: Modifier) -> None:
        """Add a modifier (selecting 'distributed' adds the method to the
        server interface, §4)."""
        if modifier in self.modifiers:
            return
        self.modifiers.add(modifier)
        if self.owner is not None:
            self.owner._method_modifiers_changed(self, f"+{modifier}")

    def remove_modifier(self, modifier: Modifier) -> None:
        """Remove a modifier (deselecting 'distributed' removes the method
        from the server interface, §4)."""
        if modifier not in self.modifiers:
            return
        self.modifiers.discard(modifier)
        if self.owner is not None:
            self.owner._method_modifiers_changed(self, f"-{modifier}")

    def set_distributed(self, distributed: bool) -> None:
        """Convenience toggle for the ``distributed`` modifier."""
        if distributed:
            self.add_modifier(Modifier.DISTRIBUTED)
        else:
            self.remove_modifier(Modifier.DISTRIBUTED)

    def _apply_rename(self, new_name: str) -> None:
        self._name = new_name

    def __repr__(self) -> str:
        flags = ",".join(sorted(str(m) for m in self.modifiers))
        return f"DynamicMethod({self.signature().describe()} [{flags}])"
