"""The environment-wide undo/redo stack.

"Each DL Publisher listens to changes in the corresponding dynamic class by
monitoring the JPie undo/redo stack" (§5.6).  Every mutation of a dynamic
class is recorded here as a :class:`ChangeRecord`; stack listeners receive the
record as it is pushed, which is the signal the SDE publishers use to start or
reset their stability timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import JPieError
from repro.jpie.listeners import ClassChangeEvent
from repro.util.listenable import Listenable


@dataclass
class ChangeRecord:
    """One entry on the undo/redo stack."""

    class_name: str
    event: ClassChangeEvent
    undo_action: Callable[[], None] | None = None
    sequence: int = 0

    @property
    def undoable(self) -> bool:
        """True if the change can be reverted."""
        return self.undo_action is not None

    def __str__(self) -> str:
        return f"#{self.sequence} {self.event}"


class UndoRedoStack(Listenable):
    """A linear undo history with change notification.

    Undoing a change executes its recorded inverse action.  The inverse
    action itself produces a new change event (so listeners such as the SDE
    publishers see undo as just another edit — which is exactly the §5.6
    behaviour: undoing an interface change must also eventually republish).
    """

    def __init__(self) -> None:
        super().__init__()
        self._records: list[ChangeRecord] = []
        self._sequence = 0
        self._replaying = False

    # -- recording ------------------------------------------------------------

    def push(self, record: ChangeRecord) -> ChangeRecord:
        """Push ``record`` and notify stack listeners."""
        self._sequence += 1
        record.sequence = self._sequence
        self._records.append(record)
        self.notify(record)
        return record

    # -- inspection --------------------------------------------------------------

    @property
    def records(self) -> tuple[ChangeRecord, ...]:
        """The complete history, oldest first."""
        return tuple(self._records)

    @property
    def depth(self) -> int:
        """Number of records on the stack."""
        return len(self._records)

    def records_for(self, class_name: str) -> tuple[ChangeRecord, ...]:
        """History entries affecting the named class."""
        return tuple(r for r in self._records if r.class_name == class_name)

    def last(self) -> ChangeRecord | None:
        """The most recent record, if any."""
        return self._records[-1] if self._records else None

    # -- undo ----------------------------------------------------------------------

    def undo(self) -> ChangeRecord:
        """Undo the most recent undoable change and return its record."""
        if self._replaying:
            raise JPieError("undo is not reentrant")
        for index in range(len(self._records) - 1, -1, -1):
            record = self._records[index]
            if record.undoable:
                self._records.pop(index)
                self._replaying = True
                try:
                    record.undo_action()
                finally:
                    self._replaying = False
                return record
        raise JPieError("nothing to undo")

    def clear(self) -> None:
        """Forget the entire history (used when exporting a finished class)."""
        self._records.clear()

    def __repr__(self) -> str:
        return f"UndoRedoStack(depth={len(self._records)})"
