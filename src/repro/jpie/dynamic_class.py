"""Dynamic classes.

A :class:`DynamicClass` is a run-time-mutable class definition built from
:class:`~repro.jpie.dynamic_method.DynamicMethod` and
:class:`~repro.jpie.dynamic_field.DynamicField` components.  Existing
instances always see the current definition, modifications fire
:class:`~repro.jpie.listeners.ClassChangeEvent` notifications to registered
listeners, and every mutation is pushed onto the environment's undo/redo
stack so that SDE's publishers can monitor editing activity (§5.6).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import DynamicClassError, MemberNotFoundError
from repro.interface import OperationSignature, Parameter
from repro.jpie.dynamic_field import DynamicField
from repro.jpie.dynamic_method import DynamicMethod, MethodBody
from repro.jpie.listeners import ClassChangeEvent, ClassChangeKind
from repro.jpie.modifiers import Modifier
from repro.rmitypes import RmiType, StructType, VOID
from repro.util.listenable import Listenable
from repro.util.validation import require_identifier


class DynamicClass(Listenable):
    """A mutable class definition whose instances track every change."""

    def __init__(
        self,
        name: str,
        superclass: "DynamicClass | type | None" = None,
        environment: "Any | None" = None,
    ) -> None:
        super().__init__()
        require_identifier(name, "class name")
        self._name = name
        self.superclass = superclass
        self.environment = environment
        self._methods: dict[str, DynamicMethod] = {}
        self._fields: dict[str, DynamicField] = {}
        self._struct_types: dict[str, StructType] = {}
        self._instances: list[Any] = []

    # -- identity ---------------------------------------------------------------

    @property
    def name(self) -> str:
        """The class name."""
        return self._name

    def rename(self, new_name: str) -> None:
        """Rename the class (fires a CLASS_RENAMED event)."""
        require_identifier(new_name, "class name")
        old_name = self._name
        self._name = new_name
        self._record_and_notify(
            ClassChangeEvent(
                kind=ClassChangeKind.CLASS_RENAMED,
                class_name=new_name,
                detail=f"renamed from {old_name}",
                old_value=old_name,
                new_value=new_name,
            ),
            undo=lambda: self.rename(old_name),
        )

    def is_subclass_of(self, other: "DynamicClass | type") -> bool:
        """True if this class descends from ``other`` (dynamic or static)."""
        current: DynamicClass | type | None = self
        while current is not None:
            if current is other:
                return True
            if isinstance(current, DynamicClass):
                current = current.superclass
            else:
                return isinstance(other, type) and issubclass(current, other)
        return False

    # -- methods -----------------------------------------------------------------

    @property
    def methods(self) -> tuple[DynamicMethod, ...]:
        """All methods, in insertion order."""
        return tuple(self._methods.values())

    def method(self, name: str) -> DynamicMethod:
        """Return the method named ``name``."""
        method = self._methods.get(name)
        if method is None and isinstance(self.superclass, DynamicClass):
            return self.superclass.method(name)
        if method is None:
            raise MemberNotFoundError(f"class {self._name!r} has no method {name!r}")
        return method

    def has_method(self, name: str) -> bool:
        """True if a method named ``name`` exists (including inherited)."""
        try:
            self.method(name)
            return True
        except MemberNotFoundError:
            return False

    def add_method(
        self,
        name: str,
        parameters: Iterable[Parameter] = (),
        return_type: RmiType = VOID,
        body: MethodBody | None = None,
        modifiers: set[Modifier] | None = None,
        distributed: bool = False,
    ) -> DynamicMethod:
        """Create a method, add it to the class and return it."""
        if name in self._methods:
            raise DynamicClassError(f"class {self._name!r} already has a method {name!r}")
        final_modifiers = set(modifiers or {Modifier.PUBLIC})
        if distributed:
            final_modifiers.add(Modifier.DISTRIBUTED)
        method = DynamicMethod(
            name,
            tuple(parameters),
            return_type,
            body,
            final_modifiers,
        )
        method.owner = self
        self._methods[name] = method
        self._record_and_notify(
            ClassChangeEvent(
                kind=ClassChangeKind.METHOD_ADDED,
                class_name=self._name,
                member_name=name,
                detail=method.signature().describe(),
                new_value=method,
            ),
            undo=lambda: self.remove_method(name),
        )
        return method

    def remove_method(self, name: str) -> None:
        """Delete the method named ``name`` (removing it from the server
        interface if it was distributed)."""
        method = self._methods.pop(name, None)
        if method is None:
            raise MemberNotFoundError(f"class {self._name!r} has no method {name!r}")
        method.owner = None
        self._record_and_notify(
            ClassChangeEvent(
                kind=ClassChangeKind.METHOD_REMOVED,
                class_name=self._name,
                member_name=name,
                detail=method.signature().describe(),
                old_value=method,
            ),
            undo=lambda: self._readd_method(method),
        )

    def _readd_method(self, method: DynamicMethod) -> None:
        if method.name in self._methods:
            raise DynamicClassError(f"cannot restore method {method.name!r}: name in use")
        method.owner = self
        self._methods[method.name] = method
        self._record_and_notify(
            ClassChangeEvent(
                kind=ClassChangeKind.METHOD_ADDED,
                class_name=self._name,
                member_name=method.name,
                detail="restored by undo",
                new_value=method,
            ),
            undo=lambda: self.remove_method(method.name),
        )

    # -- fields -------------------------------------------------------------------

    @property
    def fields(self) -> tuple[DynamicField, ...]:
        """All fields, in insertion order."""
        return tuple(self._fields.values())

    def field(self, name: str) -> DynamicField:
        """Return the field named ``name``."""
        field = self._fields.get(name)
        if field is None and isinstance(self.superclass, DynamicClass):
            return self.superclass.field(name)
        if field is None:
            raise MemberNotFoundError(f"class {self._name!r} has no field {name!r}")
        return field

    def has_field(self, name: str) -> bool:
        """True if a field named ``name`` exists (including inherited)."""
        try:
            self.field(name)
            return True
        except MemberNotFoundError:
            return False

    def add_field(
        self,
        name: str,
        field_type: RmiType,
        initial_value: Any = None,
        modifiers: set[Modifier] | None = None,
    ) -> DynamicField:
        """Create a field, add it to the class and return it.

        Existing instances receive the field immediately, initialised to the
        field's initial value.
        """
        if name in self._fields:
            raise DynamicClassError(f"class {self._name!r} already has a field {name!r}")
        field = DynamicField(name, field_type, initial_value, modifiers)
        field.owner = self
        self._fields[name] = field
        for instance in self._instances:
            instance._field_added(field)
        self._record_and_notify(
            ClassChangeEvent(
                kind=ClassChangeKind.FIELD_ADDED,
                class_name=self._name,
                member_name=name,
                detail=f"{field_type.type_name} {name}",
                new_value=field,
            ),
            undo=lambda: self.remove_field(name),
        )
        return field

    def remove_field(self, name: str) -> None:
        """Delete the field named ``name`` from the class and all instances."""
        field = self._fields.pop(name, None)
        if field is None:
            raise MemberNotFoundError(f"class {self._name!r} has no field {name!r}")
        field.owner = None
        for instance in self._instances:
            instance._field_removed(name)
        self._record_and_notify(
            ClassChangeEvent(
                kind=ClassChangeKind.FIELD_REMOVED,
                class_name=self._name,
                member_name=name,
                old_value=field,
            ),
            undo=lambda: self.add_field(name, field.field_type, field.initial_value),
        )

    # -- struct types ----------------------------------------------------------------

    def declare_struct(self, struct: StructType) -> StructType:
        """Declare a user-defined struct type used by distributed methods."""
        self._struct_types[struct.name] = struct
        return struct

    @property
    def struct_types(self) -> tuple[StructType, ...]:
        """The declared struct types, sorted by name."""
        return tuple(sorted(self._struct_types.values(), key=lambda s: s.name))

    # -- instances ----------------------------------------------------------------------

    def new_instance(self) -> "Any":
        """Create a new live instance of this class."""
        from repro.jpie.dynamic_instance import DynamicInstance

        instance = DynamicInstance(self)
        self._instances.append(instance)
        if self.environment is not None:
            self.environment._instance_created(self, instance)
        return instance

    @property
    def instances(self) -> tuple[Any, ...]:
        """All live instances created from this class."""
        return tuple(self._instances)

    # -- the distributed (server) interface -----------------------------------------------

    def distributed_methods(self) -> tuple[DynamicMethod, ...]:
        """Methods carrying the ``distributed`` modifier, sorted by name."""
        return tuple(
            sorted(
                (m for m in self._methods.values() if m.is_distributed),
                key=lambda m: m.name,
            )
        )

    def distributed_signatures(self) -> tuple[OperationSignature, ...]:
        """Signatures of the distributed methods (the server interface)."""
        return tuple(m.signature() for m in self.distributed_methods())

    # -- change plumbing (called by members) ------------------------------------------------

    def _rename_method(self, method: DynamicMethod, new_name: str) -> None:
        if new_name in self._methods:
            raise DynamicClassError(f"class {self._name!r} already has a method {new_name!r}")
        old_name = method.name
        del self._methods[old_name]
        method._apply_rename(new_name)
        self._methods[new_name] = method
        self._record_and_notify(
            ClassChangeEvent(
                kind=ClassChangeKind.METHOD_RENAMED,
                class_name=self._name,
                member_name=new_name,
                detail=f"renamed from {old_name}",
                old_value=old_name,
                new_value=new_name,
            ),
            undo=lambda: method.rename(old_name),
        )

    def _rename_field(self, field: DynamicField, new_name: str) -> None:
        if new_name in self._fields:
            raise DynamicClassError(f"class {self._name!r} already has a field {new_name!r}")
        old_name = field.name
        del self._fields[old_name]
        field._apply_rename(new_name)
        self._fields[new_name] = field
        for instance in self._instances:
            instance._field_renamed(old_name, new_name)
        self._record_and_notify(
            ClassChangeEvent(
                kind=ClassChangeKind.FIELD_CHANGED,
                class_name=self._name,
                member_name=new_name,
                detail=f"renamed from {old_name}",
                old_value=old_name,
                new_value=new_name,
            ),
            undo=lambda: field.rename(old_name),
        )

    def _method_signature_changed(self, method: DynamicMethod, detail: str) -> None:
        self._record_and_notify(
            ClassChangeEvent(
                kind=ClassChangeKind.METHOD_SIGNATURE_CHANGED,
                class_name=self._name,
                member_name=method.name,
                detail=detail,
            ),
            undo=None,
        )

    def _method_body_changed(self, method: DynamicMethod) -> None:
        self._record_and_notify(
            ClassChangeEvent(
                kind=ClassChangeKind.METHOD_BODY_CHANGED,
                class_name=self._name,
                member_name=method.name,
            ),
            undo=None,
        )

    def _method_modifiers_changed(self, method: DynamicMethod, detail: str) -> None:
        self._record_and_notify(
            ClassChangeEvent(
                kind=ClassChangeKind.METHOD_MODIFIERS_CHANGED,
                class_name=self._name,
                member_name=method.name,
                detail=detail,
            ),
            undo=None,
        )

    def _field_changed(self, field: DynamicField, detail: str) -> None:
        self._record_and_notify(
            ClassChangeEvent(
                kind=ClassChangeKind.FIELD_CHANGED,
                class_name=self._name,
                member_name=field.name,
                detail=detail,
            ),
            undo=None,
        )

    def _record_and_notify(
        self, event: ClassChangeEvent, undo: Callable[[], None] | None
    ) -> None:
        if self.environment is not None:
            self.environment._class_changed(self, event, undo)
        self.notify(event)

    def __repr__(self) -> str:
        return (
            f"DynamicClass({self._name!r}, methods={list(self._methods)}, "
            f"fields={list(self._fields)}, instances={len(self._instances)})"
        )
