"""Change-event model for the dynamic-class environment.

SDE's interface publishers "register themselves as listeners to changes in
the method signatures" of the server class (§5.1.1) and monitor the JPie
undo/redo stack (§5.6).  The events below describe every mutation a dynamic
class can undergo; listeners receive them synchronously, in the order the
mutations happen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class ClassChangeKind(str, Enum):
    """The kinds of mutation a dynamic class supports."""

    METHOD_ADDED = "method-added"
    METHOD_REMOVED = "method-removed"
    METHOD_RENAMED = "method-renamed"
    METHOD_SIGNATURE_CHANGED = "method-signature-changed"
    METHOD_BODY_CHANGED = "method-body-changed"
    METHOD_MODIFIERS_CHANGED = "method-modifiers-changed"
    FIELD_ADDED = "field-added"
    FIELD_REMOVED = "field-removed"
    FIELD_CHANGED = "field-changed"
    CLASS_RENAMED = "class-renamed"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Kinds of change that can alter the *published server interface*: anything
#: touching the existence, name, signature or modifiers of a method.  Body
#: changes alter behaviour but not the interface, so they never trigger
#: interface publication (§5.6 cares about "changes to the distributed method
#: interface").
INTERFACE_AFFECTING_KINDS = frozenset(
    {
        ClassChangeKind.METHOD_ADDED,
        ClassChangeKind.METHOD_REMOVED,
        ClassChangeKind.METHOD_RENAMED,
        ClassChangeKind.METHOD_SIGNATURE_CHANGED,
        ClassChangeKind.METHOD_MODIFIERS_CHANGED,
        ClassChangeKind.CLASS_RENAMED,
    }
)


@dataclass(frozen=True)
class ClassChangeEvent:
    """A single mutation of a dynamic class."""

    kind: ClassChangeKind
    class_name: str
    member_name: str = ""
    detail: str = ""
    old_value: Any = None
    new_value: Any = None

    @property
    def affects_interface(self) -> bool:
        """True if this change can alter the published server interface."""
        return self.kind in INTERFACE_AFFECTING_KINDS

    def __str__(self) -> str:
        target = f"{self.class_name}.{self.member_name}" if self.member_name else self.class_name
        return f"{self.kind}: {target}" + (f" ({self.detail})" if self.detail else "")


@dataclass(frozen=True)
class ClassLoadedEvent:
    """Fired by the environment when a new dynamic class is created/loaded.

    SDE listens for these to detect new subclasses of its gateway classes
    (§5.1.1: "When a user extends the SOAP Server to create a dynamic class
    within JPie, an event is generated to signal the SDE Manager").
    """

    class_name: str
    dynamic_class: Any = field(compare=False, default=None)
