"""Application export: converting a dynamic class into a static one.

"At the end of the development phase, the dynamic SDE server can be converted
into a static SOAP or CORBA server through JPie's built-in application export
mechanism" (§7).  Export freezes the *current* definition: the result no
longer tracks subsequent changes to the dynamic class.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ExportError
from repro.interface import OperationSignature
from repro.jpie.dynamic_class import DynamicClass
from repro.jpie.modifiers import Modifier


def export_static_class(dynamic_class: DynamicClass) -> type:
    """Create an ordinary Python class from the current class definition.

    Methods become plain Python methods bound to the bodies as they exist at
    export time; fields become instance attributes initialised in
    ``__init__``.  Later mutations of the dynamic class do not affect the
    exported class or its instances.
    """
    if not dynamic_class.methods and not dynamic_class.fields:
        raise ExportError(
            f"class {dynamic_class.name!r} has no members; nothing to export"
        )

    field_defaults = {
        field.name: field.initial_value for field in dynamic_class.fields
    }

    def __init__(self) -> None:  # noqa: N807 - generated constructor
        for name, value in field_defaults.items():
            setattr(self, name, value)

    namespace: dict[str, Any] = {"__init__": __init__, "__doc__": f"Exported from dynamic class {dynamic_class.name}"}

    for method in dynamic_class.methods:
        namespace[method.name] = _freeze_method(method.body)

    exported = type(dynamic_class.name, (object,), namespace)
    exported.__exported_from__ = dynamic_class.name
    return exported


def _freeze_method(body: Callable[..., Any]) -> Callable[..., Any]:
    def frozen(self, *arguments: Any) -> Any:
        return body(self, *arguments)

    frozen.__doc__ = getattr(body, "__doc__", None)
    return frozen


def export_operation_table(
    dynamic_class: DynamicClass, instance: Any | None = None
) -> list[tuple[OperationSignature, Callable[..., Any]]]:
    """Freeze the distributed interface into a static operation table.

    The result is directly usable as the operation list of a
    :class:`~repro.soap.server.SoapServiceDefinition` or
    :class:`~repro.corba.server.CorbaServiceDefinition`, which is how the
    "convert into a static SOAP or CORBA server" step works: the exported
    table no longer follows live changes.

    If ``instance`` is omitted a fresh instance of the dynamic class is
    created to carry the exported state.
    """
    distributed = dynamic_class.distributed_methods()
    if not distributed:
        raise ExportError(
            f"class {dynamic_class.name!r} has no distributed methods to export"
        )
    target = instance if instance is not None else dynamic_class.new_instance()

    table: list[tuple[OperationSignature, Callable[..., Any]]] = []
    for method in distributed:
        signature = method.signature()
        body = method.body  # frozen now, on purpose

        def implementation(*arguments: Any, _body=body, _target=target) -> Any:
            return _body(_target, *arguments)

        table.append((signature, implementation))
    return table
