"""Live instances of dynamic classes.

Instances never copy behaviour out of their class: every invocation looks up
the *current* method definition, so signature and implementation changes
"take effect immediately upon existing instances of the class" (§1).
"""

from __future__ import annotations

from typing import Any

from repro.errors import MemberNotFoundError
from repro.jpie.dynamic_class import DynamicClass
from repro.jpie.dynamic_field import DynamicField
from repro.rmitypes import python_default
from repro.util.ids import fresh_id


class DynamicInstance:
    """A live object created from a :class:`DynamicClass`."""

    def __init__(self, dynamic_class: DynamicClass) -> None:
        self.dynamic_class = dynamic_class
        self.instance_id = fresh_id(f"{dynamic_class.name}-instance")
        self._field_values: dict[str, Any] = {
            field.name: field.initial_value for field in dynamic_class.fields
        }

    # -- fields ---------------------------------------------------------------

    def get_field(self, name: str) -> Any:
        """Read the current value of field ``name``."""
        if name not in self._field_values:
            if self.dynamic_class.has_field(name):
                # Field declared on the class after this instance last saw it
                # (e.g. re-added via undo); initialise lazily.
                field = self.dynamic_class.field(name)
                self._field_values[name] = field.initial_value
            else:
                raise MemberNotFoundError(
                    f"instance of {self.dynamic_class.name!r} has no field {name!r}"
                )
        return self._field_values[name]

    def set_field(self, name: str, value: Any) -> None:
        """Write field ``name``; the value is validated against the declared type."""
        field = self.dynamic_class.field(name)
        field.field_type.validate(value)
        self._field_values[name] = value

    @property
    def field_values(self) -> dict[str, Any]:
        """A snapshot of the instance's field values."""
        return dict(self._field_values)

    # -- invocation --------------------------------------------------------------

    def invoke(self, method_name: str, *arguments: Any) -> Any:
        """Invoke the *current* definition of ``method_name`` on this instance."""
        method = self.dynamic_class.method(method_name)
        return method.invoke(self, *arguments)

    def __getattr__(self, name: str) -> Any:
        # Provide natural attribute access for fields and methods so user
        # code reads like ordinary Python.  Only called when normal lookup
        # fails, so internal attributes are unaffected.
        if name.startswith("_"):
            raise AttributeError(name)
        klass = self.__dict__.get("dynamic_class")
        if klass is None:
            raise AttributeError(name)
        if name in self.__dict__.get("_field_values", {}):
            return self._field_values[name]
        if klass.has_method(name):
            method = klass.method(name)
            return lambda *arguments: method.invoke(self, *arguments)
        if klass.has_field(name):
            return self.get_field(name)
        raise AttributeError(
            f"instance of {klass.name!r} has no member {name!r}"
        )

    # -- class-change plumbing -------------------------------------------------------

    def _field_added(self, field: DynamicField) -> None:
        self._field_values.setdefault(field.name, field.initial_value)

    def _field_removed(self, name: str) -> None:
        self._field_values.pop(name, None)

    def _field_renamed(self, old_name: str, new_name: str) -> None:
        if old_name in self._field_values:
            self._field_values[new_name] = self._field_values.pop(old_name)

    def __repr__(self) -> str:
        return f"DynamicInstance({self.instance_id})"
