"""Method and field modifiers.

The only modifier the paper adds to JPie's list is ``distributed``: "To add a
method declared in the dynamic class to the server interface, the user
selects the 'distributed' modifier from the modifier list" (§4).  The other
modifiers mirror the Java set so the model stays faithful to JPie.
"""

from __future__ import annotations

from enum import Enum


class Modifier(str, Enum):
    """Modifiers attachable to dynamic methods and fields."""

    PUBLIC = "public"
    PROTECTED = "protected"
    PRIVATE = "private"
    STATIC = "static"
    FINAL = "final"
    ABSTRACT = "abstract"
    #: Marks a method as part of the published server interface (§4, §5.5).
    DISTRIBUTED = "distributed"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value
