"""Dynamic fields.

Dynamic fields "directly correspond to the respective classes in Java's
reflection mechanism.  However, the dynamic versions can be instantiated and
mutated." (§2.3)
"""

from __future__ import annotations

from typing import Any

from repro.errors import DynamicClassError
from repro.jpie.modifiers import Modifier
from repro.rmitypes import RmiType, STRING, python_default
from repro.util.validation import require_identifier


class DynamicField:
    """A mutable field definition belonging to a dynamic class."""

    def __init__(
        self,
        name: str,
        field_type: RmiType = STRING,
        initial_value: Any = None,
        modifiers: set[Modifier] | None = None,
    ) -> None:
        require_identifier(name, "field name")
        self._name = name
        self._field_type = field_type
        if initial_value is None:
            initial_value = python_default(field_type)
        field_type.validate(initial_value)
        self._initial_value = initial_value
        self.modifiers: set[Modifier] = set(modifiers or {Modifier.PRIVATE})
        self.owner = None  # set by DynamicClass.add_field

    # -- accessors -----------------------------------------------------------

    @property
    def name(self) -> str:
        """The field name."""
        return self._name

    @property
    def field_type(self) -> RmiType:
        """The declared field type."""
        return self._field_type

    @property
    def initial_value(self) -> Any:
        """The value new instances start with."""
        return self._initial_value

    # -- mutation --------------------------------------------------------------

    def rename(self, new_name: str) -> None:
        """Rename the field; existing instances keep their values under the
        new name (declaration/use consistency)."""
        require_identifier(new_name, "field name")
        if self.owner is not None:
            self.owner._rename_field(self, new_name)
        else:
            self._name = new_name

    def set_type(self, field_type: RmiType, initial_value: Any = None) -> None:
        """Change the declared type (and optionally the initial value)."""
        if initial_value is None:
            initial_value = python_default(field_type)
        field_type.validate(initial_value)
        old = self._field_type
        self._field_type = field_type
        self._initial_value = initial_value
        if self.owner is not None:
            self.owner._field_changed(self, f"type {old.type_name} -> {field_type.type_name}")

    def set_initial_value(self, value: Any) -> None:
        """Change the initial value new instances receive."""
        self._field_type.validate(value)
        self._initial_value = value
        if self.owner is not None:
            self.owner._field_changed(self, "initial value changed")

    def _apply_rename(self, new_name: str) -> None:
        self._name = new_name

    def __repr__(self) -> str:
        return f"DynamicField({self._field_type.type_name} {self._name})"
