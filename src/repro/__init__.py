"""``repro`` — live development middleware for SOAP and CORBA servers.

A from-scratch Python reproduction of *Supporting Live Development of SOAP
and CORBA Servers* (Pallemulle, Goldman & Morgan, WUCSE-2004-75 / ICDCS
2005).  The package contains:

* the paper's contribution — the **SDE** server development environment
  (:mod:`repro.core.sde`), the companion **CDE** client environment
  (:mod:`repro.core.cde`) and the joint consistency protocol
  (:mod:`repro.core.protocol`);
* every substrate it depends on, implemented from scratch: a JPie-style
  dynamic-class environment (:mod:`repro.jpie`), a SOAP/WSDL stack
  (:mod:`repro.soap`), a CORBA stack with IDL/IOR/GIOP/ORB/DII/DSI
  (:mod:`repro.corba`), an HTTP substrate and simulated network
  (:mod:`repro.net`), and a deterministic discrete-event simulation kernel
  (:mod:`repro.sim`);
* experiment drivers reproducing every table and figure of the evaluation
  (:mod:`repro.experiments`), plus a convenience testbed
  (:mod:`repro.testbed`).

Quickstart
----------

>>> from repro.testbed import LiveDevelopmentTestbed, OperationSpec
>>> from repro.rmitypes import INT
>>> testbed = LiveDevelopmentTestbed()
>>> calc, _ = testbed.create_soap_server(
...     "Calculator",
...     [OperationSpec("add", (("a", INT), ("b", INT)), INT,
...                    body=lambda self, a, b: a + b)],
... )
>>> testbed.publish_now("Calculator")
>>> client = testbed.connect_soap_client("Calculator")
>>> client.invoke("add", 2, 3)
5
"""

from repro.errors import ReproError
from repro.interface import InterfaceDescription, OperationSignature, Parameter
from repro.rmitypes import (
    ArrayType,
    BOOLEAN,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    STRING,
    StructType,
    FieldDef,
    VOID,
)
from repro.testbed import LiveDevelopmentTestbed, OperationSpec

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "InterfaceDescription",
    "OperationSignature",
    "Parameter",
    "ArrayType",
    "StructType",
    "FieldDef",
    "INT",
    "DOUBLE",
    "FLOAT",
    "BOOLEAN",
    "STRING",
    "CHAR",
    "VOID",
    "LiveDevelopmentTestbed",
    "OperationSpec",
    "__version__",
]
