"""``repro`` — live development middleware for SOAP and CORBA servers.

A from-scratch Python reproduction of *Supporting Live Development of SOAP
and CORBA Servers* (Pallemulle, Goldman & Morgan, WUCSE-2004-75 / ICDCS
2005).  The package contains:

* the paper's contribution — the **SDE** server development environment
  (:mod:`repro.core.sde`), the companion **CDE** client environment
  (:mod:`repro.core.cde`) and the joint consistency protocol
  (:mod:`repro.core.protocol`);
* every substrate it depends on, implemented from scratch: a JPie-style
  dynamic-class environment (:mod:`repro.jpie`), a SOAP/WSDL stack
  (:mod:`repro.soap`), a CORBA stack with IDL/IOR/GIOP/ORB/DII/DSI
  (:mod:`repro.corba`), an HTTP substrate and simulated network
  (:mod:`repro.net`), and a deterministic discrete-event simulation kernel
  (:mod:`repro.sim`);
* the declarative **Scenario API** (:mod:`repro.cluster`) — one
  protocol-agnostic entry point that describes an N-server × M-client
  world (replicated services, routing policies, client fleets with
  protocol mixes, a timeline of developer actions) and runs it
  deterministically;
* the deterministic **fault-injection subsystem** (:mod:`repro.faults`) —
  crashes, restarts, partitions and lossy links as timeline actions, with
  failover-aware routing and a client :class:`~repro.faults.RetryPolicy`,
  so resilience scenarios can prove the §6 recency guarantee under
  failure;
* the **interface-evolution subsystem** (:mod:`repro.evolve`) — a typed
  diff engine over published WSDL/IDL documents (compatible vs. breaking
  publications), per-service version graphs with version-aware routing,
  and ``rolling`` / ``canary`` / ``abort_rollout`` upgrade drills that
  move an N-replica fleet to a new interface while hundreds of clients
  keep calling;
* the **observability layer** (:mod:`repro.obs`) — deterministic causal
  span trees per client call (propagated in-band over SOAP headers and
  GIOP service contexts), simulated-time metrics sampling and a flight
  recorder that auto-dumps the recent span window when an invariant
  trips; any scenario opts in with ``scenario.run(obs=True)``;
* experiment drivers reproducing every table and figure of the evaluation
  (:mod:`repro.experiments`), plus the legacy two-host testbed
  (:mod:`repro.testbed`), now a thin adapter over the cluster layer.

Quickstart
----------

Describe a world declaratively and run it:

>>> from repro import Scenario, op, STRING
>>> report = (
...     Scenario()
...     .servers(2)
...     .service("Echo", [op("echo", (("m", STRING),), STRING,
...                          body=lambda self, m: m)], replicas=2)
...     .clients(8, service="Echo", calls=5, arguments=("ping",))
...     .run()
... )
>>> report.total_successes
40

or build it for interactive live development (the paper's §4 workflow):

>>> from repro import INT
>>> world = (
...     Scenario()
...     .service("Calculator", [op("add", (("a", INT), ("b", INT)), INT,
...                                body=lambda self, a, b: a + b)])
...     .build()
... )
>>> world.publish()
>>> client = world.connect("Calculator")
>>> client.invoke("add", 2, 3)
5
"""

from repro.cluster import (
    ClientReport,
    ClusterReport,
    CohortModel,
    CohortReport,
    Scenario,
    ScenarioRuntime,
    ServiceReport,
    churn,
    edit,
    op,
    publish,
)
from repro.errors import ReproError
from repro.evolve import (
    InterfaceDelta,
    InterfaceUpgrade,
    abort_rollout,
    canary,
    diff_descriptions,
    diff_documents,
    rolling,
    upgrade,
)
from repro.faults import (
    RetryPolicy,
    crash,
    drop_link,
    heal,
    partition,
    restart,
    restore_link,
)
from repro.interface import InterfaceDescription, OperationSignature, Parameter
from repro.obs import ObsConfig, Observability
from repro.rmitypes import (
    ArrayType,
    BOOLEAN,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    STRING,
    StructType,
    FieldDef,
    VOID,
)
from repro.testbed import LiveDevelopmentTestbed, OperationSpec

__version__ = "1.8.0"

__all__ = [
    "ReproError",
    "InterfaceDescription",
    "OperationSignature",
    "Parameter",
    "ArrayType",
    "StructType",
    "FieldDef",
    "INT",
    "DOUBLE",
    "FLOAT",
    "BOOLEAN",
    "STRING",
    "CHAR",
    "VOID",
    "Scenario",
    "ScenarioRuntime",
    "ClusterReport",
    "ClientReport",
    "ServiceReport",
    "CohortModel",
    "CohortReport",
    "op",
    "edit",
    "publish",
    "churn",
    "rolling",
    "canary",
    "abort_rollout",
    "upgrade",
    "InterfaceUpgrade",
    "InterfaceDelta",
    "diff_descriptions",
    "diff_documents",
    "crash",
    "restart",
    "partition",
    "heal",
    "drop_link",
    "restore_link",
    "RetryPolicy",
    "ObsConfig",
    "Observability",
    "LiveDevelopmentTestbed",
    "OperationSpec",
    "__version__",
]
