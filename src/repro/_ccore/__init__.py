"""Build-artifact package for the optional compiled simulation core.

``tools/build_compiled_core.py`` compiles ``repro.sim._scheduler_impl`` and
``repro.net._simnet_impl`` (the exact sources the pure-Python backend runs)
into extension modules placed here as ``repro._ccore._scheduler_impl`` and
``repro._ccore._simnet_impl``.  :mod:`repro._backend` selects them at import
when present; nothing in this package is ever authored by hand, and source
(``.py``) copies are deliberately not accepted as a backend (see
``repro._backend._find_compiled``).
"""
