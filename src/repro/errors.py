"""Shared exception hierarchy for the ``repro`` package.

Every layer of the system (simulation kernel, network substrate, SOAP and
CORBA stacks, the JPie dynamic-class environment, and the SDE/CDE middleware)
raises exceptions rooted at :class:`ReproError` so that applications can catch
the whole family with a single handler while tests can assert on precise
subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event simulation kernel."""


class ClockError(SimulationError):
    """Raised when the virtual clock would be moved backwards."""


class SchedulerError(SimulationError):
    """Raised on invalid scheduler operations (e.g. negative delays)."""


class DeadlockError(SimulationError):
    """Raised when the scheduler is asked to wait for a condition that can
    never become true because no further events are pending."""


# ---------------------------------------------------------------------------
# Network substrate
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for errors raised by the simulated network."""


class HostNotFoundError(NetworkError):
    """Raised when a message is addressed to an unknown host."""


class PortInUseError(NetworkError):
    """Raised when binding a listener to a port that is already bound."""


class ConnectionRefusedError(NetworkError):
    """Raised when no listener is bound to the destination port."""


class TransportError(NetworkError):
    """Raised when a message cannot be delivered (e.g. network partition)."""


class ConnectionAbortedError(TransportError):
    """Raised (asynchronously, through a failed :class:`Deferred`) when an
    in-flight request's connection is torn down — the peer crashed or the
    fault layer aborted the link — so callers fail fast instead of hanging."""


class HttpError(NetworkError):
    """Raised for malformed HTTP messages or client-side HTTP failures."""


# ---------------------------------------------------------------------------
# XML utilities
# ---------------------------------------------------------------------------


class XmlError(ReproError):
    """Raised for malformed XML documents or invalid qualified names."""


# ---------------------------------------------------------------------------
# SOAP stack
# ---------------------------------------------------------------------------


class SoapError(ReproError):
    """Base class for SOAP-stack errors."""


class SoapEncodingError(SoapError):
    """Raised when a value cannot be encoded to, or decoded from, SOAP XML."""


class SoapFaultError(SoapError):
    """Raised on the client side when a SOAP Fault is received.

    Attributes
    ----------
    fault:
        The decoded :class:`repro.soap.faults.SoapFault` carried by the
        response.
    """

    def __init__(self, fault):
        super().__init__(str(fault))
        self.fault = fault


class WsdlError(SoapError):
    """Raised for malformed or inconsistent WSDL documents."""


# ---------------------------------------------------------------------------
# CORBA stack
# ---------------------------------------------------------------------------


class CorbaError(ReproError):
    """Base class for CORBA-stack errors."""


class IdlError(CorbaError):
    """Raised for malformed or inconsistent CORBA-IDL documents."""


class IorError(CorbaError):
    """Raised when an Interoperable Object Reference cannot be parsed."""


class GiopError(CorbaError):
    """Raised for malformed GIOP messages."""


class MarshalError(CorbaError):
    """Raised when a value cannot be marshalled into, or from, CDR form."""


class CorbaSystemException(CorbaError):
    """CORBA system exception surfaced to the client (BAD_OPERATION, ...).

    Attributes
    ----------
    name:
        The CORBA system exception name, e.g. ``"BAD_OPERATION"``.
    minor:
        Minor code giving vendor-specific detail.
    """

    def __init__(self, name: str, detail: str = "", minor: int = 0):
        super().__init__(f"{name}: {detail}" if detail else name)
        self.name = name
        self.detail = detail
        self.minor = minor


class CorbaUserException(CorbaError):
    """A user exception raised by a servant and propagated to the client."""

    def __init__(self, type_name: str, message: str = ""):
        super().__init__(f"{type_name}: {message}" if message else type_name)
        self.type_name = type_name
        self.message = message


# ---------------------------------------------------------------------------
# JPie dynamic-class environment
# ---------------------------------------------------------------------------


class JPieError(ReproError):
    """Base class for errors raised by the dynamic-class environment."""


class DynamicClassError(JPieError):
    """Raised on invalid dynamic-class mutations (duplicate members, ...)."""


class MemberNotFoundError(JPieError):
    """Raised when a dynamic method or field lookup fails."""


class SignatureError(JPieError):
    """Raised when a call does not match any live method signature."""


class ExportError(JPieError):
    """Raised when a dynamic class cannot be exported to a static class."""


# ---------------------------------------------------------------------------
# SDE / CDE middleware (the paper's contribution)
# ---------------------------------------------------------------------------


class MiddlewareError(ReproError):
    """Base class for SDE/CDE middleware errors."""


class DeploymentError(MiddlewareError):
    """Raised when automated deployment of a server class fails."""


class ServerNotInitializedError(MiddlewareError):
    """Raised (and transmitted as a fault) when a call arrives before any
    instance of the gateway subclass exists — §5.1.3 of the paper."""


class NonExistentMethodError(MiddlewareError):
    """Raised (and transmitted as a fault) when a client invokes a method
    that is no longer part of the server interface — §5.7 of the paper."""

    def __init__(self, operation: str, interface_version: int | None = None):
        detail = f"Non existent Method: {operation}"
        if interface_version is not None:
            detail += f" (published interface version {interface_version})"
        super().__init__(detail)
        self.operation = operation
        self.interface_version = interface_version


class MalformedRequestError(MiddlewareError):
    """Raised when an incoming RMI request cannot be parsed — §5.1.3."""


class RemoteApplicationError(MiddlewareError):
    """Raised on the client when the server method threw an exception.

    The original exception is wrapped in a fault by the call handler
    (§5.1.3/§5.2.3); CDE surfaces it as this error so client code can
    distinguish application failures from middleware conditions.
    """

    def __init__(self, detail: str):
        super().__init__(detail)
        self.detail = detail


class PublicationError(MiddlewareError):
    """Raised when the interface publisher cannot generate or publish a
    server interface description."""


class TechnologyError(MiddlewareError):
    """Raised when an unknown or misconfigured technology plug-in is used."""


class StubError(MiddlewareError):
    """Raised by CDE when a client stub cannot be built or refreshed."""


# -- cluster / scenario layer ------------------------------------------------------


class ClusterError(ReproError):
    """Raised by the declarative Scenario API (:mod:`repro.cluster`)."""


class ServiceNotFoundError(ClusterError):
    """Raised when a scenario references a service the registry does not know."""


class NoAliveReplicaError(ClusterError):
    """Raised when every replica of a service is crashed (or removed) at
    selection time; clients with a retry policy treat it as a retryable
    failure and wait for a restart."""


# -- traffic layer -----------------------------------------------------------------


class TraceError(ClusterError):
    """Raised by the trace record/replay layer (:mod:`repro.traffic.trace`):
    unversioned or malformed trace files, and scenarios that cannot be
    serialised (unregistered operation bodies, non-JSON arguments,
    untraceable timeline actions)."""


# -- interface-evolution layer -----------------------------------------------------


class EvolveError(ReproError):
    """Raised by the interface-evolution subsystem (:mod:`repro.evolve`)."""


class RolloutError(EvolveError):
    """Raised on invalid rollout plans (overlapping rollouts, empty upgrades)."""
