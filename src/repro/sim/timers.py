"""Timers built on the event scheduler.

The centrepiece is :class:`ResettableTimer`, which models the paper's
stable-change detection mechanism (§5.6): every relevant change *resets* the
countdown, and only when the timer is allowed to expire — i.e. the interface
has been stable for the whole timeout — does the publication callback fire.
The SDE Manager Interface's "manually trigger the publication ... by forcing
timer expiration" maps to :meth:`ResettableTimer.force_expire`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SchedulerError
from repro.sim.scheduler import Event, Scheduler
from repro.util.validation import require_positive


class ResettableTimer:
    """A one-shot countdown timer whose countdown can be restarted.

    The timer is *not* started on construction; callers invoke
    :meth:`start` (or :meth:`reset`, which is equivalent when the timer is
    idle) whenever a triggering change occurs.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        timeout: float,
        callback: Callable[[], None],
        label: str = "resettable-timer",
    ) -> None:
        require_positive(timeout, "timeout")
        self._scheduler = scheduler
        self._timeout = float(timeout)
        self._callback = callback
        self._label = label
        self._event: Event | None = None
        self.expirations = 0
        self.resets = 0

    # -- configuration ----------------------------------------------------

    @property
    def timeout(self) -> float:
        """The current countdown length in seconds."""
        return self._timeout

    @timeout.setter
    def timeout(self, value: float) -> None:
        """Change the countdown length.

        A running countdown keeps its original deadline; the new value takes
        effect from the next start/reset.  This matches the paper's user
        control: the developer tunes the publication interval through the SDE
        Manager Interface, affecting subsequent countdowns.
        """
        require_positive(value, "timeout")
        self._timeout = float(value)

    @property
    def running(self) -> bool:
        """True while a countdown is in progress."""
        return self._event is not None and self._event.pending

    @property
    def deadline(self) -> float | None:
        """The virtual time at which the running countdown will expire."""
        if self._event is not None and self._event.pending:
            return self._event.time
        return None

    # -- operations -------------------------------------------------------

    def start(self) -> None:
        """Start (or restart) the countdown from the full timeout."""
        self.reset()

    def reset(self) -> None:
        """Restart the countdown from the full timeout value.

        If the timer is idle this behaves like :meth:`start`; if it is
        running, the pending expiration is cancelled and replaced.
        """
        if self._event is not None and self._event.pending:
            self._event.cancel()
            self.resets += 1
        self._event = self._scheduler.schedule(
            self._timeout, self._expire, label=self._label
        )

    def cancel(self) -> None:
        """Stop the countdown without firing the callback."""
        if self._event is not None and self._event.pending:
            self._event.cancel()
        self._event = None

    def force_expire(self) -> None:
        """Fire the callback immediately and stop any running countdown.

        Used by the SDE Manager Interface to let the developer publish the
        server interface on demand (§5.6).
        """
        self.cancel()
        self._fire()

    # -- internals --------------------------------------------------------

    def _expire(self) -> None:
        self._event = None
        self._fire()

    def _fire(self) -> None:
        self.expirations += 1
        self._callback()

    def __repr__(self) -> str:
        state = f"expires at {self.deadline:.6f}" if self.running else "idle"
        return f"ResettableTimer({self._label!r}, timeout={self._timeout}, {state})"


class PeriodicTimer:
    """A repeating timer used by the polling-based publication strategy.

    The paper rejects pure polling for interface publication (§5.6); the
    ablation benchmark ``bench_publication_strategies`` implements the polling
    strategy with this class to quantify why.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        interval: float,
        callback: Callable[[], None],
        label: str = "periodic-timer",
    ) -> None:
        require_positive(interval, "interval")
        self._scheduler = scheduler
        self._interval = float(interval)
        self._callback = callback
        self._label = label
        self._event: Event | None = None
        self._running = False
        self.ticks = 0

    @property
    def interval(self) -> float:
        """Seconds between consecutive ticks."""
        return self._interval

    @property
    def running(self) -> bool:
        """True while the timer is ticking."""
        return self._running

    def start(self) -> None:
        """Begin ticking; the first tick occurs one interval from now."""
        if self._running:
            raise SchedulerError("periodic timer is already running")
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop ticking."""
        self._running = False
        if self._event is not None and self._event.pending:
            self._event.cancel()
        self._event = None

    def _schedule_next(self) -> None:
        self._event = self._scheduler.schedule(
            self._interval, self._tick, label=self._label
        )

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self._callback()
        if self._running:
            self._schedule_next()

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        return f"PeriodicTimer({self._label!r}, interval={self._interval}, {state})"
