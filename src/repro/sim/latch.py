"""Completion latch used to express blocking operations on the simulator.

Synchronous RMI calls, the §5.7 "stall incoming messages until the publisher
catches up" behaviour and several tests all need a way to say "wait here until
some other simulated component signals completion".  In the real system this
would be a thread blocking on a monitor; on the single-threaded simulator we
model it with a latch plus ``Scheduler.run_until``.
"""

from __future__ import annotations

from typing import Any, Generic, TypeVar

from repro.errors import SimulationError
from repro.sim.scheduler import Scheduler

T = TypeVar("T")


class CompletionLatch(Generic[T]):
    """A single-use latch carrying either a value or an error."""

    def __init__(self, scheduler: Scheduler, description: str = "operation") -> None:
        self._scheduler = scheduler
        self._description = description
        self._completed = False
        self._value: T | None = None
        self._error: BaseException | None = None

    @property
    def completed(self) -> bool:
        """True once :meth:`complete` or :meth:`fail` has been called."""
        return self._completed

    def complete(self, value: T) -> None:
        """Mark the latch as successfully completed with ``value``."""
        if self._completed:
            raise SimulationError(f"{self._description} completed twice")
        self._completed = True
        self._value = value

    def fail(self, error: BaseException) -> None:
        """Mark the latch as failed; :meth:`wait` will re-raise ``error``."""
        if self._completed:
            raise SimulationError(f"{self._description} completed twice")
        self._completed = True
        self._error = error

    def wait(self, max_events: int = 1_000_000) -> T:
        """Drive the scheduler until the latch completes, then return/raise.

        Raises
        ------
        DeadlockError
            If the event queue drains before the latch is completed.
        """
        self._scheduler.run_until(
            lambda: self._completed,
            max_events=max_events,
            description=self._description,
        )
        if self._error is not None:
            raise self._error
        return self._value  # type: ignore[return-value]

    def peek(self) -> Any:
        """Return the completed value without driving the scheduler."""
        if not self._completed:
            raise SimulationError(f"{self._description} has not completed yet")
        if self._error is not None:
            raise self._error
        return self._value
