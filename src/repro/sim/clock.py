"""Virtual clock for the discrete-event simulation kernel."""

from __future__ import annotations

from repro.errors import ClockError


class Clock:
    """A monotonically non-decreasing virtual clock measured in seconds.

    The clock is advanced exclusively by the :class:`repro.sim.Scheduler` as
    it dispatches events; application code only reads it.  Keeping the unit in
    (floating point) seconds mirrors the paper's reporting of round-trip
    times in seconds (Table 1).
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at a negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """The current virtual time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises
        ------
        ClockError
            If ``time`` is earlier than the current time.  Equal times are
            allowed so that several events scheduled for the same instant can
            be dispatched in order.
        """
        if time < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {time}"
            )
        self._now = float(time)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise ClockError(f"cannot advance clock by a negative delta: {delta}")
        self._now += float(delta)

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.6f})"
