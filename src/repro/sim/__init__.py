"""Discrete-event simulation kernel.

The original system runs on real wall-clock time (JVM timers, LAN latency).
To make the paper's timing-sensitive mechanisms — the stable-change publisher
(§5.6), the stale-call blocking protocol (§5.7) and the client/server
interleavings of Figures 7 and 8 — deterministic and testable, everything in
this reproduction is driven by a virtual clock and an event scheduler.
"""

from repro.sim.clock import Clock
from repro.sim.scheduler import Event, EventStream, Scheduler
from repro.sim.servercore import ServerCore
from repro.sim.timers import ResettableTimer, PeriodicTimer
from repro.sim.latch import CompletionLatch

__all__ = [
    "Clock",
    "Event",
    "EventStream",
    "Scheduler",
    "ServerCore",
    "ResettableTimer",
    "PeriodicTimer",
    "CompletionLatch",
]
