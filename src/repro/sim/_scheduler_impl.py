"""Event scheduler driving the whole simulated system.

The scheduler owns the virtual :class:`~repro.sim.clock.Clock` and a priority
queue of pending events.  Network message deliveries, publication timers,
simulated processing delays and workload arrivals are all events; running the
scheduler to quiescence therefore executes the distributed system
deterministically in a single OS thread.

Hot-path invariants (the fleet sweeps dispatch millions of events per run):

* heap entries are plain ``(time, sequence, event)`` tuples — comparisons
  stay in C, never in a ``__lt__`` written in Python;
* :attr:`Scheduler.pending_count` is a live counter maintained by
  ``schedule``/``cancel``/dispatch, never a queue scan;
* cancelled events stay in the heap and are purged lazily — when they surface
  at the top, in one O(n) sweep once they outnumber the live entries (checked
  on every cancel *and* on every :attr:`Scheduler.pending_count` read, so an
  idle cancel-heavy heap cannot hold dead entries indefinitely);
* dispatch avoids the ``**kwargs`` unpacking path when a callback was
  scheduled without keyword arguments (the overwhelmingly common case);
* internal fire-and-forget events (network deliveries, in-order sends,
  processing completions) are arena-allocated: :meth:`Scheduler.schedule_pooled`
  recycles :class:`Event` objects through a free list, bumping a per-object
  ``generation`` counter on reuse so holders that snapshot the generation can
  still decide liveness correctly (see :meth:`Event.is_generation`).

Partitioned event streams
-------------------------

:meth:`Scheduler.partition` splits the queue into named
:class:`EventStream` partitions (the cluster layer keeps one per server
node) while preserving the global dispatch contract exactly: every event —
whichever stream it was scheduled on — carries a timestamp and a ticket
from one *global* sequence counter, and dispatch always runs the globally
minimal ``(time, sequence)`` entry next.  Scattering events over streams
therefore never changes the dispatch order relative to the single-heap
scheduler (pinned by the determinism-fingerprint test in
``tests/sim/test_partitioned_scheduler.py``); what it buys is a queue
*shape* that scales with the number of streams, not the number of
producers — per-server flow aggregates stay O(servers) entries deep — and
a seam along which one world can later be sharded across processes.  A
scheduler that never partitions pays nothing: the single-queue dispatch
fast path is only left once the first partition exists.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable

from repro.errors import DeadlockError, SchedulerError
from repro.sim.clock import Clock

#: Queue size below which the lazy cancel purge is never triggered.
_PURGE_MIN_QUEUE = 64

#: Maximum number of recycled Event objects kept on the free list.  Sized for
#: the deepest same-instant delivery cascades the fleet sweeps produce; beyond
#: it, surplus events simply fall back to the garbage collector.
_EVENT_POOL_LIMIT = 2048


def _recycled() -> None:
    """Sentinel callback installed on free-listed events.

    Dispatching it means an event was recycled while still in the heap —
    free-list corruption that must fail loudly, not silently misdispatch.
    """
    raise SchedulerError("recycled event dispatched: free-list corruption")


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Scheduler.schedule` so callers can cancel
    them (the §5.6 publication timer does this when it is *reset*).
    """

    __slots__ = (
        "time",
        "callback",
        "args",
        "kwargs",
        "cancelled",
        "dispatched",
        "label",
        "generation",
        "recyclable",
        "_scheduler",
    )

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple,
        kwargs: dict | None,
        label: str,
        scheduler: "Scheduler | None" = None,
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.dispatched = False
        self.label = label
        #: Incarnation counter: bumped each time a pooled event is reused.
        #: Holders that may outlive one incarnation snapshot it at schedule
        #: time and decide liveness with :meth:`is_generation`.
        self.generation = 0
        #: True for events allocated through :meth:`Scheduler.schedule_pooled`;
        #: such events return to the scheduler's free list after dispatch.
        self.recyclable = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from running when its time arrives.

        Cancelling an event that already ran (or was already cancelled) is a
        no-op, so callers may cancel defensively without corrupting the
        scheduler's pending accounting.
        """
        if self.cancelled or self.dispatched:
            return
        self.cancelled = True
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler._note_cancelled()

    @property
    def pending(self) -> bool:
        """True while the event is neither cancelled nor dispatched."""
        return not self.cancelled and not self.dispatched

    def is_generation(self, generation: int) -> bool:
        """True while this object still holds the incarnation ``generation``.

        Pooled events are reused after dispatch, so ``pending`` alone is not a
        safe liveness check for a holder that may outlive one incarnation:
        combine it with a generation snapshot taken at schedule time
        (``event.pending and event.is_generation(snapshot)``).
        """
        return self.generation == generation

    def __repr__(self) -> str:
        # ``dispatched`` wins: an event that ran is "done" even if someone
        # called cancel() on it afterwards.
        state = "done" if self.dispatched else ("cancelled" if self.cancelled else "pending")
        return f"Event({self.label!r} at {self.time:.6f}, {state})"


class Scheduler:
    """Priority-queue based discrete-event scheduler.

    Determinism: events are dispatched in ``(time, insertion order)`` order,
    so two events scheduled for the same instant run in the order they were
    scheduled.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else Clock()
        #: Heap of ``(time, sequence, event)`` tuples.
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._dispatched_count = 0
        self._pending = 0
        self._cancelled_in_queue = 0
        self._last_event: Event | None = None
        #: Dispatch trace: a plain list, or a bounded deque when
        #: ``enable_tracing`` was given a limit.
        self._trace: "list[tuple[float, str]] | deque[tuple[float, str]] | None" = None
        #: Free list of recycled pooled events (see :meth:`schedule_pooled`).
        self._free: list[Event] = []
        #: Named partitions (see :meth:`partition`).  ``_extra_queues`` holds
        #: their raw heaps; dispatch leaves the single-queue fast path only
        #: while this list is non-empty.
        self._partitions: dict[Any, "EventStream"] = {}
        self._extra_queues: list[list[tuple[float, int, Event]]] = []

    # -- inspection -------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    @property
    def pending_count(self) -> int:
        """Number of events still waiting to be dispatched (O(1) amortised).

        Reading the counter also gives the lazy cancel purge a chance to run:
        dispatches shrink the heap without touching cancelled entries, so an
        idle cancel-heavy heap could otherwise hold its dead entries until the
        *next* cancel arrives (possibly never).
        """
        if self._cancelled_in_queue:
            self._maybe_purge()
        return self._pending

    @property
    def dispatched_count(self) -> int:
        """Number of events dispatched since the scheduler was created."""
        return self._dispatched_count

    @property
    def last_event(self) -> Event | None:
        """The most recently scheduled event (used by delivery batching)."""
        return self._last_event

    def enable_tracing(self, limit: int | None = None) -> None:
        """Record ``(time, label)`` for every dispatched event.

        Tracing is used by the interleaving experiments (Figures 7 and 8) to
        report the exact order in which publication and RMI events occurred.
        ``limit`` bounds the trace to the most recent entries (a ring
        buffer, the same memory discipline as the observability layer's
        span ring); ``None`` keeps the historical unbounded list.
        """
        self._trace = [] if limit is None else deque(maxlen=limit)

    @property
    def tracing(self) -> bool:
        """True once :meth:`enable_tracing` was called.

        Hot paths check this before building descriptive f-string labels so
        untraced runs skip the string formatting entirely.
        """
        return self._trace is not None

    @property
    def trace(self) -> list[tuple[float, str]]:
        """The recorded dispatch trace (empty unless tracing is enabled)."""
        return list(self._trace or [])

    # -- scheduling -------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "event",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds
        from now and return the corresponding :class:`Event`."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule an event in the past (delay={delay})")
        event = Event(
            self.clock.now + delay, callback, args, kwargs or None, label, self
        )
        heapq.heappush(self._queue, (event.time, next(self._sequence), event))
        self._pending += 1
        self._last_event = event
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "event",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` to run at absolute virtual time ``time``."""
        if time < self.clock.now:
            raise SchedulerError(
                f"cannot schedule an event at {time} before current time {self.now}"
            )
        event = Event(time, callback, args, kwargs or None, label, self)
        heapq.heappush(self._queue, (time, next(self._sequence), event))
        self._pending += 1
        self._last_event = event
        return event

    def call_soon(
        self, callback: Callable[..., None], *args: Any, label: str = "soon", **kwargs: Any
    ) -> Event:
        """Schedule ``callback`` to run at the current virtual time."""
        return self.schedule(0.0, callback, *args, label=label, **kwargs)

    def schedule_pooled(
        self, delay: float, callback: Callable[..., None], *args: Any, label: str = "event"
    ) -> Event:
        """Schedule a fire-and-forget callback on an arena-allocated event.

        The hot internal paths (network deliveries, in-order sends, processing
        completions) schedule hundreds of thousands of events per fleet sweep
        and never cancel them; allocating a fresh :class:`Event` for each is
        the dominant allocation churn of :meth:`run_until_idle`.  This variant
        reuses dispatched events through a free list instead.

        Contract for callers: the returned event is only yours until it
        dispatches.  Never call :meth:`Event.cancel` on it afterwards (it may
        already be another incarnation), and guard any retained reference with
        a ``generation`` snapshot (``event.pending and
        event.is_generation(snapshot)``).  Keyword arguments are not
        supported.  External code that wants a cancellable, indefinitely
        holdable event must use :meth:`schedule`.
        """
        if delay < 0:
            raise SchedulerError(f"cannot schedule an event in the past (delay={delay})")
        time = self.clock.now + delay
        free = self._free
        if free:
            event = free.pop()
            event.generation += 1
            event.time = time
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.dispatched = False
            event.label = label
        else:
            event = Event(time, callback, args, None, label, self)
            event.recyclable = True
        heapq.heappush(self._queue, (time, next(self._sequence), event))
        self._pending += 1
        self._last_event = event
        return event

    # -- partitions -------------------------------------------------------

    def partition(self, key: Any) -> "EventStream":
        """Return the :class:`EventStream` partition for ``key``, creating it
        on first use.

        Partitions share this scheduler's clock, pending accounting and —
        crucially — its global sequence counter, so events scheduled on any
        mix of streams dispatch in exactly the ``(time, insertion order)``
        order the single shared queue would have produced.  Creating the
        first partition switches dispatch to the merged path; a scheduler
        that never calls this keeps the single-queue fast path.
        """
        stream = self._partitions.get(key)
        if stream is None:
            heap: list[tuple[float, int, Event]] = []
            stream = EventStream(self, key, heap)
            self._partitions[key] = stream
            self._extra_queues.append(heap)
        return stream

    @property
    def partition_count(self) -> int:
        """Number of partitions created via :meth:`partition`."""
        return len(self._partitions)

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Dispatch the next pending event.

        Returns ``True`` if an event was dispatched, ``False`` if the queue
        was empty (cancelled events are discarded silently).
        """
        if self._extra_queues:
            queue = self._min_live_queue()
            if queue is None:
                return False
            _time, _seq, event = heapq.heappop(queue)
            self.clock.advance_to(event.time)
            event.dispatched = True
            self._pending -= 1
            self._dispatched_count += 1
            if self._trace is not None:
                self._trace.append((event.time, event.label))
            kwargs = event.kwargs
            if kwargs:
                event.callback(*event.args, **kwargs)
            else:
                event.callback(*event.args)
                if event.recyclable:
                    free = self._free
                    if len(free) < _EVENT_POOL_LIMIT:
                        event.callback = _recycled
                        event.args = ()
                        free.append(event)
            return True
        queue = self._queue
        while queue:
            _time, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            self.clock.advance_to(event.time)
            event.dispatched = True
            self._pending -= 1
            self._dispatched_count += 1
            if self._trace is not None:
                self._trace.append((event.time, event.label))
            kwargs = event.kwargs
            if kwargs:
                event.callback(*event.args, **kwargs)
            else:
                event.callback(*event.args)
                if event.recyclable:
                    # Return the event to the arena (only after a clean
                    # dispatch: an event whose callback raised may be
                    # inspected by error handlers, and a cancelled one may
                    # still be cancelled again by its holder).
                    free = self._free
                    if len(free) < _EVENT_POOL_LIMIT:
                        event.callback = _recycled
                        event.args = ()
                        free.append(event)
            return True
        return False

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Dispatch events until none remain; return the number dispatched.

        ``max_events`` guards against runaway event loops (a periodic timer
        that never stops, for instance) turning a test into an infinite loop.
        """
        dispatched = 0
        while self.step():
            dispatched += 1
            if dispatched >= max_events:
                raise SchedulerError(
                    f"run_until_idle dispatched {max_events} events without quiescing"
                )
        return dispatched

    def run_for(self, duration: float, max_events: int = 1_000_000) -> int:
        """Run events for ``duration`` seconds of virtual time.

        The clock always ends exactly ``duration`` seconds later, even if the
        queue drains early.
        """
        if duration < 0:
            raise SchedulerError(f"duration must be non-negative, got {duration}")
        deadline = self.now + duration
        dispatched = self.run_until_time(deadline, max_events=max_events)
        if self.now < deadline:
            self.clock.advance_to(deadline)
        return dispatched

    def run_until_time(self, deadline: float, max_events: int = 1_000_000) -> int:
        """Dispatch every event whose time is ``<= deadline``."""
        dispatched = 0
        if self._extra_queues:
            while True:
                queue = self._min_live_queue()
                if queue is None or queue[0][0] > deadline:
                    break
                self.step()
                dispatched += 1
                if dispatched >= max_events:
                    raise SchedulerError(
                        f"run_until_time dispatched {max_events} events "
                        "without reaching the deadline"
                    )
            if self.now < deadline:
                self.clock.advance_to(deadline)
            return dispatched
        while self._queue:
            entry = self._queue[0]
            if entry[2].cancelled:
                heapq.heappop(self._queue)
                self._cancelled_in_queue -= 1
                continue
            if entry[0] > deadline:
                break
            self.step()
            dispatched += 1
            if dispatched >= max_events:
                raise SchedulerError(
                    f"run_until_time dispatched {max_events} events without reaching the deadline"
                )
        if self.now < deadline and not self._has_pending_before(deadline):
            self.clock.advance_to(deadline)
        return dispatched

    def run_until(
        self,
        condition: Callable[[], bool],
        max_events: int = 1_000_000,
        description: str = "condition",
    ) -> int:
        """Dispatch events until ``condition()`` becomes true.

        This is the mechanism behind every *blocking* operation in the
        system: a client issuing a synchronous RMI call posts the request and
        then drives the scheduler until the reply has been delivered.

        Raises
        ------
        DeadlockError
            If the event queue drains while ``condition()`` is still false —
            i.e. nothing in the simulated system can ever satisfy it.
        """
        dispatched = 0
        while not condition():
            if not self.step():
                raise DeadlockError(
                    f"no pending events but {description} is still unsatisfied "
                    f"at t={self.now:.6f}"
                )
            dispatched += 1
            if dispatched >= max_events:
                raise SchedulerError(
                    f"run_until dispatched {max_events} events waiting for {description}"
                )
        return dispatched

    # -- internals --------------------------------------------------------

    def _min_live_queue(self) -> "list[tuple[float, int, Event]] | None":
        """The queue whose live head has the globally minimal ``(time, seq)``.

        Cancelled heads surfacing during the scan are discarded for good.
        Linear in the number of partitions — the cluster layer keeps one per
        server node, so this stays a handful of comparisons per dispatch.
        """
        best_queue = None
        best_time = 0.0
        best_seq = 0
        queue = self._queue
        while queue:
            head = queue[0]
            if head[2].cancelled:
                heapq.heappop(queue)
                self._cancelled_in_queue -= 1
                continue
            best_queue = queue
            best_time = head[0]
            best_seq = head[1]
            break
        for queue in self._extra_queues:
            while queue:
                head = queue[0]
                if head[2].cancelled:
                    heapq.heappop(queue)
                    self._cancelled_in_queue -= 1
                    continue
                if (
                    best_queue is None
                    or head[0] < best_time
                    or (head[0] == best_time and head[1] < best_seq)
                ):
                    best_queue = queue
                    best_time = head[0]
                    best_seq = head[1]
                break
        return best_queue

    def _note_cancelled(self) -> None:
        """Account for an :meth:`Event.cancel`; purge once cancels dominate."""
        self._pending -= 1
        self._cancelled_in_queue += 1
        self._maybe_purge()

    def _maybe_purge(self) -> None:
        """Sweep cancelled heap entries once they outnumber the live ones.

        Called after every cancel and from :attr:`pending_count` reads —
        dispatches shrink the heap too, so the threshold can be crossed
        without any new cancel arriving.
        """
        total = len(self._queue)
        for extra in self._extra_queues:
            total += len(extra)
        if self._cancelled_in_queue > _PURGE_MIN_QUEUE and self._cancelled_in_queue * 2 > total:
            # In-place (slice) assignment: run loops hold references to the
            # queue list across dispatches, and a cancel inside a callback
            # must not strand them on a stale heap.
            queue = self._queue
            queue[:] = [entry for entry in queue if not entry[2].cancelled]
            heapq.heapify(queue)
            for queue in self._extra_queues:
                queue[:] = [entry for entry in queue if not entry[2].cancelled]
                heapq.heapify(queue)
            self._cancelled_in_queue = 0

    def _has_pending_before(self, deadline: float) -> bool:
        # Cancelled entries at the top were already popped by the callers'
        # loops, so the heap minimum decides in O(1) (amortised: any
        # cancelled entries surfacing here are discarded for good).
        if self._extra_queues:
            queue = self._min_live_queue()
            return queue is not None and queue[0][0] <= deadline
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry[2].cancelled:
                heapq.heappop(queue)
                self._cancelled_in_queue -= 1
                continue
            return entry[0] <= deadline
        return False

    def __repr__(self) -> str:
        return (
            f"Scheduler(now={self.now:.6f}, pending={self.pending_count}, "
            f"dispatched={self._dispatched_count})"
        )


class EventStream:
    """One named partition of a :class:`Scheduler`'s event queue.

    Obtained via :meth:`Scheduler.partition`.  A stream is a separate heap
    with the *same* dispatch semantics as the shared queue: timestamps come
    from the shared clock and insertion tickets from the scheduler's global
    sequence counter, so the merged dispatch order is identical to what a
    single queue would produce.  The cluster layer keeps one stream per
    server node and aims cohort-flow settlement events at it, so a
    million-client flow keeps the queue O(servers) deep instead of
    O(in-flight calls), and per-node event populations stay contiguous for
    future multi-process sharding.

    Events scheduled through a stream are ordinary :class:`Event` objects —
    cancellation, pooling-free semantics and tracing all behave exactly as
    for :meth:`Scheduler.schedule`.
    """

    __slots__ = ("scheduler", "key", "_heap")

    def __init__(
        self,
        scheduler: Scheduler,
        key: Any,
        heap: list[tuple[float, int, Event]],
    ) -> None:
        self.scheduler = scheduler
        self.key = key
        self._heap = heap

    def __len__(self) -> int:
        """Entries currently in this stream's heap (may include cancelled)."""
        return len(self._heap)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "event",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` on this stream ``delay`` seconds from now."""
        scheduler = self.scheduler
        if delay < 0:
            raise SchedulerError(f"cannot schedule an event in the past (delay={delay})")
        event = Event(
            scheduler.clock.now + delay, callback, args, kwargs or None, label, scheduler
        )
        heapq.heappush(self._heap, (event.time, next(scheduler._sequence), event))
        scheduler._pending += 1
        scheduler._last_event = event
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "event",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` on this stream at absolute time ``time``."""
        scheduler = self.scheduler
        if time < scheduler.clock.now:
            raise SchedulerError(
                f"cannot schedule an event at {time} before current time {scheduler.now}"
            )
        event = Event(time, callback, args, kwargs or None, label, scheduler)
        heapq.heappush(self._heap, (time, next(scheduler._sequence), event))
        scheduler._pending += 1
        scheduler._last_event = event
        return event

    def call_soon(
        self, callback: Callable[..., None], *args: Any, label: str = "soon", **kwargs: Any
    ) -> Event:
        """Schedule ``callback`` on this stream at the current virtual time."""
        return self.schedule(0.0, callback, *args, label=label, **kwargs)

    def __repr__(self) -> str:
        return f"EventStream({self.key!r}, entries={len(self._heap)})"
