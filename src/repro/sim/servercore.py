"""Bounded server CPU model.

The paper's testbed is one physical server machine (a 3.2 GHz Pentium 4):
when many clients call at once, their XML/CDR processing competes for the
same processor and round-trip times degrade.  The seed reproduction charged
every request's processing delay *in parallel* — unlimited implicit cores —
which kept steady-state RTT unrealistically flat as the fleet grew (the
ROADMAP open item).

:class:`ServerCore` models the machine: a bounded set of cores, each with a
"free again at" virtual time.  Charging a job picks the earliest-free core,
queues the job behind whatever that core is already committed to, and
returns the *total* delay (queueing wait + processing cost) the caller
should schedule.  With one core the server is strictly serial, so N
concurrent requests see RTTs growing roughly linearly in N — the realistic
contention curve the 512-client sweeps measure.

Determinism: ``charge`` is a pure function of the call sequence and the
virtual clock; no wall-clock or randomness is involved, so the workload
determinism contract (same spec → identical per-call RTTs) is preserved.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.scheduler import Scheduler


class ServerCore:
    """A bounded set of CPU cores serialising processing delays.

    Parameters
    ----------
    scheduler:
        The virtual clock the core pool lives on.
    cores:
        Number of cores; processing beyond this concurrency queues.
    """

    __slots__ = (
        "scheduler",
        "cores",
        "_free_at",
        "jobs_charged",
        "contended_jobs",
        "busy_seconds",
        "waited_seconds",
        "max_queue_delay",
    )

    def __init__(self, scheduler: "Scheduler", cores: int) -> None:
        if cores < 1:
            raise SchedulerError(f"a server needs at least one core, got {cores}")
        self.scheduler = scheduler
        self.cores = cores
        #: Min-heap of per-core "free again at" virtual times.
        self._free_at: list[float] = [0.0] * cores
        self.jobs_charged = 0
        #: Jobs that had to wait for a core (saw a busy machine).
        self.contended_jobs = 0
        #: Total CPU-seconds of processing charged.
        self.busy_seconds = 0.0
        #: Total seconds jobs spent queued waiting for a core.
        self.waited_seconds = 0.0
        #: Longest any single job waited for a core.
        self.max_queue_delay = 0.0

    def charge(self, cost: float) -> float:
        """Reserve ``cost`` CPU-seconds on the earliest-free core.

        Returns the total delay from *now* until the job completes:
        the queueing wait (zero on an idle machine) plus ``cost``.
        """
        if cost < 0:
            raise SchedulerError(f"processing cost must be non-negative, got {cost}")
        now = self.scheduler.clock.now
        free_at = heapq.heappop(self._free_at)
        start = free_at if free_at > now else now
        finish = start + cost
        heapq.heappush(self._free_at, finish)
        self.jobs_charged += 1
        self.busy_seconds += cost
        wait = start - now
        if wait > 0:
            self.contended_jobs += 1
            self.waited_seconds += wait
            if wait > self.max_queue_delay:
                self.max_queue_delay = wait
        return finish - now

    def charge_batch(self, cost: float, jobs: int) -> tuple[float, float]:
        """Charge ``jobs`` identical ``cost``-second jobs in one aggregate.

        The cohort-flow layer injects the modeled client mass through here:
        instead of one :meth:`charge` call per modeled request, a whole
        tick's worth of arrivals for one replica lands as a single batch.
        The batch spreads evenly across the core pool — earliest-free cores
        take the remainder first, mirroring how per-job greedy assignment
        fills an idle pool — and each core's queue-wait series is summed in
        closed form, so the call is O(cores) regardless of ``jobs``.

        Returns ``(total_delay, max_delay)``: the sum over all jobs of
        (queue wait + cost), and the single worst job's delay.  Gauges
        (``busy_seconds``, ``waited_seconds``, ``contended_jobs``,
        ``max_queue_delay``) advance exactly as if each job were charged
        individually under the even spread.
        """
        if cost < 0:
            raise SchedulerError(f"processing cost must be non-negative, got {cost}")
        if jobs < 0:
            raise SchedulerError(f"job count must be non-negative, got {jobs}")
        if jobs == 0:
            return (0.0, 0.0)
        now = self.scheduler.clock.now
        free_at = self._free_at
        used = min(jobs, self.cores)
        # Pop in ascending free-time order: the earliest-free cores get the
        # remainder jobs, keeping the spread deterministic.
        starts = [heapq.heappop(free_at) for _ in range(used)]
        base, extra = divmod(jobs, used)
        total_delay = 0.0
        max_delay = 0.0
        for rank in range(used):
            share = base + (1 if rank < extra else 0)
            start = starts[rank]
            if start < now:
                start = now
            wait0 = start - now
            # Waits on this core form an arithmetic series:
            # wait0, wait0+cost, ..., wait0+(share-1)*cost.
            wait_sum = share * wait0 + cost * (share * (share - 1) / 2)
            last_wait = wait0 + (share - 1) * cost
            total_delay += wait_sum + share * cost
            core_max = last_wait + cost
            if core_max > max_delay:
                max_delay = core_max
            self.waited_seconds += wait_sum
            if cost > 0:
                self.contended_jobs += share if wait0 > 0 else share - 1
            elif wait0 > 0:
                self.contended_jobs += share
            if last_wait > self.max_queue_delay:
                self.max_queue_delay = last_wait
            heapq.heappush(free_at, start + share * cost)
        self.jobs_charged += jobs
        self.busy_seconds += cost * jobs
        return (total_delay, max_delay)

    @property
    def busy_cores(self) -> int:
        """Cores currently committed past the present instant."""
        now = self.scheduler.clock.now
        return sum(1 for free_at in self._free_at if free_at > now)

    def __repr__(self) -> str:
        return (
            f"ServerCore(cores={self.cores}, jobs={self.jobs_charged}, "
            f"busy={self.busy_seconds:.4f}s, max_wait={self.max_queue_delay:.4f}s)"
        )
