"""Event scheduler driving the whole simulated system (backend selector).

The implementation lives in :mod:`repro.sim._scheduler_impl`; this module
re-exports it from the compiled core (:mod:`repro._ccore`) when one is built
and enabled, and from the pure-Python module otherwise — see
:mod:`repro._backend` for the selection rules (``REPRO_COMPILED=0`` forces
pure Python).  The public API and behaviour are byte-identical either way;
import :class:`Event`/:class:`Scheduler` from here, never from the
implementation modules directly.
"""

from repro._backend import load_impl as _load_impl

_impl = _load_impl("_scheduler_impl")

Event = _impl.Event
EventStream = _impl.EventStream
Scheduler = _impl.Scheduler

#: Tunables re-exported for tests and diagnostics.
_PURGE_MIN_QUEUE = _impl._PURGE_MIN_QUEUE
_EVENT_POOL_LIMIT = _impl._EVENT_POOL_LIMIT

__all__ = ["Event", "EventStream", "Scheduler"]
