"""Runtime selection of the simulation-core backend (pure vs compiled).

The two hottest modules of the reproduction — the event scheduler and the
simulated network — are published as thin re-export shims
(:mod:`repro.sim.scheduler`, :mod:`repro.net.simnet`) over implementation
modules (``repro.sim._scheduler_impl``, ``repro.net._simnet_impl``).  When a
compiled build of those implementations exists under :mod:`repro._ccore`
(produced by ``tools/build_compiled_core.py`` from the *same* sources), the
shims transparently select it; otherwise the pure-Python implementations
serve.  Everything above the shims is backend-agnostic, and the two backends
are required to be byte-identical in behaviour (asserted by the
compiled-vs-pure equivalence tests on the 4×256 fault-drill scenario).

Selection rules (``REPRO_COMPILED`` environment variable, read once at first
import):

* unset or empty — *auto*: use the compiled core when both extension modules
  are importable, the pure core otherwise;
* ``0`` — force the pure-Python core (the escape hatch, always available);
* ``1`` — require the compiled core; raise :class:`ImportError` with build
  instructions when it is missing (CI uses this so a broken build cannot
  silently fall back and still pass).

Selection is all-or-nothing: the compiled scheduler is never mixed with the
pure simnet or vice versa, so cross-module fast paths (pooled delivery
events, generation snapshots) always see the classes they were compiled
against.  A leftover ``.py`` source copy under ``repro._ccore`` is *not*
accepted as a compiled module — only real extension modules are.
"""

from __future__ import annotations

import importlib
import importlib.util
import os

_COMPILED_PACKAGE = "repro._ccore"

#: Implementation stems -> their pure-Python module paths.
_PURE_MODULES = {
    "_scheduler_impl": "repro.sim._scheduler_impl",
    "_simnet_impl": "repro.net._simnet_impl",
}

#: Tri-state cache: None = not decided yet, True = compiled, False = pure.
_use_compiled: bool | None = None


def _find_compiled(stem: str) -> bool:
    """True when ``repro._ccore.<stem>`` exists as a real extension module."""
    try:
        spec = importlib.util.find_spec(f"{_COMPILED_PACKAGE}.{stem}")
    except (ImportError, ValueError):
        return False
    if spec is None:
        return False
    origin = spec.origin or ""
    # A stray source copy left behind by an interrupted build must not
    # masquerade as the compiled core.
    return not origin.endswith(".py")


def compiled_available() -> bool:
    """True when every implementation module has a compiled build."""
    return all(_find_compiled(stem) for stem in _PURE_MODULES)


def _decide() -> bool:
    requested = os.environ.get("REPRO_COMPILED", "").strip()
    if requested == "0":
        return False
    available = compiled_available()
    if requested == "1" and not available:
        raise ImportError(
            "REPRO_COMPILED=1 requires the compiled simulation core, but "
            f"{_COMPILED_PACKAGE} has no built extension modules. "
            "Build it with: python tools/build_compiled_core.py"
        )
    return available


def load_impl(stem: str):
    """Import and return the selected implementation module for ``stem``."""
    global _use_compiled
    if stem not in _PURE_MODULES:
        raise ImportError(f"unknown simulation-core implementation module {stem!r}")
    if _use_compiled is None:
        _use_compiled = _decide()
    if _use_compiled:
        return importlib.import_module(f"{_COMPILED_PACKAGE}.{stem}")
    return importlib.import_module(_PURE_MODULES[stem])


def compiled_active() -> bool:
    """True when the compiled core is serving (selection happens on demand)."""
    global _use_compiled
    if _use_compiled is None:
        _use_compiled = _decide()
    return _use_compiled


def backend_name() -> str:
    """``"compiled"`` or ``"pure"`` — the backend the shims selected."""
    return "compiled" if compiled_active() else "pure"
