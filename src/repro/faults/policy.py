"""Client-side retry/failover policy for fleet clients.

The policy is deliberately tiny and fully deterministic: every quantity is
a fixed virtual-time constant, so two runs of the same scenario retry at
exactly the same instants.  It is consumed by the cluster fleet driver
(:mod:`repro.cluster.driver`): an attempt that fails at the transport level
(connection aborted by a crash, no alive replica, request timeout) is
reissued — the registry's failover-aware routing then steers the retry to a
replica that is still alive — until the attempt budget is exhausted and the
call is abandoned.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How a fleet client reacts to failed or hung calls.

    ``max_attempts`` bounds the *total* attempts per call (1 = never retry);
    ``timeout`` is the per-attempt reply deadline in virtual seconds
    (``None`` = wait forever — only transport-level failures trigger a
    retry); ``backoff`` is the fixed virtual-time pause before a retry.
    """

    max_attempts: int = 3
    timeout: float | None = None
    backoff: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
