"""Per-link fault profiles: seeded probabilistic loss and bounded jitter.

A :class:`LinkFaultProfile` governs exactly one link *direction* (``A → B``).
Every message transmitted on that direction draws from the profile's private
:class:`~repro.util.rng.DeterministicRng` stream — first a loss draw, then
(when the message survives and the profile jitters) a delay draw — so the
fate of the *n*-th message on a link is a pure function of the seed and the
(deterministic) transmission order.  The network clamps jittered arrivals to
be monotone per direction (see :class:`repro.net.simnet.LinkFault`), so the
transport layer's per-connection FIFO correlation survives any profile.
"""

from __future__ import annotations

from repro.util.rng import DeterministicRng


class LinkFaultProfile:
    """Loss probability plus uniform extra delay for one link direction.

    Parameters
    ----------
    loss:
        Probability in ``[0, 1]`` that a message on this direction is
        dropped (``1.0`` = a hard one-way blackhole).
    jitter:
        Maximum extra one-way delay in virtual seconds; each surviving
        message is delayed by ``uniform(0, jitter)``.
    rng:
        The seeded random stream to draw from; one profile must own its
        stream exclusively (fork per direction, see
        :meth:`repro.faults.FaultInjector.drop_link`).
    """

    def __init__(
        self,
        loss: float = 0.0,
        jitter: float = 0.0,
        rng: DeterministicRng | None = None,
    ) -> None:
        if not 0.0 <= loss <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {loss}")
        if jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.loss = loss
        self.jitter = jitter
        self.rng = rng if rng is not None else DeterministicRng(0)
        #: The network's per-direction ordering clamp (simnet maintains it).
        self.last_arrival = 0.0
        #: Messages this profile dropped / delayed (diagnostics).
        self.dropped = 0
        self.delayed = 0

    def sample(self, size_bytes: int) -> tuple[bool, float]:
        """Decide one message's fate: ``(drop, extra_delay)``.

        Draw order is fixed (loss first, then jitter only for survivors of
        a jittering profile) so the stream stays aligned across runs.
        """
        if self.loss > 0.0 and self.rng.uniform(0.0, 1.0) < self.loss:
            self.dropped += 1
            return True, 0.0
        if self.jitter > 0.0:
            extra = self.rng.uniform(0.0, self.jitter)
            if extra > 0.0:
                self.delayed += 1
            return False, extra
        return False, 0.0

    def __repr__(self) -> str:
        return (
            f"LinkFaultProfile(loss={self.loss}, jitter={self.jitter}, "
            f"dropped={self.dropped}, delayed={self.delayed})"
        )
