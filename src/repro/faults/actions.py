"""Fault timeline actions for the declarative Scenario API.

These compose with :meth:`repro.cluster.Scenario.at` exactly like the
developer actions (``edit`` / ``publish`` / ``churn``)::

    Scenario()
    .servers(4)
    .service("Echo", [op("echo")], replicas=4)
    .clients(64, service="Echo", retry=RetryPolicy(max_attempts=4, timeout=0.5))
    .at(0.10, crash("server-2"))
    .at(0.15, partition("server-3"))       # isolate from everyone
    .at(0.30, heal("server-3"))
    .at(0.40, restart("server-2"))
    .run()

Each helper returns an ``action(runtime)`` callable; the runtime's
:class:`~repro.faults.FaultInjector` does the actual work.  Server
references are names (``"server-2"``), zero-based indexes, or
:class:`~repro.cluster.topology.ServerNode` objects; ``partition`` /
``heal`` / ``drop_link`` also accept plain client host names.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.scenario import ScenarioRuntime
    from repro.faults.injector import NodeRef

Action = Callable[["ScenarioRuntime"], None]


def crash(server: "NodeRef") -> Action:
    """Timeline action: crash a server node (endpoints down, calls aborted)."""

    def action(runtime: "ScenarioRuntime") -> None:
        runtime.fault_injector.crash(server)

    action.__trace_event__ = {"kind": "crash", "server": server}
    return action


def restart(server: "NodeRef") -> Action:
    """Timeline action: restart a crashed server node (endpoints re-bound)."""

    def action(runtime: "ScenarioRuntime") -> None:
        runtime.fault_injector.restart(server)

    action.__trace_event__ = {"kind": "restart", "server": server}
    return action


def partition(a: "NodeRef", b: "NodeRef | None" = None) -> Action:
    """Timeline action: partition two hosts (or isolate ``a`` entirely)."""

    def action(runtime: "ScenarioRuntime") -> None:
        runtime.fault_injector.partition(a, b)

    action.__trace_event__ = {"kind": "partition", "a": a, "b": b}
    return action


def heal(a: "NodeRef | None" = None, b: "NodeRef | None" = None) -> Action:
    """Timeline action: heal one partition, all of ``a``'s, or every one."""

    def action(runtime: "ScenarioRuntime") -> None:
        runtime.fault_injector.heal(a, b)

    action.__trace_event__ = {"kind": "heal", "a": a, "b": b}
    return action


def drop_link(
    a: "NodeRef",
    b: "NodeRef",
    loss: float = 1.0,
    jitter: float = 0.0,
    seed: int = 0,
) -> Action:
    """Timeline action: degrade a link with seeded loss and/or jitter."""

    def action(runtime: "ScenarioRuntime") -> None:
        runtime.fault_injector.drop_link(a, b, loss=loss, jitter=jitter, seed=seed)

    action.__trace_event__ = {
        "kind": "drop_link",
        "a": a,
        "b": b,
        "loss": loss,
        "jitter": jitter,
        "seed": seed,
    }
    return action


def restore_link(a: "NodeRef", b: "NodeRef") -> Action:
    """Timeline action: remove the fault profiles from a degraded link."""

    def action(runtime: "ScenarioRuntime") -> None:
        runtime.fault_injector.restore_link(a, b)

    action.__trace_event__ = {"kind": "restore_link", "a": a, "b": b}
    return action
