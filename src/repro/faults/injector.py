"""The fault injector: crashes, restarts, partitions and lossy links.

:class:`FaultInjector` is the imperative heart of :mod:`repro.faults`.  It
operates on a :class:`~repro.cluster.topology.ClusterWorld` and threads the
fault through every layer that must observe it:

* **simnet** — the crashed machine's :class:`~repro.net.simnet.Host` is
  marked down (traffic to it drops at transmit *and* delivery time), link
  profiles install seeded loss/jitter, partitions reuse the network's
  native partition table;
* **transport** — every registered client channel with in-flight
  expectations to the crashed host is aborted, so pending
  :class:`~repro.net.transport.Deferred`\\ s fail fast with
  :class:`~repro.errors.ConnectionAbortedError` instead of hanging;
* **topology / SDE** — the node's call-handler endpoints and interface
  server are stopped (ports unbound) and its publishers' timers cancelled;
  ``restart`` re-binds all of them and marks the node alive again, which
  re-registers its endpoints with the routing layer (the
  :class:`~repro.cluster.registry.ServiceRegistry` policies consult
  ``node.is_alive`` on every selection).

Everything is deterministic: a crash is an ordinary scheduled action, the
only randomness lives in the seeded link profiles, and all bookkeeping
(:class:`Outage` records, downtime, recovery latency) is derived from
virtual time.

Determinism invariant: an already-running interface generation on a crashed
node still completes (its event is in flight on the shared scheduler) and
its publication lands in the interface server's in-memory store — the
restart therefore exposes an interface *at least as recent* as the one live
when the crash hit, which is exactly the §5.7/§6 recency guarantee the
resilience scenarios assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConnectionAbortedError
from repro.faults.profile import LinkFaultProfile
from repro.obs import hooks as _obs_hooks
from repro.util.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterWorld, ServerNode

#: Node reference accepted by the injector: a node, its name, or its index.
NodeRef = "ServerNode | str | int"


@dataclass
class Outage:
    """One crash→restart→recovery episode of a server node."""

    node: str
    crashed_at: float
    restored_at: float | None = None
    #: Virtual time of the first successful reply served after the restore
    #: (recorded by the fleet driver); ``None`` until one lands.
    recovered_at: float | None = None

    @property
    def recovery_latency(self) -> float | None:
        """Seconds from restore to the first successful reply, if both known."""
        if self.restored_at is None or self.recovered_at is None:
            return None
        return self.recovered_at - self.restored_at

    def downtime_within(self, start: float, end: float) -> float:
        """Seconds of this outage overlapping the ``[start, end]`` window."""
        until = self.restored_at if self.restored_at is not None else end
        return max(0.0, min(until, end) - max(self.crashed_at, start))


class FaultInjector:
    """Deterministic fault injection for one cluster world."""

    def __init__(self, world: "ClusterWorld") -> None:
        self.world = world
        self.network = world.network
        self.scheduler = world.scheduler
        self._outages: dict[str, list[Outage]] = {}
        #: ``(a, b)`` host-name pairs with an installed link profile.
        self._faulted_links: set[tuple[str, str]] = set()

    # -- crashes ------------------------------------------------------------

    def crash(self, node: NodeRef) -> "ServerNode":
        """Crash a server node: tear down its endpoints, fail in-flight calls.

        Idempotent on an already-crashed node.  The node's host drops all
        traffic from this instant on; its call-handler endpoints, interface
        server and publisher timers are stopped; and every client channel's
        pending expectation to it is failed fast with
        :class:`ConnectionAbortedError` so callers can fail over now.
        """
        node = self._resolve(node)
        if not node.is_alive:
            return node
        node.is_alive = False
        node.host.down = True
        for managed in node.sde.managed_servers:
            managed.publisher.stop()
            managed.call_handler.stop()
        node.sde.interface_server.stop()
        self._outages.setdefault(node.name, []).append(
            Outage(node.name, crashed_at=self.scheduler.now)
        )
        error = ConnectionAbortedError(f"server {node.name!r} crashed")
        for channel in self.network.client_channels:
            channel.abort_pending(node.name, error)
        if _obs_hooks.ACTIVE is not None:
            _obs_hooks.ACTIVE.instant("fault.crash", node=node.name)
        return node

    def restart(self, node: NodeRef) -> "ServerNode":
        """Restart a crashed node: re-register its endpoints, mark it alive.

        Idempotent on an alive node.  All call-handler endpoints and the
        interface server re-bind their original ports, publishers resume
        monitoring, and the routing policies immediately see the node as a
        failover target again.  In-memory state (dynamic classes, published
        interface documents) survives, modelling a process restart that
        re-deploys from the SDE's durable publication store.
        """
        node = self._resolve(node)
        if node.is_alive:
            return node
        node.host.down = False
        node.sde.interface_server.start()
        for managed in node.sde.managed_servers:
            managed.call_handler.start()
            managed.publisher.start()
        node.is_alive = True
        outages = self._outages.get(node.name)
        if outages and outages[-1].restored_at is None:
            outages[-1].restored_at = self.scheduler.now
        if _obs_hooks.ACTIVE is not None:
            _obs_hooks.ACTIVE.instant("fault.restart", node=node.name)
        return node

    # -- partitions ---------------------------------------------------------

    def partition(self, a: NodeRef, b: NodeRef | None = None) -> None:
        """Partition two hosts — or isolate ``a`` from every current host.

        With ``b`` given, traffic between the two named hosts drops (both
        directions) until healed; without it, ``a`` is cut off from every
        other host currently attached to the network.
        """
        name_a = self._host_name(a)
        if b is not None:
            self.network.partition(name_a, self._host_name(b))
            if _obs_hooks.ACTIVE is not None:
                _obs_hooks.ACTIVE.instant(
                    "fault.partition", a=name_a, b=self._host_name(b)
                )
            return
        for host in self.network.hosts:
            if host.name != name_a:
                self.network.partition(name_a, host.name)
        if _obs_hooks.ACTIVE is not None:
            _obs_hooks.ACTIVE.instant("fault.partition", a=name_a, b="*")

    def heal(self, a: NodeRef | None = None, b: NodeRef | None = None) -> None:
        """Heal a partition pair, every partition of ``a``, or all of them."""
        if a is None:
            self.network.heal_all()
            if _obs_hooks.ACTIVE is not None:
                _obs_hooks.ACTIVE.instant("fault.heal", a="*", b="*")
            return
        name_a = self._host_name(a)
        if b is not None:
            self.network.heal(name_a, self._host_name(b))
            if _obs_hooks.ACTIVE is not None:
                _obs_hooks.ACTIVE.instant("fault.heal", a=name_a, b=self._host_name(b))
            return
        for pair in self.network.partitions:
            if name_a in pair:
                self.network.heal(*pair)
        if _obs_hooks.ACTIVE is not None:
            _obs_hooks.ACTIVE.instant("fault.heal", a=name_a, b="*")

    # -- lossy links ----------------------------------------------------------

    def drop_link(
        self,
        a: NodeRef,
        b: NodeRef,
        loss: float = 1.0,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> tuple[LinkFaultProfile, LinkFaultProfile]:
        """Degrade the ``a`` ↔ ``b`` link: seeded loss and/or jitter.

        Each direction gets its own :class:`LinkFaultProfile` with an
        independent RNG stream forked from ``seed``, so the two directions
        never perturb each other's draws.  The default ``loss=1.0`` is a
        hard blackhole — `drop_link` with no keywords behaves like a
        partition that is evaluated per message and shows up in the drop
        statistics.  Returns the ``(a→b, b→a)`` profiles.
        """
        name_a, name_b = self._host_name(a), self._host_name(b)
        base = DeterministicRng(seed)
        forward = LinkFaultProfile(loss, jitter, base.fork(f"{name_a}->{name_b}"))
        backward = LinkFaultProfile(loss, jitter, base.fork(f"{name_b}->{name_a}"))
        self.network.set_link_fault(name_a, name_b, forward)
        self.network.set_link_fault(name_b, name_a, backward)
        self._faulted_links.add((name_a, name_b))
        return forward, backward

    def restore_link(self, a: NodeRef, b: NodeRef) -> None:
        """Remove the fault profiles from both directions of a link."""
        name_a, name_b = self._host_name(a), self._host_name(b)
        self.network.clear_link_fault(name_a, name_b)
        self.network.clear_link_fault(name_b, name_a)
        self._faulted_links.discard((name_a, name_b))
        self._faulted_links.discard((name_b, name_a))

    # -- availability bookkeeping -------------------------------------------

    @property
    def has_outages(self) -> bool:
        """True once any node has ever been crashed."""
        return bool(self._outages)

    def outages_for(self, node_name: str) -> tuple[Outage, ...]:
        """Every outage episode of ``node_name``, in crash order."""
        return tuple(self._outages.get(node_name, ()))

    def downtime(self, node_name: str, start: float, end: float) -> float:
        """Seconds ``node_name`` was down within the ``[start, end]`` window."""
        return sum(
            outage.downtime_within(start, end)
            for outage in self._outages.get(node_name, ())
        )

    def note_recovery(self, node_name: str, at: float) -> None:
        """Record a successful reply from ``node_name`` (fleet driver hook).

        The first success after an outage's restore stamps its
        ``recovered_at``, from which recovery latency is derived.
        """
        outages = self._outages.get(node_name)
        if not outages:
            return
        last = outages[-1]
        if (
            last.restored_at is not None
            and last.recovered_at is None
            and at >= last.restored_at
        ):
            last.recovered_at = at

    def recovery_latency(
        self,
        node_name: str,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> float | None:
        """Latest completed restore→first-success latency for the node.

        Only outages whose restore landed inside the ``[start, end]``
        window count, so repeated runs against one world report their own
        recoveries and not an earlier window's.
        """
        for outage in reversed(self._outages.get(node_name, ())):
            if outage.restored_at is None or not start <= outage.restored_at <= end:
                continue
            latency = outage.recovery_latency
            if latency is not None:
                return latency
        return None

    # -- resolution ---------------------------------------------------------

    def _resolve(self, node: NodeRef) -> "ServerNode":
        if isinstance(node, int):
            return self.world.server_nodes[node]
        if isinstance(node, str):
            return self.world.node(node)
        return node

    def _host_name(self, ref: NodeRef) -> str:
        """A host name from a node ref — or any plain host name (clients)."""
        if isinstance(ref, int):
            return self.world.server_nodes[ref].name
        if isinstance(ref, str):
            self.network.host(ref)  # raises HostNotFoundError for typos
            return ref
        return ref.name

    def __repr__(self) -> str:
        crashed = [
            name
            for name, outages in self._outages.items()
            if outages and outages[-1].restored_at is None
        ]
        return f"FaultInjector(crashed={crashed}, faulted_links={sorted(self._faulted_links)})"
