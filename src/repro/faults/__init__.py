"""``repro.faults`` — deterministic fault injection for resilience scenarios.

The paper's interesting claims (§5.7 stall protocol, §6 recency guarantee)
only bite when things go wrong; this subsystem makes things go wrong —
deterministically — at every layer:

* :class:`LinkFaultProfile` — per-link-direction seeded message loss and
  bounded jitter, applied by the simnet when a delivery is scheduled (the
  network clamps jittered arrivals so FIFO correlation survives);
* :class:`FaultInjector` — ``crash`` / ``restart`` of server nodes (ports
  unbound and re-bound, in-flight client deferreds failed fast), hard
  ``partition`` / ``heal``, lossy ``drop_link`` / ``restore_link``, and
  availability bookkeeping (:class:`Outage`, downtime, recovery latency);
* :class:`RetryPolicy` — the client-side retry/failover knob consumed by
  the cluster fleet driver;
* timeline actions :func:`crash`, :func:`restart`, :func:`partition`,
  :func:`heal`, :func:`drop_link`, :func:`restore_link` — composable in
  ``Scenario.at(...)`` next to ``edit`` / ``publish`` / ``churn``.

See ARCHITECTURE.md "Fault model" for the determinism invariants and where
each fault hooks into the delivery path.
"""

from repro.faults.actions import (
    crash,
    drop_link,
    heal,
    partition,
    restart,
    restore_link,
)
from repro.faults.injector import FaultInjector, Outage
from repro.faults.policy import RetryPolicy
from repro.faults.profile import LinkFaultProfile

__all__ = [
    "FaultInjector",
    "Outage",
    "LinkFaultProfile",
    "RetryPolicy",
    "crash",
    "restart",
    "partition",
    "heal",
    "drop_link",
    "restore_link",
]
