"""Versioned JSONL traces: record a scenario run, replay it byte-for-byte.

A trace is a JSON-Lines file.  The first record is a ``header`` carrying
the format tag (:data:`TRACE_FORMAT`); the second is the full *scenario
spec* — world shape, services, client groups with their arrival offsets
**already resolved** to plain floats, and the declared timeline; the
records that follow are observations streamed out of the run (per-call
issue/complete times and outcomes, cohort-flow batches, timeline actions
firing); the last record is a ``summary`` with a SHA-256 digest of the
run's :meth:`~repro.cluster.report.ClusterReport.fingerprint`.

Two invariants make replay exact (ARCHITECTURE.md "Traffic model &
replay"):

* **Replay never re-samples.**  Seeded arrival processes are resolved to
  concrete per-position offsets at record time and those floats — which
  round-trip exactly through JSON — are what a replayed Scenario uses.
* **Everything else in a scenario is declarative.**  Services, client
  groups, retry/cohort models and timeline actions are data; operation
  *bodies* (the one executable piece) are serialised by name through a
  registry (:func:`register_trace_body`), never by value.

``replay(trace).run(until=reader.until)`` therefore produces a
:class:`~repro.cluster.report.ClusterReport` whose ``fingerprint()`` is
byte-identical to the recorded run's.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.cluster.cohort import CohortModel
from repro.cluster.scenario import OperationSpec, Scenario, churn, edit, op, publish
from repro.core.sde import SDEConfig
from repro.errors import TraceError
from repro.evolve.actions import abort_rollout, canary, rolling
from repro.evolve.rollout import InterfaceUpgrade
from repro.faults.actions import crash, drop_link, heal, partition, restart, restore_link
from repro.faults.policy import RetryPolicy
from repro.net.latency import CostModel
from repro.rmitypes import PRIMITIVES
from repro.traffic.arrivals import resolve_offsets

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.report import ClusterReport

#: Format tag written into (and required of) every trace header.
TRACE_FORMAT = "repro-trace/1"


# -- operation-body registry ---------------------------------------------------
#
# Bodies are the only executable part of a scenario spec.  They serialise
# by *name*: a body either carries a ``__trace_body__`` attribute naming a
# registered callable, or the scenario cannot be traced.

_TRACE_BODIES: dict[str, Callable[..., Any]] = {}


def register_trace_body(name: str, body: Callable[..., Any]) -> Callable[..., Any]:
    """Register ``body`` under ``name`` so traced scenarios can carry it.

    The function gains a ``__trace_body__`` attribute; any
    :class:`~repro.cluster.scenario.OperationSpec` using it (or another
    callable carrying the same attribute) serialises as the name and
    replays as the registered callable.
    """
    if not name:
        raise TraceError("trace body name must be non-empty")
    body.__trace_body__ = name  # type: ignore[attr-defined]
    _TRACE_BODIES[name] = body
    return body


def echo_body(_self: Any, message: Any) -> Any:
    """Builtin traceable body: return the single argument unchanged."""
    return message


def noop_body(_self: Any, *args: Any) -> None:
    """Builtin traceable body: accept anything, return nothing."""
    return None


register_trace_body("echo", echo_body)
register_trace_body("noop", noop_body)


def _body_to_json(body: Callable[..., Any] | None) -> str | None:
    if body is None:
        return None
    name = getattr(body, "__trace_body__", None)
    if name is None or name not in _TRACE_BODIES:
        raise TraceError(
            "operation body is not traceable: register it with "
            "repro.traffic.trace.register_trace_body(name, body) "
            f"(got {body!r})"
        )
    return name


def _body_from_json(name: str | None) -> Callable[..., Any] | None:
    if name is None:
        return None
    try:
        return _TRACE_BODIES[name]
    except KeyError:
        raise TraceError(
            f"trace names unregistered operation body {name!r}; register it "
            "with repro.traffic.trace.register_trace_body before replay"
        ) from None


# -- leaf serialisers ----------------------------------------------------------


def _op_to_json(spec: OperationSpec) -> dict[str, Any]:
    if not isinstance(spec, OperationSpec):
        raise TraceError(f"expected an OperationSpec, got {type(spec).__name__}")
    parameters = []
    for name, rmi_type in spec.parameters:
        type_name = getattr(rmi_type, "name", None)
        if type_name not in PRIMITIVES:
            raise TraceError(
                f"operation {spec.name!r}: only primitive parameter types are "
                f"traceable, got {rmi_type!r}"
            )
        parameters.append([name, type_name])
    return_name = getattr(spec.return_type, "name", None)
    if return_name not in PRIMITIVES:
        raise TraceError(
            f"operation {spec.name!r}: only primitive return types are "
            f"traceable, got {spec.return_type!r}"
        )
    return {
        "name": spec.name,
        "parameters": parameters,
        "returns": return_name,
        "body": _body_to_json(spec.body),
    }


def _op_from_json(data: Mapping[str, Any]) -> OperationSpec:
    return op(
        data["name"],
        [(name, PRIMITIVES[type_name]) for name, type_name in data["parameters"]],
        PRIMITIVES[data["returns"]],
        body=_body_from_json(data.get("body")),
    )


def _arguments_to_json(arguments: tuple[Any, ...]) -> list[Any]:
    for argument in arguments:
        if argument is not None and not isinstance(argument, (bool, int, float, str)):
            raise TraceError(
                "call arguments must be JSON scalars (None/bool/int/float/str) "
                f"to be traceable, got {argument!r}"
            )
    return list(arguments)


def _config_to_json(config: SDEConfig | None) -> dict[str, Any] | None:
    if config is None:
        return None
    data = {f.name: getattr(config, f.name) for f in fields(SDEConfig)}
    cost_model = data["cost_model"]
    if cost_model is not None:
        data["cost_model"] = {f.name: getattr(cost_model, f.name) for f in fields(CostModel)}
    return data


def _config_from_json(data: Mapping[str, Any] | None) -> SDEConfig | None:
    if data is None:
        return None
    values = dict(data)
    if values.get("cost_model") is not None:
        values["cost_model"] = CostModel(**values["cost_model"])
    return SDEConfig(**values)


def _node_ref_to_json(ref: Any, what: str) -> Any:
    if ref is None or isinstance(ref, (str, int)):
        return ref
    name = getattr(ref, "name", None)
    if isinstance(name, str):
        return name
    raise TraceError(f"{what} must be a name, index or node, got {ref!r}")


def _upgrade_to_json(change: InterfaceUpgrade) -> dict[str, Any]:
    return {
        "add": [_op_to_json(spec) for spec in change.add],
        "remove": list(change.remove),
        "successors": dict(change.successors),
    }


def _upgrade_from_json(data: Mapping[str, Any]) -> InterfaceUpgrade:
    return InterfaceUpgrade(
        add=tuple(_op_from_json(item) for item in data["add"]),
        remove=tuple(data["remove"]),
        successors=dict(data["successors"]),
    )


# -- timeline events -----------------------------------------------------------
#
# Every timeline helper (edit/publish/churn, the fault actions, the rollout
# actions) stamps its closure with a ``__trace_event__`` metadata dict; the
# two tables below turn that metadata into JSON and back into an action.


def _event_to_json(meta: Mapping[str, Any]) -> dict[str, Any]:
    kind = meta.get("kind")
    if kind in ("crash", "restart"):
        return {"kind": kind, "server": _node_ref_to_json(meta["server"], "server")}
    if kind in ("partition", "heal", "restore_link"):
        return {
            "kind": kind,
            "a": _node_ref_to_json(meta["a"], "host"),
            "b": _node_ref_to_json(meta["b"], "host"),
        }
    if kind == "drop_link":
        return {
            "kind": kind,
            "a": _node_ref_to_json(meta["a"], "host"),
            "b": _node_ref_to_json(meta["b"], "host"),
            "loss": meta["loss"],
            "jitter": meta["jitter"],
            "seed": meta["seed"],
        }
    if kind == "edit":
        return {
            "kind": kind,
            "service": meta["service"],
            "operations": [_op_to_json(spec) for spec in meta["operations"]],
        }
    if kind == "publish":
        return {"kind": kind, "service": meta["service"]}
    if kind == "churn":
        return {
            "kind": kind,
            "service": meta["service"],
            "rounds": meta["rounds"],
            "period": meta["period"],
            "prefix": meta["prefix"],
        }
    if kind in ("rolling", "canary"):
        event = {
            "kind": kind,
            "service": meta["service"],
            "change": _upgrade_to_json(meta["change"]),
            "retry_interval": meta["retry_interval"],
        }
        if kind == "rolling":
            event["batch_size"] = meta["batch_size"]
            event["drain"] = meta["drain"]
        else:
            event["fraction"] = meta["fraction"]
            event["promote_after"] = meta["promote_after"]
        return event
    if kind == "abort_rollout":
        return {"kind": kind, "service": meta["service"]}
    raise TraceError(f"untraceable timeline event kind {kind!r}")


def _event_from_json(data: Mapping[str, Any]) -> Callable[..., None]:
    kind = data["kind"]
    if kind == "crash":
        return crash(data["server"])
    if kind == "restart":
        return restart(data["server"])
    if kind == "partition":
        return partition(data["a"], data["b"])
    if kind == "heal":
        return heal(data["a"], data["b"])
    if kind == "drop_link":
        return drop_link(
            data["a"], data["b"], loss=data["loss"], jitter=data["jitter"], seed=data["seed"]
        )
    if kind == "restore_link":
        return restore_link(data["a"], data["b"])
    if kind == "edit":
        return edit(data["service"], *(_op_from_json(item) for item in data["operations"]))
    if kind == "publish":
        return publish(data["service"])
    if kind == "churn":
        return churn(
            data["service"],
            rounds=data["rounds"],
            period=data["period"],
            prefix=data["prefix"],
        )
    if kind == "rolling":
        return rolling(
            data["service"],
            _upgrade_from_json(data["change"]),
            batch_size=data["batch_size"],
            drain=data["drain"],
            retry_interval=data["retry_interval"],
        )
    if kind == "canary":
        return canary(
            data["service"],
            _upgrade_from_json(data["change"]),
            fraction=data["fraction"],
            promote_after=data["promote_after"],
            retry_interval=data["retry_interval"],
        )
    if kind == "abort_rollout":
        return abort_rollout(data["service"])
    raise TraceError(f"trace names unknown timeline event kind {kind!r}")


# -- scenario spec <-> JSON ----------------------------------------------------


def scenario_to_spec(scenario: Scenario) -> dict[str, Any]:
    """Serialise a :class:`Scenario` to a JSON-able spec dict.

    Arrival processes are resolved to concrete per-position offsets *here*
    — the replay side reads those floats back verbatim and never touches an
    RNG.  Raises :class:`~repro.errors.TraceError` for the scenario
    features that cannot round-trip (custom latency models, third-party
    technologies, unregistered operation bodies, opaque timeline actions).
    """
    if scenario._latency is not None:
        raise TraceError("scenarios with a custom latency model are not traceable")
    if scenario._technologies:
        raise TraceError("scenarios with third-party technologies are not traceable")
    services = []
    for service in scenario._services:
        if not isinstance(service.policy, str):
            raise TraceError(
                f"service {service.name!r}: only named (string) routing policies "
                "are traceable"
            )
        services.append(
            {
                "name": service.name,
                "operations": [_op_to_json(spec) for spec in service.operations],
                "technology": service.technology,
                "replicas": service.replicas,
                "policy": service.policy,
                "version_routing": service.version_routing,
            }
        )
    groups = []
    for group in scenario._client_groups:
        retry = group.retry
        cohort = group.cohort
        groups.append(
            {
                "count": group.count,
                "protocol_mix": (
                    [list(item) for item in group.protocol_mix]
                    if group.protocol_mix is not None
                    else None
                ),
                "service": group.service,
                "calls": group.calls,
                "operation": group.operation,
                "arguments": _arguments_to_json(group.arguments),
                "think_time": group.think_time,
                # The resolved offsets ARE the arrival spec from here on.
                "offsets": resolve_offsets(group.arrival, group.count),
                "stale_every": group.stale_every,
                "stale_operation": group.stale_operation,
                "retry": (
                    {
                        "max_attempts": retry.max_attempts,
                        "timeout": retry.timeout,
                        "backoff": retry.backoff,
                    }
                    if retry is not None
                    else None
                ),
                "cohort": (
                    {
                        "representatives": cohort.representatives,
                        "tick": cohort.tick,
                        "period": cohort.period,
                        "cpu_cost": cohort.cpu_cost,
                        "max_attempts": cohort.max_attempts,
                        "bin_width": cohort.bin_width,
                    }
                    if cohort is not None
                    else None
                ),
            }
        )
    timeline = []
    for time, action in scenario._timeline:
        meta = getattr(action, "__trace_event__", None)
        if meta is None:
            raise TraceError(
                f"timeline action at t={time} is opaque (no __trace_event__ "
                "metadata); use the edit/publish/churn, fault or rollout "
                "helpers to keep the scenario traceable"
            )
        timeline.append({"time": time, "event": _event_to_json(meta)})
    return {
        "name": scenario.name,
        "server_count": scenario._server_count,
        "server_cores": scenario._server_cores,
        "default_technology": scenario._default_technology,
        "sde_config": _config_to_json(scenario._base_config),
        "services": services,
        "client_groups": groups,
        "timeline": timeline,
    }


class _ReplayOffsets:
    """A recorded group's arrival law: position -> resolved offset.

    Plugs into ``Scenario.clients(..., arrival=...)`` through the callable
    branch of :func:`~repro.traffic.arrivals.resolve_offsets`, handing back
    exactly the floats the recording resolved — replay never re-samples.
    """

    def __init__(self, offsets: list[float]) -> None:
        self.offsets = [float(offset) for offset in offsets]

    def __call__(self, position: int) -> float:
        return self.offsets[position]

    def __repr__(self) -> str:
        return f"_ReplayOffsets(n={len(self.offsets)})"


def scenario_from_spec(spec: Mapping[str, Any]) -> Scenario:
    """Rebuild a runnable :class:`Scenario` from a recorded spec dict."""
    scenario = Scenario(
        spec["name"], sde_config=_config_from_json(spec.get("sde_config"))
    )
    scenario.servers(
        spec["server_count"],
        cores=spec.get("server_cores"),
        technology=spec.get("default_technology"),
    )
    for service in spec["services"]:
        scenario.service(
            service["name"],
            [_op_from_json(item) for item in service["operations"]],
            technology=service["technology"],
            replicas=service["replicas"],
            policy=service["policy"],
            version_routing=service["version_routing"],
        )
    for group in spec["client_groups"]:
        offsets = group["offsets"]
        if len(offsets) != group["count"]:
            raise TraceError(
                f"client group records {len(offsets)} offsets for "
                f"{group['count']} clients"
            )
        retry = group.get("retry")
        cohort = group.get("cohort")
        scenario.clients(
            group["count"],
            protocol_mix=(
                {name: weight for name, weight in group["protocol_mix"]}
                if group.get("protocol_mix") is not None
                else None
            ),
            service=group.get("service"),
            calls=group["calls"],
            operation=group.get("operation"),
            arguments=tuple(group["arguments"]),
            think_time=group["think_time"],
            arrival=_ReplayOffsets(offsets),
            stale_every=group.get("stale_every"),
            stale_operation=group["stale_operation"],
            retry=RetryPolicy(**retry) if retry is not None else None,
            cohort=CohortModel(**cohort) if cohort is not None else None,
        )
    for entry in spec["timeline"]:
        scenario.at(entry["time"], _event_from_json(entry["event"]))
    return scenario


# -- report digest -------------------------------------------------------------


def fingerprint_digest(report: "ClusterReport") -> str:
    """SHA-256 over the repr of the report's full fingerprint tuple."""
    return hashlib.sha256(repr(report.fingerprint()).encode("utf-8")).hexdigest()


# -- writer / reader -----------------------------------------------------------


class TraceWriter:
    """Streams one scenario run into a JSONL trace file.

    The fleet driver calls the ``note_*`` hooks while the run is in
    flight; :func:`record` wraps the whole protocol (header, spec, run,
    summary).  Records are also kept in memory (``records``) so tests can
    assert on them without re-reading the file.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.records: list[dict[str, Any]] = []
        self._handle = self.path.open("w", encoding="utf-8")
        self._closed = False

    def _write(self, record: dict[str, Any]) -> None:
        if self._closed:
            raise TraceError(f"trace writer for {self.path} is closed")
        self.records.append(record)
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")

    def write_header(self, name: str, until: float | None) -> None:
        self._write({"kind": "header", "format": TRACE_FORMAT, "scenario": name, "until": until})

    def write_spec(self, spec: dict[str, Any]) -> None:
        self._write({"kind": "scenario", "spec": spec})

    # -- driver-facing observation hooks (streamed during the run) --------

    def note_call(
        self,
        *,
        issued_at: float,
        completed_at: float,
        client: str,
        protocol: str,
        service: str,
        operation: str,
        outcome: str,
        replica: int | None,
    ) -> None:
        """One discrete fleet call reaching its final outcome (or abandon)."""
        self._write(
            {
                "kind": "call",
                "t_issued": issued_at,
                "t_completed": completed_at,
                "client": client,
                "protocol": protocol,
                "service": service,
                "operation": operation,
                "outcome": outcome,
                "replica": replica,
            }
        )

    def note_flow(self, *, time: float, flow: str, count: int, attempt: int) -> None:
        """One cohort-flow batch being offered to the routing policy."""
        self._write(
            {"kind": "flow", "t": time, "flow": flow, "count": count, "attempt": attempt}
        )

    def note_timeline(self, time: float, meta: Mapping[str, Any] | None) -> None:
        """A scripted timeline action firing inside the measured window."""
        if meta is None:
            return
        self._write({"kind": "timeline", "t": time, "event": _event_to_json(meta)})

    def note_span(self, span: Mapping[str, Any]) -> None:
        """One finished observability span (``repro.obs``), already a dict.

        Only written when the run was traced *and* observed
        (``record(..., obs=...)`` / ``Scenario.run(trace=..., obs=...)``);
        replay ignores the channel, so a trace with spans still replays to
        the same fingerprint as one without.
        """
        self._write({"kind": "span", "span": dict(span)})

    def write_summary(self, report: "ClusterReport") -> None:
        self._write(
            {
                "kind": "summary",
                "fingerprint_sha256": fingerprint_digest(report),
                "started_at": report.started_at,
                "finished_at": report.finished_at,
                "total_calls": report.total_calls,
                "recency_violations": report.total_recency_violations,
            }
        )

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._handle.close()


class TraceReader:
    """Parses a JSONL trace file and exposes its records by kind."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.records: list[dict[str, Any]] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as error:
                    raise TraceError(
                        f"{self.path}:{line_number}: malformed trace record ({error})"
                    ) from None
                self.records.append(record)
        if not self.records or self.records[0].get("kind") != "header":
            raise TraceError(f"{self.path}: not a trace file (missing header record)")
        self.header = self.records[0]
        if self.header.get("format") != TRACE_FORMAT:
            raise TraceError(
                f"{self.path}: unsupported trace format "
                f"{self.header.get('format')!r} (expected {TRACE_FORMAT!r})"
            )
        specs = [r for r in self.records if r.get("kind") == "scenario"]
        if len(specs) != 1:
            raise TraceError(f"{self.path}: expected exactly one scenario record")
        self.spec: dict[str, Any] = specs[0]["spec"]

    @property
    def until(self) -> float | None:
        """The recorded run's horizon (``run(until=...)``)."""
        return self.header.get("until")

    @property
    def calls(self) -> list[dict[str, Any]]:
        return [r for r in self.records if r.get("kind") == "call"]

    @property
    def flows(self) -> list[dict[str, Any]]:
        return [r for r in self.records if r.get("kind") == "flow"]

    @property
    def timeline_events(self) -> list[dict[str, Any]]:
        return [r for r in self.records if r.get("kind") == "timeline"]

    @property
    def spans(self) -> list[dict[str, Any]]:
        """Observability spans recorded alongside the run (may be empty)."""
        return [r["span"] for r in self.records if r.get("kind") == "span"]

    @property
    def summary(self) -> dict[str, Any] | None:
        for record in reversed(self.records):
            if record.get("kind") == "summary":
                return record
        return None

    @property
    def fingerprint_digest(self) -> str | None:
        summary = self.summary
        return summary["fingerprint_sha256"] if summary is not None else None


# -- top-level protocol --------------------------------------------------------


def record(
    scenario: Scenario,
    path: str | Path,
    until: float | None = None,
    obs: Any | None = None,
) -> "tuple[ClusterReport, TraceReader]":
    """Run ``scenario`` while writing a trace of it to ``path``.

    The spec is serialised (and validated) *before* the run starts, so an
    untraceable scenario fails fast instead of after a long simulation.
    ``obs`` (see :meth:`Scenario.run`) additionally streams every finished
    observability span into the trace as ``span`` records.  Returns the
    run's report and a reader over the finished trace.
    """
    spec = scenario_to_spec(scenario)
    writer = TraceWriter(path)
    try:
        writer.write_header(scenario.name, until)
        writer.write_spec(spec)
        report = scenario.run(until=until, trace=writer, obs=obs)
        writer.write_summary(report)
    finally:
        writer.close()
    return report, TraceReader(writer.path)


def replay(trace: str | Path | TraceReader) -> Scenario:
    """Rebuild the recorded Scenario; running it reproduces the fingerprint.

    ``replay(trace).run(until=reader.until)`` yields a report whose
    ``fingerprint()`` matches the recorded run byte for byte — arrivals
    come back as the recorded floats (never re-sampled) and every other
    scenario ingredient is reconstructed from the declarative spec.
    """
    reader = trace if isinstance(trace, TraceReader) else TraceReader(trace)
    return scenario_from_spec(reader.spec)
